//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate implements the
//! subset of the proptest surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `fn name(arg in strategy, …) { body }`
//!   test functions,
//! * [`prop_assert!`] / [`prop_assert_eq!`] (plain assertions here — no
//!   shrinking, the failing input is printed instead),
//! * range strategies (`0u32..10`, `1usize..=5`, `-0.5f64..0.5`), tuples of
//!   strategies, [`collection::vec`], and [`any`] for unsigned integers.
//!
//! Each test runs [`CASES`] deterministic cases seeded from the test name, so
//! failures reproduce across runs and worker counts.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Number of random cases generated per property test.
pub const CASES: usize = 64;

/// Deterministic RNG driving the generated inputs (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so each test gets a stable but
    /// distinct stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $ty
                }
            }
        )*
    };
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, well-spread values; property tests here never rely on NaN/inf inputs
        (rng.next_f64() - 0.5) * 2e6
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest::prelude::any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec`]: a fixed size or a range of sizes.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s with elements from `element` and a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// The `proptest::collection::vec` strategy constructor.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-block configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test in the block.
    pub cases: usize,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat, ..) { body } }`.
///
/// Each function body runs [`crate::CASES`] times with inputs drawn from the
/// given strategies; the generated inputs are printed when an assertion fails.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cases = ($cfg.cases); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cases = ($crate::CASES); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cases = ($cases:expr);) => {};
    (
        cases = ($cases:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..$cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!("case {} of ", stringify!($name), ":" $(, " ", stringify!($arg), "={:?}")+),
                    __case $(, &$arg)+
                );
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = __result {
                    eprintln!("proptest failure inputs: {}", __inputs);
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { cases = ($cases); $($rest)* }
    };
}

/// `prop_assert!`: plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro wires strategies into the body and runs multiple cases.
        #[test]
        fn ranges_and_vectors(
            xs in collection::vec((0u32..10, 1u32..=5), 0..20),
            k in 1usize..8,
        ) {
            prop_assert!((1..8).contains(&k));
            for (a, b) in xs {
                prop_assert!(a < 10);
                prop_assert!((1..=5).contains(&b));
            }
        }

        /// `any` produces deterministic streams per test name.
        #[test]
        fn any_is_deterministic(x in any::<u64>()) {
            let _ = x;
        }
    }
}
