//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so the real serde cannot be
//! compiled. The workspace's `vendor/serde` defines `Serialize` / `Deserialize`
//! as marker traits and these derives emit the matching empty impls, which
//! keeps every `#[derive(Serialize, Deserialize)]` in the tree compiling
//! unchanged. Swapping the two vendor crates for the real serde restores full
//! serialization without touching any other source file.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name and its generic parameter list (if any) from the
/// token stream of a `struct` / `enum` definition.
fn parse_type(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde_derive stub: expected type name, found {other:?}"),
                };
                let mut params = Vec::new();
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '<' {
                        iter.next();
                        let mut depth = 1usize;
                        let mut at_param_start = true;
                        while depth > 0 {
                            match iter.next() {
                                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                                    at_param_start = true;
                                }
                                Some(TokenTree::Ident(id)) if depth == 1 && at_param_start => {
                                    params.push(id.to_string());
                                    at_param_start = false;
                                }
                                Some(_) => {}
                                None => panic!("serde_derive stub: unbalanced generics"),
                            }
                        }
                    }
                }
                return (name, params);
            }
        }
    }
    panic!("serde_derive stub: no struct/enum in derive input");
}

fn impl_for(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let (name, params) = parse_type(input);
    let lt_args = extra_lifetime
        .map(|lt| format!("<{lt}>"))
        .unwrap_or_default();
    let mut generics = Vec::new();
    if let Some(lt) = extra_lifetime {
        generics.push(lt.to_string());
    }
    for p in &params {
        generics.push(format!("{p}: {trait_path}{lt_args}"));
    }
    let impl_generics = if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    };
    let ty_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    format!("impl{impl_generics} {trait_path}{lt_args} for {name}{ty_generics} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_for(input, "::serde::Serialize", None)
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_for(input, "::serde::Deserialize", Some("'de"))
}
