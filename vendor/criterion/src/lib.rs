//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate provides the
//! criterion bench-authoring API the workspace uses (`criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `black_box`) backed by a
//! straightforward wall-clock harness: after a warm-up run, each benchmark is
//! sampled `sample_size` times and the minimum / median / mean sample times
//! are printed. No statistical regression analysis is performed, but the
//! printed medians are stable enough to compare implementations of the same
//! workload run back to back.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one parameterised benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Measures one benchmark body.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` runs of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.recorded.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{id:<60} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        sorted.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            recorded: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), &b.recorded);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            recorded: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b.recorded);
        self
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.default_sample_size,
            recorded: Vec::new(),
        };
        f(&mut b);
        report(id, &b.recorded);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
