//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this crate implements the
//! slice of the rand 0.8 surface the workspace actually uses: the [`Rng`]
//! extension trait with `gen_range` / `gen_bool`, [`SeedableRng::seed_from_u64`],
//! and a deterministic [`rngs::StdRng`] built on SplitMix64. The statistical
//! quality is more than adequate for test fixtures, synthetic datasets and the
//! differential-privacy mechanisms' uniform draws; sequences differ from the
//! real `rand`, but every consumer in this workspace only relies on
//! *same-seed reproducibility*, never on specific sequences.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range (or other set) that values of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + draw) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + draw) as $ty
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// The user-facing random-value API (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic RNG (SplitMix64). Drop-in for `rand::rngs::StdRng` in this
    /// workspace: same-seed runs produce identical streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Vigna): passes BigCrush, one add + two xorshift-multiplies.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&m));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
