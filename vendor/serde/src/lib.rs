//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access. This crate keeps the
//! workspace's `#[derive(Serialize, Deserialize)]` attributes and
//! `use serde::…` imports compiling by providing the two traits as markers
//! (no methods) together with stub derives from the sibling
//! `vendor/serde_derive` crate. No actual serialization is performed;
//! swapping these two vendor crates for the real serde restores it without
//! touching any other source file.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_markers!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl Serialize for std::time::Duration {}
impl<'de> Deserialize<'de> for std::time::Duration {}
