//! # xmap-suite — workspace façade
//!
//! A thin re-export layer over the workspace crates so that the examples and integration
//! tests can use one coherent namespace. Library users should normally depend on the
//! individual crates (`xmap-core`, `xmap-cf`, …) directly; this façade exists for the
//! workspace-level binaries and tests.

#![warn(missing_docs)]

pub use xmap_cf as cf;
pub use xmap_core as core;
pub use xmap_dataset as dataset;
pub use xmap_engine as engine;
pub use xmap_eval as eval;
pub use xmap_graph as graph;
pub use xmap_privacy as privacy;

/// The most commonly used types, re-exported for examples and integration tests.
pub mod prelude {
    pub use xmap_cf::{
        DomainId, ItemId, Rating, RatingMatrix, RatingMatrixBuilder, Timestep, UserId,
    };
    pub use xmap_core::{
        DeltaReport, IngestAccumulators, ModelEpoch, PrivacyConfig, RatingDelta, ServedRead,
        XMapConfig, XMapMode, XMapModel,
    };
    pub use xmap_dataset::split::{CrossDomainSplit, SplitConfig};
    pub use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};
    pub use xmap_dataset::toy::ToyScenario;
    pub use xmap_eval::{
        evaluate_batch_serial, evaluate_predictions, mae, ranking_cases_from_test, EvalBatch,
        EvalReport, EvalStage, SweepMetric, SweepParam, SweepSpec,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        let toy = ToyScenario::build();
        let config = XMapConfig {
            k: 2,
            ..XMapConfig::default()
        };
        let model =
            XMapModel::fit(&toy.matrix, DomainId::SOURCE, DomainId::TARGET, config).unwrap();
        assert_eq!(model.label(), "NX-MAP-IB");
    }
}
