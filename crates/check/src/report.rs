//! Machine-readable findings report for CI.
//!
//! The `lint-audit` CI job runs `cargo xmap-lint --json lint-findings.json`
//! and uploads the report as an artifact, so a red job carries its evidence.
//! JSON is rendered by hand — the vendored `serde` is an offline marker stub —
//! and the shape is versioned so consumers can evolve:
//!
//! ```json
//! {
//!   "version": 2,
//!   "root": "/path/to/workspace",
//!   "rules": [{"name": "iter-order", "escapable": true}, …],
//!   "findings": [{"file": "…", "line": 7, "rule": "iter-order", "message": "…"}],
//!   "warnings": [{"file": "…", "line": 3, "message": "stale lint tag …"}],
//!   "summary": {"files": 57, "findings": 0, "warnings": 0, "clean": true}
//! }
//! ```

use crate::lint::{Audit, Rule};

/// Renders the versioned JSON findings report for one audit run.
pub fn render_report(root: &str, audit: &Audit) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": 2,\n");
    s.push_str(&format!("  \"root\": \"{}\",\n", esc(root)));

    s.push_str("  \"rules\": [");
    for (i, rule) in Rule::all().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"name\": \"{}\", \"escapable\": {}}}",
            rule,
            rule.escapable()
        ));
    }
    s.push_str("],\n");

    s.push_str("  \"findings\": [");
    for (i, v) in audit.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&v.file),
            v.line,
            v.rule,
            esc(&v.message)
        ));
    }
    if !audit.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");

    s.push_str("  \"warnings\": [");
    for (i, w) in audit.warnings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(&w.file),
            w.line,
            esc(&w.message)
        ));
    }
    if !audit.warnings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");

    s.push_str(&format!(
        "  \"summary\": {{\"files\": {}, \"findings\": {}, \"warnings\": {}, \"clean\": {}}}\n}}\n",
        audit.files,
        audit.findings.len(),
        audit.warnings.len(),
        audit.findings.is_empty()
    ));
    s
}

/// JSON string escaping: quotes, backslashes, control characters.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
