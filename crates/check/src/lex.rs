//! The analyzer's lexer: Rust source → rule-relevant tokens + `// lint:` tags.
//!
//! The lexer is shared by every pass. It sees tokens, strings, comments and
//! lines — not types — and is careful about exactly the things that corrupt
//! line numbers in a naive scanner: raw strings (`r#"…"#`) spanning lines,
//! nested block comments, multi-line string literals, char/lifetime ambiguity.
//! A property test in `crates/check/tests` drives randomized mixtures of those
//! constructs and asserts reported line numbers stay exact.
//!
//! Escape tags come in two scopes:
//!
//! * `// lint: <tag> [justification]` — covers its own line and the next line,
//!   so it can trail the offending line or sit on its own line above it;
//! * `// lint: <tag> (block) [justification]` — covers the next brace block
//!   (typically the item it annotates): from the tag line through the matching
//!   `}` of the first `{` at or below the tag.
//!
//! Multiple comma-separated tags may share one comment; each segment carries
//! its own optional `(block)` marker.

/// A lexed token kind. Only the shapes the rules inspect are distinguished.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Tok {
    Ident(String),
    /// A punctuation cluster the rules care about (`::`, `==`, `!=`, `->`) or a
    /// single punctuation character.
    Punct(String),
    Float,
    Int,
    Str,
    Char,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub(crate) struct Token {
    pub(crate) tok: Tok,
    pub(crate) line: u32,
}

/// One `// lint:` escape-tag site, before scope resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct TagSite {
    /// The tag name (a rule name).
    pub(crate) tag: String,
    /// Line the comment sits on.
    pub(crate) line: u32,
    /// Whether the `(block)` scope marker was present.
    pub(crate) block: bool,
}

/// Lex `src` into rule-relevant tokens plus the `// lint:` escape-tag sites.
pub(crate) fn lex(src: &str) -> (Vec<Token>, Vec<TagSite>) {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut tags: Vec<TagSite> = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                let comment = src[start..j].trim();
                if let Some(rest) = comment.strip_prefix("lint:") {
                    // The tag list ends at the em dash opening the justification
                    // (`// lint: panic, float-eq — why`), so prose commas after
                    // it don't read as extra tags. Each comma segment before it
                    // is `<tag> [(block)]`.
                    let tag_list = rest.split('—').next().unwrap_or(rest);
                    for segment in tag_list.split(',') {
                        if let Some(tag) = segment.split_whitespace().next() {
                            tags.push(TagSite {
                                tag: tag.to_string(),
                                line,
                                block: segment.contains("(block)"),
                            });
                        }
                    }
                }
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (j, newlines) = scan_string(bytes, i + 1);
                tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
                line += newlines;
                i = j;
            }
            'r' | 'b' if is_raw_string_start(bytes, i) => {
                let (j, newlines) = scan_raw_string(bytes, i);
                tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
                line += newlines;
                i = j;
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'` ident not followed by
                // a closing quote.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if (n as char).is_alphabetic() || n == b'_')
                    && after != Some(b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < bytes.len()
                        && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    i = j;
                } else {
                    // Char literal: handle escapes, find closing quote.
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&b'\\') {
                        j += 2;
                        // Consume the rest of longer escapes (\u{..}, \x..)
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                    } else {
                        // One (possibly multi-byte) character.
                        j += 1;
                        while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
                            j += 1;
                        }
                    }
                    if bytes.get(j) == Some(&b'\'') {
                        j += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i = j;
                }
            }
            _ if c.is_ascii_digit() => {
                let (j, is_float) = scan_number(bytes, i);
                tokens.push(Token {
                    tok: if is_float { Tok::Float } else { Tok::Int },
                    line,
                });
                i = j;
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = src[j..].chars().next().unwrap_or(' ');
                    if ch.is_alphanumeric() || ch == '_' {
                        j += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    tok: Tok::Ident(src[i..j].to_string()),
                    line,
                });
                i = j;
            }
            ':' if bytes.get(i + 1) == Some(&b':') => {
                tokens.push(Token {
                    tok: Tok::Punct("::".into()),
                    line,
                });
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    tok: Tok::Punct("==".into()),
                    line,
                });
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    tok: Tok::Punct("!=".into()),
                    line,
                });
                i += 2;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                // Lexed as one cluster so `fn() -> T` return arrows never look
                // like a closing angle bracket to the parser layer.
                tokens.push(Token {
                    tok: Tok::Punct("->".into()),
                    line,
                });
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push(Token {
                    tok: Tok::Punct("=>".into()),
                    line,
                });
                i += 2;
            }
            _ if c.is_ascii_whitespace() => {
                i += 1;
            }
            _ => {
                tokens.push(Token {
                    tok: Tok::Punct(c.to_string()),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    (tokens, tags)
}

/// Scan past a `"..."` string body starting just after the opening quote; returns
/// (index after closing quote, newlines crossed).
fn scan_string(bytes: &[u8], mut i: usize) -> (usize, u32) {
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (i, newlines)
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r"..." | r#"..."# | br"..." | b"..." handled by '"' arm (b is lexed as an
    // ident; the quote follows). Here: r or br raw strings only.
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn scan_raw_string(bytes: &[u8], mut i: usize) -> (usize, u32) {
    if bytes.get(i) == Some(&b'b') {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let mut newlines = 0;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (j, newlines);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    (i, newlines)
}

/// Scan a numeric literal; returns (end index, is_float). Floats are `1.5`,
/// `1.5e3`, `1e3`, `1.` (when not a range/method like `1..` or `1.max`), and any
/// literal with an `f32`/`f64` suffix.
fn scan_number(bytes: &[u8], mut i: usize) -> (usize, bool) {
    let mut is_float = false;
    // Hex/octal/binary literals are never floats.
    if bytes[i] == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'o') | Some(b'b')) {
        i += 2;
        while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (i, false);
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    if bytes.get(i) == Some(&b'.') {
        let after = bytes.get(i + 1).copied();
        let fractional = matches!(after, Some(d) if d.is_ascii_digit());
        // `1.` with nothing ident-like after is also a float (e.g. `1. + x`);
        // `1..` is a range and `1.max` a method call on an integer.
        let bare_dot =
            !matches!(after, Some(d) if d == b'.' || (d as char).is_alphabetic() || d == b'_');
        if fractional || bare_dot {
            is_float = true;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    if matches!(bytes.get(i), Some(b'e') | Some(b'E')) {
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
            j += 1;
        }
        if matches!(bytes.get(j), Some(d) if d.is_ascii_digit()) {
            is_float = true;
            i = j;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix: f32/f64 force float; u*/i* stay int.
    let suffix_start = i;
    while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    if bytes[suffix_start..i].starts_with(b"f3") || bytes[suffix_start..i].starts_with(b"f6") {
        is_float = true;
    }
    (i, is_float)
}

// ---------------------------------------------------------------------------
// Token helpers shared by the parser layer and the passes
// ---------------------------------------------------------------------------

pub(crate) fn is_punct(tokens: &[Token], i: usize, p: &str) -> bool {
    matches!(tokens.get(i), Some(Token { tok: Tok::Punct(s), .. }) if s == p)
}

pub(crate) fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i) {
        Some(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

/// Scan an outer attribute `#[...]` starting at `i` (which must point at `#`).
/// Returns (index after the closing `]`, attribute marks a test item).
pub(crate) fn scan_attr(tokens: &[Token], i: usize) -> (usize, bool) {
    let mut j = i + 2; // past '#' '['
    let mut depth = 1;
    let mut has_test = false;
    let mut has_not = false;
    while j < tokens.len() && depth > 0 {
        if is_punct(tokens, j, "[") {
            depth += 1;
        } else if is_punct(tokens, j, "]") {
            depth -= 1;
        } else if let Some(name) = ident_at(tokens, j) {
            if name == "test" {
                has_test = true;
            }
            if name == "not" {
                has_not = true;
            }
        }
        j += 1;
    }
    (j, has_test && !has_not)
}

/// Index just past the item that starts at `i`: the matching `}` of its first
/// top-level brace block, or a `;` before any brace (for `use` etc.).
pub(crate) fn scan_item_end(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0usize;
    let mut saw_brace = false;
    while i < tokens.len() {
        if is_punct(tokens, i, "{") {
            depth += 1;
            saw_brace = true;
        } else if is_punct(tokens, i, "}") {
            depth = depth.saturating_sub(1);
            if saw_brace && depth == 0 {
                return i + 1;
            }
        } else if is_punct(tokens, i, ";") && !saw_brace {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Marks every token inside a `#[test]` / `#[cfg(test)]`-guarded item.
pub(crate) fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(tokens, i, "#") && is_punct(tokens, i + 1, "[") {
            let (mut j, is_test) = scan_attr(tokens, i);
            if is_test {
                // Skip the rest of the attribute stack, then the item itself.
                while is_punct(tokens, j, "#") && is_punct(tokens, j + 1, "[") {
                    j = scan_attr(tokens, j).0;
                }
                let end = scan_item_end(tokens, j);
                for m in mask.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
            } else {
                i = j;
            }
        } else {
            i += 1;
        }
    }
    mask
}
