//! The analyzer's lightweight parser layer.
//!
//! Built on the token stream from [`crate::lex`], this recovers just enough
//! structure for the multi-pass rules — no `syn`, same offline discipline as
//! the lexer:
//!
//! * **item/block structure** — brace matching, `fn` bodies (free functions and
//!   impl methods, with the enclosing impl type), `struct` definitions with
//!   their named-field lists;
//! * **`use` resolution** — an alias → full-path map covering grouped imports
//!   (`use std::collections::{HashMap, HashSet}`) and `as` renames, so the
//!   passes can tell a `std::collections::HashMap` from some other `HashMap`;
//! * **type-evidence binding sets** — which identifiers (struct fields vs.
//!   locals/params) are bound to std hash containers, from `: HashMap<…>`
//!   annotations and `HashMap::new()`-style initialisers;
//! * **`Codec` impl inventory** — every `impl … Codec for Type` block with the
//!   token spans and line ranges of its `enc` and `dec` methods, feeding the
//!   cross-file codec-exhaustive pass.
//!
//! Everything here is per-file; the cross-file passes join `ParsedFile`s.

use std::collections::BTreeSet;

use crate::lex::{ident_at, is_punct, lex, test_mask, TagSite, Tok, Token};

/// A named-field struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// The named fields, in declaration order, with their lines.
    pub fields: Vec<(String, u32)>,
}

/// A function (free or method) with its body's token span.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Token range of the body: index of the opening `{` .. index of the
    /// matching `}` (inclusive bounds on the braces themselves).
    pub body: (usize, usize),
    /// The `impl` type the method belongs to, if any.
    pub impl_type: Option<String>,
}

/// One `impl … Codec for Type` block with its `enc`/`dec` method spans.
#[derive(Clone, Debug)]
pub struct CodecImpl {
    /// The implementing type's name.
    pub type_name: String,
    /// Line of the `impl` keyword.
    pub line: u32,
    /// Token span of the `enc` body (braces inclusive), with its line range.
    pub enc: Option<((usize, usize), (u32, u32))>,
    /// Token span of the `dec` body (braces inclusive), with its line range.
    pub dec: Option<((usize, usize), (u32, u32))>,
}

/// One source file after lexing + structural recovery. Produced by
/// [`parse_file`]; consumed by every pass.
pub struct ParsedFile {
    /// Workspace-relative path.
    pub path: String,
    pub(crate) tokens: Vec<Token>,
    pub(crate) tags: Vec<TagSite>,
    pub(crate) mask: Vec<bool>,
    /// For each token index holding `{`, the index of its matching `}`
    /// (`usize::MAX` when unmatched); and the reverse for `}`.
    pub(crate) brace_match: Vec<usize>,
    /// Structs with named fields.
    pub(crate) structs: Vec<StructDef>,
    /// Functions and methods.
    pub(crate) fns: Vec<FnDef>,
    /// `impl … Codec for Type` blocks.
    pub(crate) codec_impls: Vec<CodecImpl>,
    /// Struct fields bound to `std::collections::HashMap`/`HashSet` (reached
    /// through `self.<name>`).
    pub(crate) hash_fields: BTreeSet<String>,
    /// Locals and params bound to hash containers (reached as bare `<name>`).
    pub(crate) hash_locals: BTreeSet<String>,
    /// Whether `std::collections::HashMap`/`HashSet` is visible in this file
    /// under its plain name (via `use`); used to resolve bare annotations.
    std_hash_names: BTreeSet<String>,
    /// Whether `use std::env` makes bare `env::…` ambient.
    pub(crate) env_imported: bool,
}

/// Parses one source file into the structure the passes consume.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let (tokens, tags) = lex(src);
    let mask = test_mask(&tokens);
    let brace_match = match_braces(&tokens);
    let mut pf = ParsedFile {
        path: path.to_string(),
        tokens,
        tags,
        mask,
        brace_match,
        structs: Vec::new(),
        fns: Vec::new(),
        codec_impls: Vec::new(),
        hash_fields: BTreeSet::new(),
        hash_locals: BTreeSet::new(),
        std_hash_names: BTreeSet::new(),
        env_imported: false,
    };
    collect_uses(&mut pf);
    collect_structs(&mut pf);
    collect_fns_and_impls(&mut pf);
    collect_hash_bindings(&mut pf);
    pf
}

impl ParsedFile {
    /// The line of token `i` (0 when out of range).
    pub(crate) fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Whether the bare type name `name` (e.g. `HashMap`) resolves to the std
    /// hash container of that name in this file, either via `use
    /// std::collections::…` or because the occurrence at `i` is written fully
    /// qualified (`std::collections::HashMap`).
    pub(crate) fn is_std_hash_at(&self, i: usize) -> bool {
        let Some(name) = ident_at(&self.tokens, i) else {
            return false;
        };
        if name != "HashMap" && name != "HashSet" {
            return false;
        }
        if self.std_hash_names.contains(name) {
            return true;
        }
        // Fully qualified: `std :: collections :: HashMap`.
        i >= 4
            && is_punct(&self.tokens, i - 1, "::")
            && ident_at(&self.tokens, i - 2) == Some("collections")
            && is_punct(&self.tokens, i - 3, "::")
            && ident_at(&self.tokens, i - 4) == Some("std")
    }
}

/// Matches braces: for each `{` its closing `}` index and vice versa.
fn match_braces(tokens: &[Token]) -> Vec<usize> {
    let mut out = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..tokens.len() {
        if is_punct(tokens, i, "{") {
            stack.push(i);
        } else if is_punct(tokens, i, "}") {
            if let Some(open) = stack.pop() {
                out[open] = i;
                out[i] = open;
            }
        }
    }
    out
}

/// Builds the alias → full-path map from `use` declarations and notes which std
/// names are visible bare.
fn collect_uses(pf: &mut ParsedFile) {
    let mut i = 0;
    while i < pf.tokens.len() {
        if ident_at(&pf.tokens, i) == Some("use") {
            let end = next_semicolon(&pf.tokens, i);
            let mut prefix: Vec<String> = Vec::new();
            collect_use_tree(pf, i + 1, end, &mut prefix);
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

/// Walks one `use` tree between `start` and the terminating `;` at `end`,
/// recording resolved leaves (including `as` renames) into the file's
/// name-resolution sets. `prefix` is the path so far.
fn collect_use_tree(pf: &mut ParsedFile, start: usize, end: usize, prefix: &mut Vec<String>) {
    let mut i = start;
    let base_len = prefix.len();
    fn record(pf: &mut ParsedFile, alias: &str, path: &[String]) {
        let full = path.join("::");
        if full == "std::collections::HashMap" || full == "std::collections::HashSet" {
            pf.std_hash_names.insert(alias.to_string());
        }
        if full == "std::env" {
            pf.env_imported = true;
        }
    }
    while i < end {
        if let Some(name) = ident_at(&pf.tokens, i) {
            prefix.push(name.to_string());
            if is_punct(&pf.tokens, i + 1, "::") {
                if is_punct(&pf.tokens, i + 2, "{") {
                    // Group: recurse per comma segment inside the braces.
                    let close = pf.brace_match[i + 2];
                    if close != usize::MAX {
                        let mut seg_start = i + 3;
                        let mut depth = 0usize;
                        for j in i + 3..close {
                            let at_comma = is_punct(&pf.tokens, j, ",") && depth == 0;
                            if is_punct(&pf.tokens, j, "{") {
                                depth += 1;
                            } else if is_punct(&pf.tokens, j, "}") {
                                depth = depth.saturating_sub(1);
                            }
                            if at_comma {
                                collect_use_tree(pf, seg_start, j, prefix);
                                seg_start = j + 1;
                            }
                        }
                        collect_use_tree(pf, seg_start, close, prefix);
                        prefix.truncate(base_len);
                        return;
                    }
                }
                i += 2;
                continue;
            }
            // Leaf — possibly renamed with `as`.
            if ident_at(&pf.tokens, i + 1) == Some("as") {
                if let Some(alias) = ident_at(&pf.tokens, i + 2) {
                    let alias = alias.to_string();
                    let path = prefix.clone();
                    record(pf, &alias, &path);
                    prefix.pop();
                    i += 3;
                    continue;
                }
            }
            let leaf = name.to_string();
            let path = prefix.clone();
            record(pf, &leaf, &path);
            prefix.truncate(prefix.len() - 1);
            i += 1;
        } else {
            i += 1;
        }
    }
    prefix.truncate(base_len);
}

fn next_semicolon(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() && !is_punct(tokens, i, ";") {
        i += 1;
    }
    i
}

/// Records every named-field `struct` definition.
fn collect_structs(pf: &mut ParsedFile) {
    let mut i = 0;
    while i < pf.tokens.len() {
        if ident_at(&pf.tokens, i) == Some("struct") {
            if let Some(name) = ident_at(&pf.tokens, i + 1) {
                let name = name.to_string();
                // Find the body `{` (skipping generics / where clauses) or bail
                // at `;`/`(` — tuple and unit structs have no named fields.
                let mut j = i + 2;
                let mut body = None;
                while j < pf.tokens.len() {
                    if is_punct(&pf.tokens, j, "{") {
                        body = Some(j);
                        break;
                    }
                    if is_punct(&pf.tokens, j, ";") || is_punct(&pf.tokens, j, "(") {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    let close = pf.brace_match[open];
                    if close != usize::MAX {
                        let fields = struct_fields(pf, open, close);
                        pf.structs.push(StructDef { name, fields });
                        i = close + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
}

/// Extracts the field names between a struct body's braces: idents followed by
/// `:` at nesting depth 0 in field position (after `{`, `,`, an attribute's
/// `]`, or a `pub(...)` group).
fn struct_fields(pf: &ParsedFile, open: usize, close: usize) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut expecting = true;
    let mut depth = 0usize; // nested braces/parens/brackets/angles inside types
    let mut j = open + 1;
    while j < close {
        let t = &pf.tokens[j];
        match &t.tok {
            Tok::Punct(p) => match p.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth = depth.saturating_sub(1);
                    // `pub(crate)` / attribute close keeps field position.
                }
                "<" => depth += 1,
                ">" => depth = depth.saturating_sub(1),
                "," if depth == 0 => expecting = true,
                _ => {}
            },
            Tok::Ident(name) if expecting && depth == 0 && name != "pub" => {
                if is_punct(&pf.tokens, j + 1, ":") {
                    fields.push((name.clone(), t.line));
                }
                expecting = false;
            }
            _ => {}
        }
        j += 1;
    }
    fields
}

/// Records every `fn` (with body span and enclosing impl type) plus every
/// `impl … Codec for Type` block.
fn collect_fns_and_impls(pf: &mut ParsedFile) {
    // Impl spans: (type_name, body_open, body_close), innermost last.
    let mut impls: Vec<(String, usize, usize, Option<String>, u32)> = Vec::new();
    let mut i = 0;
    while i < pf.tokens.len() {
        if ident_at(&pf.tokens, i) == Some("impl") {
            if let Some((type_name, trait_name, open, line)) = parse_impl_header(pf, i) {
                let close = pf.brace_match[open];
                if close != usize::MAX {
                    impls.push((type_name, open, close, trait_name, line));
                }
            }
        }
        i += 1;
    }

    let impl_of = |idx: usize| -> Option<&str> {
        impls
            .iter()
            .filter(|(_, open, close, _, _)| *open < idx && idx < *close)
            .map(|(name, _, _, _, _)| name.as_str())
            .next_back()
    };

    let mut i = 0;
    while i < pf.tokens.len() {
        if ident_at(&pf.tokens, i) == Some("fn") {
            if let Some(name) = ident_at(&pf.tokens, i + 1) {
                // The body `{`: after the signature's parens; trait-decl
                // methods end in `;` instead.
                let mut j = i + 2;
                let mut open = None;
                while j < pf.tokens.len() {
                    if is_punct(&pf.tokens, j, "{") {
                        open = Some(j);
                        break;
                    }
                    if is_punct(&pf.tokens, j, ";") {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = open {
                    let close = pf.brace_match[open];
                    if close != usize::MAX {
                        pf.fns.push(FnDef {
                            name: name.to_string(),
                            body: (open, close),
                            impl_type: impl_of(i).map(str::to_string),
                        });
                        // Do NOT skip the body: nested fns/impls are collected too.
                    }
                }
            }
        }
        i += 1;
    }

    // Codec impls: trait name's last segment is `Codec`.
    for (type_name, open, close, trait_name, line) in &impls {
        if trait_name.as_deref() != Some("Codec") {
            continue;
        }
        let mut enc = None;
        let mut dec = None;
        for f in &pf.fns {
            if f.body.0 > *open && f.body.1 < *close {
                let span = (f.body, (pf.line(f.body.0), pf.line(f.body.1)));
                if f.name == "enc" && enc.is_none() {
                    enc = Some(span);
                } else if f.name == "dec" && dec.is_none() {
                    dec = Some(span);
                }
            }
        }
        pf.codec_impls.push(CodecImpl {
            type_name: type_name.clone(),
            line: *line,
            enc,
            dec,
        });
    }
}

/// Parses an `impl` header at token `i`: returns (type name, trait last
/// segment, body-open index, line). Handles `impl<T> Trait for Type`,
/// `impl path::Trait for Type<…>`, and inherent `impl Type`.
fn parse_impl_header(pf: &ParsedFile, i: usize) -> Option<(String, Option<String>, usize, u32)> {
    let line = pf.line(i);
    let mut j = i + 1;
    // Skip generic params `<…>`.
    if is_punct(&pf.tokens, j, "<") {
        let mut depth = 1;
        j += 1;
        while j < pf.tokens.len() && depth > 0 {
            if is_punct(&pf.tokens, j, "<") {
                depth += 1;
            } else if is_punct(&pf.tokens, j, ">") {
                depth -= 1;
            }
            j += 1;
        }
    }
    // First path: trait (if followed by `for`) or the inherent type.
    let (first_last_seg, after_first) = parse_path(pf, j)?;
    let mut trait_name = None;
    let mut type_name = first_last_seg;
    let mut k = after_first;
    if ident_at(&pf.tokens, k) == Some("for") {
        trait_name = Some(type_name);
        let (ty, after_ty) = parse_path(pf, k + 1)?;
        type_name = ty;
        k = after_ty;
    }
    // Find the body `{` (skipping where clauses).
    while k < pf.tokens.len() {
        if is_punct(&pf.tokens, k, "{") {
            return Some((type_name, trait_name, k, line));
        }
        if is_punct(&pf.tokens, k, ";") {
            return None;
        }
        k += 1;
    }
    None
}

/// Parses a (possibly `::`-qualified, possibly generic) path starting at `i`;
/// returns (last segment before any generics, index after the path). Fails on
/// non-path starts (`(`, `[`, `&` — tuple/slice/ref impls are not named types).
fn parse_path(pf: &ParsedFile, mut i: usize) -> Option<(String, usize)> {
    let mut last = ident_at(&pf.tokens, i)?.to_string();
    i += 1;
    loop {
        if is_punct(&pf.tokens, i, "::") {
            if let Some(seg) = ident_at(&pf.tokens, i + 1) {
                last = seg.to_string();
                i += 2;
                continue;
            }
        }
        if is_punct(&pf.tokens, i, "<") {
            let mut depth = 1;
            i += 1;
            while i < pf.tokens.len() && depth > 0 {
                if is_punct(&pf.tokens, i, "<") {
                    depth += 1;
                } else if is_punct(&pf.tokens, i, ">") {
                    depth -= 1;
                }
                i += 1;
            }
            continue;
        }
        return Some((last, i));
    }
}

/// Collects identifiers bound to std hash containers, split into struct fields
/// (reached via `self.x`) and locals/params (reached bare).
fn collect_hash_bindings(pf: &mut ParsedFile) {
    // Struct-field spans, for classifying an annotation site.
    let field_lines: BTreeSet<(String, u32)> = pf
        .structs
        .iter()
        .flat_map(|s| s.fields.iter().cloned())
        .collect();

    let mut fields = BTreeSet::new();
    let mut locals = BTreeSet::new();
    for i in 0..pf.tokens.len() {
        // Bindings inside #[cfg(test)] must not pollute library-code analysis:
        // a test-only `let pairs = HashMap::new()` would otherwise flag every
        // library local that happens to share the name.
        if pf.mask[i] || !pf.is_std_hash_at(i) {
            continue;
        }
        // Annotation form: `name : [&] [mut] [path ::]* HashMap`. Walk back over
        // the path / reference tokens to the `:` and the bound name.
        let mut j = i;
        while j >= 2 && is_punct(&pf.tokens, j - 1, "::") && ident_at(&pf.tokens, j - 2).is_some() {
            j -= 2;
        }
        while j >= 1
            && (is_punct(&pf.tokens, j - 1, "&")
                || ident_at(&pf.tokens, j - 1) == Some("mut")
                || matches!(&pf.tokens[j - 1].tok, Tok::Ident(s) if s == "dyn"))
        {
            j -= 1;
        }
        if j >= 2 && is_punct(&pf.tokens, j - 1, ":") {
            if let Some(name) = ident_at(&pf.tokens, j - 2) {
                let line = pf.tokens[j - 2].line;
                if field_lines.contains(&(name.to_string(), line)) {
                    fields.insert(name.to_string());
                } else {
                    locals.insert(name.to_string());
                }
                continue;
            }
        }
        // Initialiser form: `let [mut] name = [path::]HashMap :: new|with_capacity|…`
        // or a `.collect::<HashMap<…>>()` turbofish inside a `let` statement:
        // search back to the statement start for `let name`.
        if let Some(name) = let_binding_before(pf, i) {
            locals.insert(name);
        }
    }
    pf.hash_fields = fields;
    pf.hash_locals = locals;
}

/// If token `i` sits inside a `let` statement, the bound identifier.
fn let_binding_before(pf: &ParsedFile, i: usize) -> Option<String> {
    // Scan back to the statement boundary.
    let mut j = i;
    while j > 0 {
        if is_punct(&pf.tokens, j - 1, ";")
            || is_punct(&pf.tokens, j - 1, "{")
            || is_punct(&pf.tokens, j - 1, "}")
        {
            break;
        }
        j -= 1;
    }
    if ident_at(&pf.tokens, j) == Some("let") {
        let mut k = j + 1;
        if ident_at(&pf.tokens, k) == Some("mut") {
            k += 1;
        }
        return ident_at(&pf.tokens, k).map(str::to_string);
    }
    None
}
