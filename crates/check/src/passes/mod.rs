//! The analyzer's rule-family passes.
//!
//! Each pass consumes [`crate::parse::ParsedFile`]s and emits *raw* findings —
//! no escape-tag filtering here. The driver in [`crate::lint`] owns
//! suppression (via [`crate::tags::TagIndex`]) so that stale tags can be
//! detected across every pass uniformly.

pub(crate) mod ambient;
pub(crate) mod codec;
pub(crate) mod iter_order;
pub(crate) mod lock_order;

use crate::lex::is_punct;
use crate::parse::ParsedFile;

/// Index of the first token of the statement containing token `i`: the token
/// after the previous `;`, `{` or `}` (or 0).
pub(crate) fn stmt_start(pf: &ParsedFile, i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        if is_punct(&pf.tokens, j - 1, ";")
            || is_punct(&pf.tokens, j - 1, "{")
            || is_punct(&pf.tokens, j - 1, "}")
        {
            break;
        }
        j -= 1;
    }
    j
}

/// Index of the token that ends the statement containing token `i`: the first
/// `;` outside parens, a `)`/`]` closing an enclosing group (the expression is
/// an argument), or a `}` closing the enclosing block (tail expression).
/// Matched brace blocks *inside* the statement (closures, match/if bodies) are
/// jumped over via the brace match.
pub(crate) fn stmt_end(pf: &ParsedFile, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < pf.tokens.len() {
        if is_punct(&pf.tokens, j, "(") || is_punct(&pf.tokens, j, "[") {
            depth += 1;
        } else if is_punct(&pf.tokens, j, ")") || is_punct(&pf.tokens, j, "]") {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if is_punct(&pf.tokens, j, "{") {
            let c = pf.brace_match[j];
            if c == usize::MAX {
                return j;
            }
            j = c;
        } else if is_punct(&pf.tokens, j, "}") || (is_punct(&pf.tokens, j, ";") && depth == 0) {
            return j;
        }
        j += 1;
    }
    pf.tokens.len().saturating_sub(1)
}

/// Index of the `}` closing the innermost brace block containing token `i`
/// (token-stream end when `i` is at the top level).
pub(crate) fn enclosing_block_close(pf: &ParsedFile, i: usize) -> usize {
    let mut close = pf.tokens.len();
    for o in 0..pf.tokens.len() {
        if is_punct(&pf.tokens, o, "{") {
            let c = pf.brace_match[o];
            if c != usize::MAX && o < i && i < c {
                close = c; // opens are visited in order, so the last hit is innermost
            }
        }
    }
    close
}
