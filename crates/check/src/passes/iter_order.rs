//! **iter-order**: iteration over `std` hash containers in library code.
//!
//! `HashMap`/`HashSet` iteration order is unspecified and varies run to run
//! once the hasher is keyed (and across insertion histories even unkeyed), so
//! any hash-container iteration whose order can reach an output is a
//! bit-identity hazard. The pass flags iteration evidence — a `for` loop over a
//! hash-bound binding, or a `.iter()`/`.keys()`/`.values()`/`.drain()`-family
//! call on one — unless the statement provably discards order:
//!
//! * the chain ends in an order-insensitive aggregation (`count`, `len`,
//!   `is_empty`, `any`, `all`, `contains`, `contains_key`) or a `sort*` call;
//! * the chain collects into a deterministic-content container (`BTreeMap`,
//!   `BTreeSet`, `HashMap`, `HashSet`) via turbofish or `let` annotation;
//! * the collected binding is sorted by the *next* statement
//!   (`let mut v: Vec<_> = m.keys().collect(); v.sort_unstable();`).
//!
//! Anything else needs a rewrite (BTree container, collect-then-sort) or an
//! in-line `// lint: iter-order` justification.

use std::collections::BTreeSet;

use super::{stmt_end, stmt_start};
use crate::lex::{ident_at, is_punct};
use crate::lint::{Rule, Violation};
use crate::parse::ParsedFile;

/// Methods that iterate a hash container.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Chain-level terminal methods whose result is order-insensitive.
const SINKS: &[&str] = &[
    "count",
    "len",
    "is_empty",
    "any",
    "all",
    "contains",
    "contains_key",
];

/// Collect targets with deterministic content regardless of feed order.
const DET_TARGETS: &[&str] = &["BTreeMap", "BTreeSet", "HashMap", "HashSet"];

pub(crate) fn check(pf: &ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    for i in 0..pf.tokens.len() {
        if pf.mask[i] {
            continue;
        }
        let Some(name) = ident_at(&pf.tokens, i) else {
            continue;
        };
        // A field occurrence reaches the container through `<recv>.name`; a
        // bare occurrence must be a known hash local/param.
        let hashy = if i > 0 && is_punct(&pf.tokens, i - 1, ".") {
            pf.hash_fields.contains(name)
        } else {
            pf.hash_locals.contains(name)
        };
        if !hashy {
            continue;
        }
        // Skip the binding/annotation site itself (`name: HashMap<…>`).
        if is_punct(&pf.tokens, i + 1, ":") {
            continue;
        }
        let start = stmt_start(pf, i);

        // A `for` loop consuming the container directly: the body sees the
        // nondeterministic order, no sink can launder it.
        if ident_at(&pf.tokens, start) == Some("for")
            && (start..i).any(|j| ident_at(&pf.tokens, j) == Some("in"))
        {
            push(&mut out, &mut seen, pf, i, name, true);
            continue;
        }

        // Method-chain iteration evidence, then look for a deterministic sink.
        let Some(m_idx) = chain_iter_method(pf, i) else {
            continue;
        };
        if deterministic_sink(pf, start, m_idx) {
            continue;
        }
        push(&mut out, &mut seen, pf, i, name, false);
    }
    out
}

fn push(
    out: &mut Vec<Violation>,
    seen: &mut BTreeSet<(u32, String)>,
    pf: &ParsedFile,
    i: usize,
    name: &str,
    for_loop: bool,
) {
    let line = pf.tokens[i].line;
    if !seen.insert((line, name.to_string())) {
        return;
    }
    let message = if for_loop {
        format!(
            "for-loop over std hash container `{name}` visits entries in nondeterministic \
             order; iterate a sorted snapshot (BTree container or collect-then-sort) or \
             justify with `// lint: iter-order`"
        )
    } else {
        format!(
            "iteration over std hash container `{name}` can leak nondeterministic order into \
             results; sort, collect through a deterministic container, aggregate \
             order-insensitively, or justify with `// lint: iter-order`"
        )
    };
    out.push(Violation {
        file: pf.path.clone(),
        line,
        rule: Rule::IterOrder,
        message,
    });
}

/// If the occurrence at `i` heads a method chain that iterates the container,
/// the token index of the iterating method's name. The chain may pass through
/// `.clone()` (`m.clone().into_iter()`); any other intervening method (point
/// lookups, `entry`, `insert`, …) is not iteration.
fn chain_iter_method(pf: &ParsedFile, i: usize) -> Option<usize> {
    let mut cur = i;
    loop {
        if !is_punct(&pf.tokens, cur + 1, ".") {
            return None;
        }
        let m = ident_at(&pf.tokens, cur + 2)?;
        if !is_punct(&pf.tokens, cur + 3, "(") {
            return None;
        }
        if ITER_METHODS.contains(&m) {
            return Some(cur + 2);
        }
        if m != "clone" {
            return None;
        }
        cur = match_paren(pf, cur + 3)?;
    }
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(pf: &ParsedFile, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in open..pf.tokens.len() {
        if is_punct(&pf.tokens, j, "(") {
            depth += 1;
        } else if is_punct(&pf.tokens, j, ")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Whether the statement discards iteration order: a chain-level sink, a
/// deterministic collect target, or the let-then-sort idiom.
fn deterministic_sink(pf: &ParsedFile, start: usize, m_idx: usize) -> bool {
    let end = stmt_end(pf, m_idx);
    let mut depth = 0i32;
    let mut j = m_idx;
    while j < end {
        if is_punct(&pf.tokens, j, "(") || is_punct(&pf.tokens, j, "[") {
            depth += 1;
        } else if is_punct(&pf.tokens, j, ")") || is_punct(&pf.tokens, j, "]") {
            depth -= 1;
        } else if is_punct(&pf.tokens, j, "{") {
            // Closure / match bodies are not chain level; jump them.
            let c = pf.brace_match[j];
            if c == usize::MAX {
                break;
            }
            j = c;
        } else if depth == 0 && j > 0 && is_punct(&pf.tokens, j - 1, ".") {
            if let Some(m) = ident_at(&pf.tokens, j) {
                if SINKS.contains(&m) || m.starts_with("sort") {
                    return true;
                }
                if m == "collect" && collect_is_deterministic(pf, start, j) {
                    return true;
                }
            }
        }
        j += 1;
    }
    let_then_sort(pf, start, end)
}

/// Whether the `collect` at `j` targets a deterministic-content container, via
/// turbofish (`collect::<BTreeMap<_, _>>()`) or the `let` annotation of the
/// statement starting at `start`.
fn collect_is_deterministic(pf: &ParsedFile, start: usize, j: usize) -> bool {
    if is_punct(&pf.tokens, j + 1, "::") && is_punct(&pf.tokens, j + 2, "<") {
        let mut angle = 1i32;
        let mut k = j + 3;
        while k < pf.tokens.len() && angle > 0 {
            if is_punct(&pf.tokens, k, "<") {
                angle += 1;
            } else if is_punct(&pf.tokens, k, ">") {
                angle -= 1;
            } else if let Some(t) = ident_at(&pf.tokens, k) {
                if DET_TARGETS.contains(&t) {
                    return true;
                }
            }
            k += 1;
        }
        return false;
    }
    // `let name: TYPE = … .collect();`
    if ident_at(&pf.tokens, start) == Some("let") {
        let mut k = start + 1;
        if ident_at(&pf.tokens, k) == Some("mut") {
            k += 1;
        }
        if ident_at(&pf.tokens, k).is_some() && is_punct(&pf.tokens, k + 1, ":") {
            let mut a = k + 2;
            while a < pf.tokens.len() && !is_punct(&pf.tokens, a, "=") {
                if let Some(t) = ident_at(&pf.tokens, a) {
                    if DET_TARGETS.contains(&t) {
                        return true;
                    }
                }
                a += 1;
            }
        }
    }
    false
}

/// The collect-then-sort idiom: a `let`-bound collection sorted by the very
/// next statement (`let mut keys: Vec<_> = m.keys().collect(); keys.sort…;`).
fn let_then_sort(pf: &ParsedFile, start: usize, end: usize) -> bool {
    if ident_at(&pf.tokens, start) != Some("let") || !is_punct(&pf.tokens, end, ";") {
        return false;
    }
    let mut k = start + 1;
    if ident_at(&pf.tokens, k) == Some("mut") {
        k += 1;
    }
    let Some(bound) = ident_at(&pf.tokens, k) else {
        return false;
    };
    ident_at(&pf.tokens, end + 1) == Some(bound)
        && is_punct(&pf.tokens, end + 2, ".")
        && ident_at(&pf.tokens, end + 3).is_some_and(|m| m.starts_with("sort"))
}
