//! **codec-exhaustive**: persisted-format drift between a struct and its
//! `Codec` impl.
//!
//! A struct that gains a field whose `Codec` impl forgets it corrupts every
//! snapshot/journal round-trip *silently*: `enc` drops the data, `dec` fills
//! it with whatever the constructor defaults. This cross-file pass joins every
//! `impl … Codec for Type` block against the workspace's struct definitions
//! and requires each named field to appear — as an identifier token — inside
//! both the `enc` and the `dec` body. Enum impls and macro-generated newtype
//! impls have no matching struct definition and are skipped; when several
//! structs share a name, the best-matching candidate (fewest missing fields)
//! is the one held against the impl, so an impl is only flagged when *no*
//! same-named struct is fully covered.

use std::collections::BTreeMap;

use crate::lex::ident_at;
use crate::lint::{Rule, Violation};
use crate::parse::{ParsedFile, StructDef};

/// One (type, field) of the workspace's persisted surface, with the line
/// ranges of the `enc`/`dec` bodies covering it. Public so the mutation test
/// can enumerate every codec field and knock each one out in turn.
#[derive(Clone, Debug)]
pub struct CodecField {
    /// File holding the `Codec` impl.
    pub file: String,
    /// The implementing type.
    pub type_name: String,
    /// The field name.
    pub field: String,
    /// 1-based line range (inclusive) of the `enc` body.
    pub enc_lines: (u32, u32),
    /// 1-based line range (inclusive) of the `dec` body.
    pub dec_lines: (u32, u32),
}

fn struct_index(files: &[ParsedFile]) -> BTreeMap<&str, Vec<&StructDef>> {
    let mut idx: BTreeMap<&str, Vec<&StructDef>> = BTreeMap::new();
    for pf in files {
        for sd in &pf.structs {
            idx.entry(sd.name.as_str()).or_default().push(sd);
        }
    }
    idx
}

fn span_mentions(pf: &ParsedFile, span: (usize, usize), name: &str) -> bool {
    (span.0..=span.1.min(pf.tokens.len().saturating_sub(1)))
        .any(|i| ident_at(&pf.tokens, i) == Some(name))
}

/// The best-matching candidate's missing fields: `(missing_from_enc,
/// missing_from_dec)`, empty when some candidate is fully covered.
fn best_missing(
    pf: &ParsedFile,
    candidates: &[&StructDef],
    enc: (usize, usize),
    dec: (usize, usize),
) -> (Vec<String>, Vec<String>) {
    let mut best: Option<(Vec<String>, Vec<String>)> = None;
    for sd in candidates {
        let miss_enc: Vec<String> = sd
            .fields
            .iter()
            .filter(|(f, _)| !span_mentions(pf, enc, f))
            .map(|(f, _)| f.clone())
            .collect();
        let miss_dec: Vec<String> = sd
            .fields
            .iter()
            .filter(|(f, _)| !span_mentions(pf, dec, f))
            .map(|(f, _)| f.clone())
            .collect();
        let score = miss_enc.len() + miss_dec.len();
        if best.as_ref().is_none_or(|(e, d)| score < e.len() + d.len()) {
            best = Some((miss_enc, miss_dec));
        }
    }
    best.unwrap_or_default()
}

pub(crate) fn check(files: &[ParsedFile]) -> Vec<Violation> {
    let idx = struct_index(files);
    let mut out = Vec::new();
    for pf in files {
        for ci in &pf.codec_impls {
            let Some(candidates) = idx.get(ci.type_name.as_str()) else {
                continue;
            };
            let (Some((enc_span, _)), Some((dec_span, _))) = (ci.enc, ci.dec) else {
                continue;
            };
            let (miss_enc, miss_dec) = best_missing(pf, candidates, enc_span, dec_span);
            if miss_enc.is_empty() && miss_dec.is_empty() {
                continue;
            }
            let mut parts = Vec::new();
            if !miss_enc.is_empty() {
                parts.push(format!("`{}` missing from enc", miss_enc.join("`, `")));
            }
            if !miss_dec.is_empty() {
                parts.push(format!("`{}` missing from dec", miss_dec.join("`, `")));
            }
            out.push(Violation {
                file: pf.path.clone(),
                line: ci.line,
                rule: Rule::CodecExhaustive,
                message: format!(
                    "Codec impl for `{}` drifts from its struct: {} — snapshots/journals \
                     would silently drop the field; persist it (or justify a derived/\
                     rebuilt field with `// lint: codec-exhaustive`)",
                    ci.type_name,
                    parts.join("; ")
                ),
            });
        }
    }
    out
}

/// Every (type, field) pair the codec-exhaustive pass holds an impl to, with
/// `enc`/`dec` body line ranges — the mutation test's work list.
pub(crate) fn surface(files: &[ParsedFile]) -> Vec<CodecField> {
    let idx = struct_index(files);
    let mut out = Vec::new();
    for pf in files {
        for ci in &pf.codec_impls {
            let Some(candidates) = idx.get(ci.type_name.as_str()) else {
                continue;
            };
            let (Some((enc_span, enc_lines)), Some((dec_span, dec_lines))) = (ci.enc, ci.dec)
            else {
                continue;
            };
            // The struct this impl is held against: fewest missing fields.
            let mut best: Option<&StructDef> = None;
            let mut best_score = usize::MAX;
            for sd in candidates {
                let score = sd
                    .fields
                    .iter()
                    .filter(|(f, _)| {
                        !span_mentions(pf, enc_span, f) || !span_mentions(pf, dec_span, f)
                    })
                    .count();
                if score < best_score {
                    best_score = score;
                    best = Some(sd);
                }
            }
            if let Some(sd) = best {
                for (field, _) in &sd.fields {
                    out.push(CodecField {
                        file: pf.path.clone(),
                        type_name: ci.type_name.clone(),
                        field: field.clone(),
                        enc_lines,
                        dec_lines,
                    });
                }
            }
        }
    }
    out
}
