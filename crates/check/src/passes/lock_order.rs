//! **lock-order**: cycles in the workspace's Mutex-acquisition graph.
//!
//! Deadlock needs two locks taken in opposite orders on two threads. The pass
//! collects *nested-lock evidence* — a `.lock()` call made while another lock
//! guard is still live in the same function body — into a directed
//! acquisition graph, then fails on cycles. Lock identity is structural:
//! `Type::field` for `self.field.lock()` (and for `x.field.lock()` when
//! exactly one workspace struct owns a field of that name), `file::name` for
//! bare locals. Guard liveness is approximated lexically: a `let`-bound guard
//! lives to the end of its enclosing block (or an explicit `drop(guard)`);
//! a temporary guard lives to the end of its statement.
//!
//! A justified exception (`// lint: lock-order` on the acquisition that closes
//! the cycle) must explain why the two orders can never interleave.

use std::collections::{BTreeMap, BTreeSet};

use super::{enclosing_block_close, stmt_end, stmt_start};
use crate::lex::{ident_at, is_punct};
use crate::lint::{Rule, Violation};
use crate::parse::{FnDef, ParsedFile};

/// One `.lock()` acquisition with its structural identity and guard liveness.
struct Acq {
    id: String,
    idx: usize,
    live_end: usize,
    line: u32,
}

/// Edge evidence: the file/line of the inner (second) acquisition.
type Edges = BTreeMap<String, BTreeMap<String, (String, u32)>>;

pub(crate) fn check(files: &[ParsedFile]) -> Vec<Violation> {
    // field name -> owning struct names, workspace-wide, to qualify
    // `x.field.lock()` receivers.
    let mut field_owner: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for pf in files {
        for sd in &pf.structs {
            for (f, _) in &sd.fields {
                field_owner
                    .entry(f.as_str())
                    .or_default()
                    .insert(sd.name.as_str());
            }
        }
    }

    let mut edges: Edges = BTreeMap::new();
    for pf in files {
        for f in &pf.fns {
            let acqs = collect_acqs(pf, f, &field_owner);
            for a in &acqs {
                for b in &acqs {
                    if a.idx < b.idx && b.idx <= a.live_end && a.id != b.id {
                        edges
                            .entry(a.id.clone())
                            .or_default()
                            .entry(b.id.clone())
                            .or_insert((pf.path.clone(), b.line));
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for cycle in find_cycles(&edges) {
        let key: BTreeSet<String> = cycle.iter().cloned().collect();
        if !reported.insert(key) {
            continue;
        }
        // Evidence: each edge around the cycle; anchor the finding on the edge
        // that closes it (last -> first).
        let mut hops = Vec::new();
        for w in 0..cycle.len() {
            let from = &cycle[w];
            let to = &cycle[(w + 1) % cycle.len()];
            if let Some((file, line)) = edges.get(from).and_then(|m| m.get(to)) {
                hops.push(format!("{from} → {to} at {file}:{line}"));
            }
        }
        let (anchor_file, anchor_line) = edges
            .get(&cycle[cycle.len() - 1])
            .and_then(|m| m.get(&cycle[0]))
            .cloned()
            .unwrap_or_else(|| (files[0].path.clone(), 1));
        out.push(Violation {
            file: anchor_file,
            line: anchor_line,
            rule: Rule::LockOrder,
            message: format!(
                "lock-order cycle in the Mutex-acquisition graph: {} — pick one global \
                 order (or justify a never-interleaving pair with `// lint: lock-order`)",
                hops.join("; ")
            ),
        });
    }
    out
}

/// Every `.lock()` call inside `f`'s body, with identity and liveness.
fn collect_acqs(
    pf: &ParsedFile,
    f: &FnDef,
    field_owner: &BTreeMap<&str, BTreeSet<&str>>,
) -> Vec<Acq> {
    let (open, close) = f.body;
    let mut out = Vec::new();
    for i in open..close {
        if pf.mask[i] {
            continue;
        }
        if ident_at(&pf.tokens, i) != Some("lock")
            || i < 2
            || !is_punct(&pf.tokens, i - 1, ".")
            || !is_punct(&pf.tokens, i + 1, "(")
        {
            continue;
        }
        let Some((root, last)) = receiver(pf, i) else {
            continue;
        };
        let stem = file_stem(&pf.path);
        let id = if root == "self" && last != "self" {
            match &f.impl_type {
                Some(t) => format!("{t}::{last}"),
                None => format!("{stem}::{last}"),
            }
        } else if last != root {
            // `x.field.lock()` — qualify by the unique owning struct if any.
            match field_owner.get(last.as_str()) {
                Some(owners) if owners.len() == 1 => {
                    format!("{}::{last}", owners.iter().next().map_or("?", |o| o))
                }
                _ => format!("{stem}::{last}"),
            }
        } else {
            format!("{stem}::{last}")
        };
        out.push(Acq {
            id,
            idx: i,
            live_end: liveness_end(pf, i),
            line: pf.tokens[i].line,
        });
    }
    out
}

/// The receiver chain of the `.lock()` at `i`: `(root identifier, last
/// identifier)`. Walks back over `.`-chains, skipping index/call groups
/// (`self.nodes[i].journal.lock()`, `self.node(i).journal.lock()`).
fn receiver(pf: &ParsedFile, i: usize) -> Option<(String, String)> {
    let last = ident_at(&pf.tokens, i - 2)?.to_string();
    let mut k = i - 2;
    loop {
        if k >= 2 && is_punct(&pf.tokens, k - 1, ".") {
            if ident_at(&pf.tokens, k - 2).is_some() {
                k -= 2;
                continue;
            }
            // `… ) . x` / `… ] . x`: skip back over the group to its opener.
            let (close_p, open_p) = if is_punct(&pf.tokens, k - 2, ")") {
                (")", "(")
            } else if is_punct(&pf.tokens, k - 2, "]") {
                ("]", "[")
            } else {
                break;
            };
            let mut depth = 0usize;
            let mut j = k - 2;
            loop {
                if is_punct(&pf.tokens, j, close_p) {
                    depth += 1;
                } else if is_punct(&pf.tokens, j, open_p) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return Some((last.clone(), last));
                }
                j -= 1;
            }
            if j >= 1 && ident_at(&pf.tokens, j - 1).is_some() {
                k = j - 1;
                continue;
            }
            break;
        }
        break;
    }
    let root = ident_at(&pf.tokens, k).unwrap_or(&last).to_string();
    Some((root, last))
}

/// How long the guard produced by the `.lock()` at `i` stays live.
fn liveness_end(pf: &ParsedFile, i: usize) -> usize {
    let start = stmt_start(pf, i);
    if ident_at(&pf.tokens, start) == Some("let") {
        let mut k = start + 1;
        if ident_at(&pf.tokens, k) == Some("mut") {
            k += 1;
        }
        if let Some(name) = ident_at(&pf.tokens, k) {
            if name != "_" {
                let close = enclosing_block_close(pf, i);
                // An explicit `drop(name)` releases early.
                for j in i..close.min(pf.tokens.len()) {
                    if ident_at(&pf.tokens, j) == Some("drop")
                        && is_punct(&pf.tokens, j + 1, "(")
                        && ident_at(&pf.tokens, j + 2) == Some(name)
                        && is_punct(&pf.tokens, j + 3, ")")
                    {
                        return j;
                    }
                }
                return close;
            }
        }
    }
    stmt_end(pf, i)
}

fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .strip_suffix(".rs")
        .unwrap_or(path)
}

/// Every elementary cycle reachable in DFS order (one per back edge), as node
/// sequences. Deterministic: adjacency is BTreeMap-ordered.
fn find_cycles(edges: &Edges) -> Vec<Vec<String>> {
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();
    let mut cycles: Vec<Vec<String>> = Vec::new();

    fn dfs<'a>(
        node: &'a str,
        edges: &'a Edges,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
        cycles: &mut Vec<Vec<String>>,
    ) {
        color.insert(node, 1);
        stack.push(node);
        if let Some(next) = edges.get(node) {
            for to in next.keys() {
                match color.get(to.as_str()).copied().unwrap_or(0) {
                    0 => dfs(to, edges, color, stack, cycles),
                    1 => {
                        if let Some(pos) = stack.iter().position(|n| *n == to) {
                            cycles.push(stack[pos..].iter().map(|s| s.to_string()).collect());
                        }
                    }
                    _ => {}
                }
            }
        }
        stack.pop();
        color.insert(node, 2);
    }

    for node in edges.keys() {
        if color.get(node.as_str()).copied().unwrap_or(0) == 0 {
            dfs(node, edges, &mut color, &mut stack, &mut cycles);
        }
    }
    cycles
}
