//! **ambient-nondeterminism**: wall-clock, OS entropy and environment reads.
//!
//! Re-execution equivalence (the house bit-identity contracts) dies the moment
//! library code reads ambient state: `Instant::now` / `SystemTime` (wall
//! clock), `thread_rng` / `from_entropy` (OS entropy), `std::env`
//! (configuration picked up implicitly). All timing must route through the
//! `xmap_engine::clock` Stopwatch facade (the one file allowed to touch
//! `Instant`), RNG streams must derive from explicit `(seed, key)` pairs, and
//! configuration must be threaded as parameters. Binaries, benches and test
//! code are exempt (driver-side); a deliberate exception carries
//! `// lint: ambient-nondeterminism`.

use crate::lex::{ident_at, is_punct};
use crate::lint::{Rule, Violation};
use crate::parse::ParsedFile;

pub(crate) fn check(pf: &ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |line: u32, message: String| {
        out.push(Violation {
            file: pf.path.clone(),
            line,
            rule: Rule::Ambient,
            message,
        });
    };
    for i in 0..pf.tokens.len() {
        if pf.mask[i] {
            continue;
        }
        match ident_at(&pf.tokens, i) {
            Some("Instant")
                if is_punct(&pf.tokens, i + 1, "::")
                    && ident_at(&pf.tokens, i + 2) == Some("now") =>
            {
                push(
                    pf.tokens[i + 2].line,
                    "ambient clock read `Instant::now()`; route timing through the \
                     xmap_engine::clock Stopwatch facade or justify with \
                     `// lint: ambient-nondeterminism`"
                        .to_string(),
                );
            }
            Some("SystemTime") => {
                push(
                    pf.tokens[i].line,
                    "`SystemTime` is ambient wall-clock state; carry explicit timesteps \
                     (or the clock facade) instead, or justify with \
                     `// lint: ambient-nondeterminism`"
                        .to_string(),
                );
            }
            Some(rng @ ("thread_rng" | "from_entropy")) => {
                push(
                    pf.tokens[i].line,
                    format!(
                        "`{rng}` draws from ambient OS entropy; derive RNG streams from an \
                         explicit (seed, key) instead, or justify with \
                         `// lint: ambient-nondeterminism`"
                    ),
                );
            }
            Some("env") if is_punct(&pf.tokens, i + 1, "::") => {
                let qualified = i >= 2
                    && is_punct(&pf.tokens, i - 1, "::")
                    && ident_at(&pf.tokens, i - 2) == Some("std");
                let bare = pf.env_imported && (i == 0 || !is_punct(&pf.tokens, i - 1, "::"));
                if qualified || bare {
                    push(
                        pf.tokens[i].line,
                        "`std::env` read in library code pulls configuration from ambient \
                         process state; thread it through explicit parameters or justify \
                         with `// lint: ambient-nondeterminism`"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    out
}
