//! `xmap-lint` v2: the workspace's determinism auditor.
//!
//! PR 7's five token-level house rules now sit on a shared lexer
//! ([`crate::lex`]) and a lightweight parser layer ([`crate::parse`] — item
//! structure, `use` resolution, struct field lists; no `syn`, same offline
//! discipline), joined by four multi-pass rule families ([`crate::passes`])
//! aimed at the bit-identity killers the contracts can't see statically:
//!
//! * **ordering** — `Ordering::Relaxed`/`SeqCst` outside the audited
//!   concurrency files needs a `// lint: ordering` justification.
//! * **panic** — `.unwrap()`/`.expect()` in non-test library code needs
//!   `// lint: panic`.
//! * **float-eq** — `==`/`!=` against a float literal needs
//!   `// lint: float-eq`.
//! * **atomic-facade** — `std::sync::atomic` outside `xmap_engine::sync`
//!   bypasses the model checker; no escape.
//! * **surface-doc** — every `pub fn` in the read-surface files must be
//!   mentioned in `DESIGN.md`; no escape.
//! * **iter-order** — hash-container iteration in library code must discard
//!   order (sort, BTree, order-insensitive aggregation) or carry
//!   `// lint: iter-order`.
//! * **ambient-nondeterminism** — `Instant::now`/`SystemTime`/`thread_rng`/
//!   `from_entropy`/`std::env` banned outside the clock facade, bins, benches
//!   and tests.
//! * **codec-exhaustive** — every field of every struct with a `Codec` impl
//!   must appear in both `enc` and `dec` bodies (cross-file join).
//! * **lock-order** — the workspace Mutex-acquisition graph (built from
//!   nested-lock evidence) must be acyclic.
//!
//! Passes emit raw findings; this driver applies escape-tag suppression
//! uniformly ([`crate::tags::TagIndex`], line and `(block)` scopes) and turns
//! tags that suppressed nothing into stale-tag warnings.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lex::{ident_at, is_punct, Tok};
use crate::parse::{parse_file, ParsedFile};
use crate::passes;
use crate::tags::{TagIndex, Warning};

pub use crate::passes::codec::CodecField;

/// Which rule a [`Violation`] belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// Extreme memory ordering outside the allowlist without a justification tag.
    Ordering,
    /// `.unwrap()` / `.expect()` in non-test library code.
    Panic,
    /// `==` / `!=` against a float literal.
    FloatEq,
    /// `std::sync::atomic` named outside the facade.
    AtomicFacade,
    /// A read-surface `pub fn` missing from `DESIGN.md`.
    SurfaceDoc,
    /// Hash-container iteration whose order can reach an output.
    IterOrder,
    /// Ambient clock/entropy/environment read in library code.
    Ambient,
    /// A `Codec` impl missing a field of its struct.
    CodecExhaustive,
    /// A cycle in the Mutex-acquisition graph.
    LockOrder,
}

impl Rule {
    /// All nine rules, in reporting order.
    pub fn all() -> [Rule; 9] {
        [
            Rule::Ordering,
            Rule::Panic,
            Rule::FloatEq,
            Rule::AtomicFacade,
            Rule::SurfaceDoc,
            Rule::IterOrder,
            Rule::Ambient,
            Rule::CodecExhaustive,
            Rule::LockOrder,
        ]
    }

    /// The rule's name — also its escape-tag spelling.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Ordering => "ordering",
            Rule::Panic => "panic",
            Rule::FloatEq => "float-eq",
            Rule::AtomicFacade => "atomic-facade",
            Rule::SurfaceDoc => "surface-doc",
            Rule::IterOrder => "iter-order",
            Rule::Ambient => "ambient-nondeterminism",
            Rule::CodecExhaustive => "codec-exhaustive",
            Rule::LockOrder => "lock-order",
        }
    }

    /// Whether a `// lint: <tag>` justification can suppress the rule.
    /// The facade and doc rules are structural and carry no escape.
    pub fn escapable(self) -> bool {
        !matches!(self, Rule::AtomicFacade | Rule::SurfaceDoc)
    }

    /// Resolves a rule by its reported name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.name() == name)
    }

    /// The rule's rationale and escape syntax, for `xmap-lint --explain`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::Ordering => {
                "ordering — Ordering::Relaxed / Ordering::SeqCst outside the audited\n\
                 concurrency files (epoch.rs, concurrent.rs, mrv.rs, engine/src/sync/).\n\
                 Relaxed hides reorderings the model checker must see; SeqCst hides a\n\
                 missing happens-before edge behind a global fence. Use Acquire/Release\n\
                 through the xmap_engine::sync facade, move the code into the audited\n\
                 files, or justify in-line:\n\
                 \n\
                 escape: `// lint: ordering <why this extreme ordering is correct>`\n\
                 scoped: `// lint: ordering (block) <why>` covers the next brace block"
            }
            Rule::Panic => {
                "panic — .unwrap() / .expect() in non-test library code (bins, tests/,\n\
                 benches/, examples/ and #[cfg(test)] items are exempt). A library panic\n\
                 takes down a serving node; return an error or use unwrap_or_else. A\n\
                 genuine invariant (checked just above, poisoning-free lock) may be\n\
                 justified in-line:\n\
                 \n\
                 escape: `// lint: panic <the invariant that makes this infallible>`\n\
                 scoped: `// lint: panic (block) <why>` covers the next brace block"
            }
            Rule::FloatEq => {
                "float-eq — == / != with a float literal comparand. Exact float equality\n\
                 is almost always a rounding bug; compare through an epsilon helper or\n\
                 total_cmp. Exact-sentinel checks (e.g. a 0.0 written by this very code)\n\
                 may be justified in-line:\n\
                 \n\
                 escape: `// lint: float-eq <why the comparison is exact by construction>`\n\
                 scoped: `// lint: float-eq (block) <why>` covers the next brace block"
            }
            Rule::AtomicFacade => {
                "atomic-facade — std::sync::atomic / core::sync::atomic named outside\n\
                 xmap-engine's sync facade. Raw atomics bypass the model checker's\n\
                 instrumentation (vector clocks, seeded interleaving hooks), so races\n\
                 there are invisible to the concurrency test suite. Import atomics from\n\
                 xmap_engine::sync (crate::sync inside xmap-engine) instead.\n\
                 \n\
                 escape: none — move the code or extend the facade"
            }
            Rule::SurfaceDoc => {
                "surface-doc — a pub fn in the read-surface files (serve/epoch/\n\
                 concurrent/persist/shard and the analyzer's own parser+passes) is not\n\
                 mentioned in DESIGN.md. The surface doc is the contract readers audit\n\
                 against; an undocumented entry point is an unaudited one. Document the\n\
                 function in DESIGN.md (by name) or unexport it.\n\
                 \n\
                 escape: none — the doc is the point"
            }
            Rule::IterOrder => {
                "iter-order — iteration over a std HashMap/HashSet in library code.\n\
                 Hash iteration order is unspecified and changes across runs, inserts\n\
                 and platforms, so any order reaching an output breaks the bit-identity\n\
                 contracts (serve == serial reference, delta == refit, shard == single\n\
                 node). The pass accepts: order-insensitive aggregation terminals\n\
                 (count/len/is_empty/any/all/contains), collecting into BTreeMap/\n\
                 BTreeSet/HashMap/HashSet, an in-chain sort, or the collect-then-sort\n\
                 idiom (`let mut v: Vec<_> = m.keys().collect(); v.sort_unstable();`).\n\
                 Otherwise switch to a BTree container or sort — or justify why order\n\
                 provably cannot reach any output:\n\
                 \n\
                 escape: `// lint: iter-order <why order cannot surface>`\n\
                 scoped: `// lint: iter-order (block) <why>` covers the next brace block"
            }
            Rule::Ambient => {
                "ambient-nondeterminism — Instant::now / SystemTime / thread_rng /\n\
                 from_entropy / std::env in library code. Ambient reads make re-execution\n\
                 diverge: replayed fits, recovery-by-replay and the shard/serial identity\n\
                 gates all assume a run is a function of its inputs. Timing goes through\n\
                 the xmap_engine::clock Stopwatch facade (the one file allowed to touch\n\
                 Instant); RNG derives from explicit (seed, key) streams; configuration\n\
                 is threaded as parameters. Bins, benches and tests are exempt.\n\
                 \n\
                 escape: `// lint: ambient-nondeterminism <why the read is harmless>`\n\
                 scoped: `// lint: ambient-nondeterminism (block) <why>`"
            }
            Rule::CodecExhaustive => {
                "codec-exhaustive — a struct with a Codec impl has a field that does not\n\
                 appear in both the enc and the dec body (cross-file join of every\n\
                 `impl Codec for T` against the workspace's struct definitions). A\n\
                 forgotten field makes snapshot/journal round-trips silently lossy —\n\
                 format drift becomes a corruption bug at recovery time. Persist the\n\
                 field, or justify a genuinely derived/rebuilt-on-load field:\n\
                 \n\
                 escape: `// lint: codec-exhaustive <why the field is rebuilt on load>`\n\
                 (place on the impl header line)"
            }
            Rule::LockOrder => {
                "lock-order — a cycle in the workspace's Mutex-acquisition graph. The\n\
                 graph has an edge A → B for every `.lock()` of B made while a guard of\n\
                 A is still live in the same function (lexical liveness: let-bound guard\n\
                 to end of block or drop(); temporary to end of statement). A cycle means\n\
                 two call paths can take the same pair of locks in opposite orders —\n\
                 deadlock under the right interleaving. Pick one global order, or\n\
                 justify why the two paths can never interleave:\n\
                 \n\
                 escape: `// lint: lock-order <why the orders cannot interleave>`\n\
                 (place on the acquisition that closes the cycle)"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: file, line and a human-readable message.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// What was found and how to fix or justify it.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Linter configuration: the allowlists and surface files, workspace-relative.
#[derive(Clone, Debug)]
pub struct Config {
    /// Files (or directory prefixes, ending in `/`) where `Ordering::Relaxed` /
    /// `Ordering::SeqCst` are allowed without a tag: the audited concurrency core.
    pub ordering_allowlist: Vec<String>,
    /// Directory prefix where `std::sync::atomic` may be named: the facade itself.
    pub atomic_allowlist: Vec<String>,
    /// Files whose `pub fn`s must each be mentioned in `DESIGN.md`.
    pub surface_files: Vec<String>,
    /// The one file allowed to read the ambient clock: the Stopwatch facade.
    pub clock_allowlist: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ordering_allowlist: vec![
                "crates/engine/src/epoch.rs".into(),
                "crates/engine/src/concurrent.rs".into(),
                "crates/cf/src/mrv.rs".into(),
                // The facade interprets orderings rather than using them; its
                // internals (shims, vector-clock runtime, seeded hooks) name every
                // ordering by construction.
                "crates/engine/src/sync/".into(),
            ],
            atomic_allowlist: vec!["crates/engine/src/sync/".into()],
            surface_files: vec![
                "crates/engine/src/epoch.rs".into(),
                "crates/engine/src/concurrent.rs".into(),
                "crates/core/src/serve.rs".into(),
                "crates/core/src/delta.rs".into(),
                // The durable-state surface: the model lifecycle entry points and
                // the on-disk snapshot/journal formats they rest on.
                "crates/core/src/persist.rs".into(),
                "crates/store/src/snapshot.rs".into(),
                "crates/store/src/journal.rs".into(),
                // The sharded-model surface: the shard map, slice and router the
                // simulated cluster serves from.
                "crates/core/src/shard.rs".into(),
                // The analyzer's own surface: the parser layer, the report, and
                // the clock facade the ambient rule funnels time through.
                "crates/check/src/lint.rs".into(),
                "crates/check/src/parse.rs".into(),
                "crates/check/src/report.rs".into(),
                "crates/check/src/passes/".into(),
                "crates/engine/src/clock.rs".into(),
            ],
            clock_allowlist: vec!["crates/engine/src/clock.rs".into()],
        }
    }
}

fn path_matches(path: &str, entry: &str) -> bool {
    if let Some(dir) = entry.strip_suffix('/') {
        path.starts_with(dir) && path[dir.len()..].starts_with('/')
    } else {
        path == entry
    }
}

/// Whether the library-code rules (panic, iter-order, ambient) apply to this
/// workspace-relative path: `src/` trees minus binaries and out-of-tree
/// test/bench/example code.
fn library_code(path: &str) -> bool {
    let in_src = path.contains("/src/") || path.starts_with("src/");
    let exempt = path.contains("/bin/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/");
    in_src && !exempt
}

// ---------------------------------------------------------------------------
// Token rules (the original five), emitting raw findings
// ---------------------------------------------------------------------------

fn token_rules(pf: &ParsedFile, design: &str, config: &Config) -> Vec<Violation> {
    let path = pf.path.as_str();
    let tokens = &pf.tokens;
    let mut out = Vec::new();

    let ordering_allowed = config
        .ordering_allowlist
        .iter()
        .any(|e| path_matches(path, e));
    let atomic_allowed = config
        .atomic_allowlist
        .iter()
        .any(|e| path_matches(path, e));
    let is_surface = config.surface_files.iter().any(|e| path_matches(path, e));
    let panic_applies = library_code(path);

    for i in 0..tokens.len() {
        if pf.mask[i] {
            continue;
        }
        let line = tokens[i].line;

        // ordering: `Ordering` `::` `Relaxed|SeqCst`
        if !ordering_allowed
            && ident_at(tokens, i) == Some("Ordering")
            && is_punct(tokens, i + 1, "::")
        {
            if let Some(which @ ("Relaxed" | "SeqCst")) = ident_at(tokens, i + 2) {
                out.push(Violation {
                    file: path.to_string(),
                    line: tokens[i + 2].line,
                    rule: Rule::Ordering,
                    message: format!(
                        "Ordering::{which} outside the audited concurrency files; \
                         justify with `// lint: ordering` or move the code into the facade"
                    ),
                });
            }
        }

        // panic: `.` `unwrap|expect` `(`
        if panic_applies && is_punct(tokens, i, ".") {
            if let Some(name @ ("unwrap" | "expect")) = ident_at(tokens, i + 1) {
                if is_punct(tokens, i + 2, "(") {
                    out.push(Violation {
                        file: path.to_string(),
                        line: tokens[i + 1].line,
                        rule: Rule::Panic,
                        message: format!(
                            ".{name}() in library code; return an error, use \
                             unwrap_or_else, or justify an invariant with `// lint: panic`"
                        ),
                    });
                }
            }
        }

        // float-eq: float literal adjacent to == / !=
        if matches!(tokens[i].tok, Tok::Punct(ref p) if p == "==" || p == "!=") {
            let float_beside = matches!(
                tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
                Some(Tok::Float)
            ) || matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Float));
            if float_beside {
                out.push(Violation {
                    file: path.to_string(),
                    line,
                    rule: Rule::FloatEq,
                    message: "exact float comparison; use an epsilon/total_cmp helper or tag an \
                              exact-sentinel check with `// lint: float-eq`"
                        .to_string(),
                });
            }
        }

        // atomic-facade: `std|core` `::` `sync` `::` `atomic`
        if !atomic_allowed
            && matches!(ident_at(tokens, i), Some("std") | Some("core"))
            && is_punct(tokens, i + 1, "::")
            && ident_at(tokens, i + 2) == Some("sync")
            && is_punct(tokens, i + 3, "::")
            && ident_at(tokens, i + 4) == Some("atomic")
        {
            out.push(Violation {
                file: path.to_string(),
                line,
                rule: Rule::AtomicFacade,
                message: "std::sync::atomic bypasses the model-check facade; import from \
                          xmap_engine::sync (crate::sync inside xmap-engine) instead"
                    .to_string(),
            });
        }
    }

    // surface-doc: every `pub fn` in a read-surface file must appear in DESIGN.md.
    if is_surface {
        for i in 0..tokens.len() {
            if pf.mask[i] {
                continue;
            }
            if ident_at(tokens, i) == Some("pub") && ident_at(tokens, i + 1) == Some("fn") {
                if let Some(name) = ident_at(tokens, i + 2) {
                    if !mentions_word(design, name) {
                        out.push(Violation {
                            file: path.to_string(),
                            line: tokens[i + 2].line,
                            rule: Rule::SurfaceDoc,
                            message: format!(
                                "pub fn `{name}` on the audited read surface is not \
                                 mentioned in DESIGN.md"
                            ),
                        });
                    }
                }
            }
        }
    }

    out
}

/// Word-boundary containment: `name` appears in `text` not embedded in a longer
/// identifier.
fn mentions_word(text: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = text[start..].find(name) {
        let at = start + pos;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + name.len();
        let after_ok = after >= text.len()
            || !text[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + name.len().max(1);
    }
    false
}

// ---------------------------------------------------------------------------
// The audit driver
// ---------------------------------------------------------------------------

/// One audit run's outcome: suppressed-and-sorted findings plus non-fatal
/// warnings (stale or unknown escape tags) and the file count.
pub struct Audit {
    /// Findings that survived escape-tag suppression, ordered by file then line.
    pub findings: Vec<Violation>,
    /// Stale/unknown-tag warnings, ordered by file then line.
    pub warnings: Vec<Warning>,
    /// How many files were audited.
    pub files: usize,
}

/// Audits a set of sources: `(workspace-relative path, contents)` pairs.
/// `design` is `DESIGN.md`'s contents, used by the surface-doc rule. This is
/// the whole pipeline — parse, per-file passes, cross-file passes, suppression,
/// stale-tag detection — on in-memory sources, so tests (and the mutation
/// gate) can audit doctored workspaces without touching disk.
pub fn audit_sources(sources: &[(String, String)], design: &str, config: &Config) -> Audit {
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|(path, src)| parse_file(path, src))
        .collect();
    let mut tag_index = TagIndex::new(&parsed);

    let mut raw: Vec<Violation> = Vec::new();
    for pf in &parsed {
        raw.extend(token_rules(pf, design, config));
        if library_code(&pf.path) {
            raw.extend(passes::iter_order::check(pf));
            if !config
                .clock_allowlist
                .iter()
                .any(|e| path_matches(&pf.path, e))
            {
                raw.extend(passes::ambient::check(pf));
            }
        }
    }
    raw.extend(passes::codec::check(&parsed));
    raw.extend(passes::lock_order::check(&parsed));

    let mut findings: Vec<Violation> = raw
        .into_iter()
        .filter(|v| !(v.rule.escapable() && tag_index.covers(&v.file, v.line, v.rule.name())))
        .collect();
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.name().cmp(b.rule.name()))
    });

    let known: Vec<&str> = Rule::all()
        .into_iter()
        .filter(|r| r.escapable())
        .map(|r| r.name())
        .collect();
    let mut warnings = tag_index.stale(&known);
    warnings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));

    Audit {
        findings,
        warnings,
        files: parsed.len(),
    }
}

/// Lint one source file (workspace-relative `path`, contents `src`).
/// `design` is `DESIGN.md`'s contents, used by the surface-doc rule.
pub fn lint_source(path: &str, src: &str, design: &str, config: &Config) -> Vec<Violation> {
    audit_sources(&[(path.to_string(), src.to_string())], design, config).findings
}

/// The codec-exhaustive pass's work list over a set of sources: every
/// (type, field) pair it holds an impl accountable for, with the `enc`/`dec`
/// body line ranges. The mutation gate deletes each field's mention and
/// asserts the pass fires.
pub fn codec_surface(sources: &[(String, String)]) -> Vec<CodecField> {
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|(path, src)| parse_file(path, src))
        .collect();
    passes::codec::surface(&parsed)
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The `src/` trees the linter walks, workspace-relative: every first-party crate
/// plus the workspace facade. The vendor stand-ins are exempt (they mimic external
/// crates' APIs, panics and all).
fn lintable_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let src = dir.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        roots.push(facade_src);
    }
    roots
}

/// Reads every lintable source under `root` as `(relative path, contents)`.
pub fn workspace_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for src_root in lintable_roots(root) {
        collect_rs_files(&src_root, &mut files);
    }
    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if let Ok(source) = fs::read_to_string(&file) {
            out.push((rel, source));
        }
    }
    out
}

/// Audits the whole workspace rooted at `root`. Missing `DESIGN.md` makes
/// every surface `pub fn` a finding rather than silently passing.
pub fn audit_workspace(root: &Path, config: &Config) -> Audit {
    let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    audit_sources(&workspace_sources(root), &design, config)
}

/// Lints the whole workspace rooted at `root`. Returns all findings, ordered by
/// file then line. (Compatibility wrapper over [`audit_workspace`].)
pub fn run_workspace(root: &Path, config: &Config) -> Vec<Violation> {
    audit_workspace(root, config).findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(path: &str, src: &str) -> Vec<Violation> {
        lint_source(
            path,
            src,
            "DESIGN: mentions serve_fn here.",
            &Config::default(),
        )
    }

    #[test]
    fn relaxed_outside_allowlist_is_flagged() {
        let src = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }";
        let v = lint_str("crates/core/src/pipeline.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Ordering);
    }

    #[test]
    fn relaxed_with_tag_passes() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n    // lint: ordering — monotone counter, no payload\n    a.load(Ordering::Relaxed)\n}";
        let v = lint_str("crates/core/src/pipeline.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn relaxed_in_allowlisted_file_passes() {
        let src = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::SeqCst) }";
        let v = lint_str("crates/engine/src/epoch.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cmp_ordering_is_not_confused_with_atomic_ordering() {
        let src = "fn f() -> std::cmp::Ordering { std::cmp::Ordering::Less }";
        let v = lint_str("crates/core/src/pipeline.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_in_library_is_flagged_and_tag_escapes() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Panic);

        let tagged = "fn f(x: Option<u8>) -> u8 { x.expect(\"invariant\") } // lint: panic";
        assert!(lint_str("crates/cf/src/matrix.rs", tagged).is_empty());
    }

    #[test]
    fn unwrap_in_tests_benches_and_cfg_test_is_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(lint_str("crates/cf/tests/matrix.rs", src).is_empty());
        assert!(lint_str("crates/cf/benches/matrix.rs", src).is_empty());
        assert!(lint_str("crates/bench/src/bin/experiments.rs", src).is_empty());

        let cfg_test = "#[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) -> u8 { x.unwrap() }\n}\nfn keep() {}";
        assert!(lint_str("crates/cf/src/matrix.rs", cfg_test).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f(m: &std::sync::Mutex<u8>) -> u8 { *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner) }";
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_is_flagged_and_tag_escapes() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }";
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatEq);

        let tagged = "fn f(x: f64) -> bool { x == 0.0 } // lint: float-eq exact zero sentinel";
        assert!(lint_str("crates/cf/src/matrix.rs", tagged).is_empty());

        let int_cmp = "fn f(x: u64) -> bool { x == 0 }";
        assert!(lint_str("crates/cf/src/matrix.rs", int_cmp).is_empty());
    }

    #[test]
    fn std_sync_atomic_outside_facade_is_flagged() {
        let src = "use std::sync::atomic::AtomicU64;";
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::AtomicFacade);

        assert!(lint_str("crates/engine/src/sync/shim.rs", src).is_empty());
    }

    #[test]
    fn surface_pub_fn_must_be_in_design_md() {
        let src = "pub fn serve_fn() {}\npub fn undocumented_fn() {}";
        let v = lint_str("crates/core/src/serve.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::SurfaceDoc);
        assert!(v[0].message.contains("undocumented_fn"));

        // Non-surface files are not held to the rule.
        assert!(lint_str("crates/cf/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn strings_comments_and_lifetimes_do_not_confuse_the_lexer() {
        let src = r##"
fn f<'a>(x: &'a str) -> bool {
    let _s = "Ordering::Relaxed .unwrap() 1.0 == 2.0";
    let _r = r#"x.unwrap()"#;
    let _c = '=';
    /* Ordering::SeqCst in a /* nested */ block comment */
    // Ordering::Relaxed in a line comment
    x.len() == 3
}
"##;
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn range_and_method_calls_on_ints_are_not_floats() {
        let src = "fn f() -> bool { let v: Vec<u8> = (1..5).collect(); v.len() != 0 }";
        assert!(lint_str("crates/cf/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn planted_fixture_is_rejected() {
        // The acceptance-criteria fixture: one file violating several rules at
        // once must produce a finding per rule.
        let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
pub fn planted(flag: &AtomicU64, x: Option<f64>) -> bool {
    let v = x.unwrap();
    flag.store(1, Ordering::Relaxed);
    v == 1.5
}
"#;
        let v = lint_str("crates/cf/src/planted.rs", src);
        let rules: Vec<Rule> = v.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::AtomicFacade), "{v:?}");
        assert!(rules.contains(&Rule::Panic), "{v:?}");
        assert!(rules.contains(&Rule::Ordering), "{v:?}");
        assert!(rules.contains(&Rule::FloatEq), "{v:?}");
    }

    #[test]
    fn explain_names_every_rule() {
        for rule in Rule::all() {
            assert!(Rule::from_name(rule.name()) == Some(rule));
            assert!(rule.explain().contains(rule.name()), "{rule}");
            if rule.escapable() {
                assert!(rule.explain().contains("escape: `// lint:"), "{rule}");
            } else {
                assert!(rule.explain().contains("escape: none"), "{rule}");
            }
        }
    }

    #[test]
    fn unused_tag_surfaces_as_stale_warning() {
        let src = "// lint: iter-order nothing here actually iterates\nfn f() {}\n";
        let audit = audit_sources(
            &[("crates/cf/src/matrix.rs".into(), src.into())],
            "",
            &Config::default(),
        );
        assert!(audit.findings.is_empty(), "{:?}", audit.findings);
        assert_eq!(audit.warnings.len(), 1, "{:?}", audit.warnings);
        assert!(audit.warnings[0]
            .message
            .contains("stale lint tag `iter-order`"));
    }

    #[test]
    fn unknown_tag_surfaces_as_warning() {
        let src = "// lint: no-such-rule\nfn f() {}\n";
        let audit = audit_sources(
            &[("crates/cf/src/matrix.rs".into(), src.into())],
            "",
            &Config::default(),
        );
        assert_eq!(audit.warnings.len(), 1, "{:?}", audit.warnings);
        assert!(audit.warnings[0].message.contains("unknown lint tag"));
    }
}
