//! `xmap-lint`: the workspace's house-rule linter.
//!
//! A small hand-rolled Rust lexer (the vendor tree's `syn` stand-in is a stub, so
//! no real parser is available offline) drives five token-level rules over every
//! `src/` tree in the workspace:
//!
//! * **ordering** — `Ordering::Relaxed` and `Ordering::SeqCst` are forbidden
//!   outside the audited concurrency files ([`Config::ordering_allowlist`]); any
//!   other use must carry a `// lint: ordering` tag on the same or previous line
//!   justifying why the extreme ordering is correct there.
//! * **panic** — `.unwrap()` / `.expect(...)` are forbidden in non-test library
//!   code (binaries, `tests/`, `benches/`, `examples/` and `#[cfg(test)]` items are
//!   exempt); a justified invariant panic carries `// lint: panic`.
//! * **float-eq** — `==` / `!=` against a float literal is forbidden (the
//!   house discipline compares through explicit helpers or exact-sentinel checks
//!   tagged `// lint: float-eq`).
//! * **atomic-facade** — naming `std::sync::atomic` / `core::sync::atomic`
//!   anywhere outside `xmap-engine`'s `sync` facade bypasses the model checker's
//!   instrumentation and is forbidden, with no tag escape.
//! * **surface-doc** — every `pub fn` in the serve/epoch/concurrent read-surface
//!   files must be mentioned by name in `DESIGN.md`.
//!
//! The linter is intentionally lexical: it sees tokens, comments and lines, not
//! types. The rules are phrased so that token evidence is sufficient — e.g. the
//! float-eq rule fires only when one comparand is literally a float literal.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Which rule a [`Violation`] belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// Extreme memory ordering outside the allowlist without a justification tag.
    Ordering,
    /// `.unwrap()` / `.expect()` in non-test library code.
    Panic,
    /// `==` / `!=` against a float literal.
    FloatEq,
    /// `std::sync::atomic` named outside the facade.
    AtomicFacade,
    /// A read-surface `pub fn` missing from `DESIGN.md`.
    SurfaceDoc,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::Ordering => "ordering",
            Rule::Panic => "panic",
            Rule::FloatEq => "float-eq",
            Rule::AtomicFacade => "atomic-facade",
            Rule::SurfaceDoc => "surface-doc",
        };
        f.write_str(name)
    }
}

/// One finding: file, line and a human-readable message.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// What was found and how to fix or justify it.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Linter configuration: the allowlists and surface files, workspace-relative.
#[derive(Clone, Debug)]
pub struct Config {
    /// Files (or directory prefixes, ending in `/`) where `Ordering::Relaxed` /
    /// `Ordering::SeqCst` are allowed without a tag: the audited concurrency core.
    pub ordering_allowlist: Vec<String>,
    /// Directory prefix where `std::sync::atomic` may be named: the facade itself.
    pub atomic_allowlist: Vec<String>,
    /// Files whose `pub fn`s must each be mentioned in `DESIGN.md`.
    pub surface_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ordering_allowlist: vec![
                "crates/engine/src/epoch.rs".into(),
                "crates/engine/src/concurrent.rs".into(),
                "crates/cf/src/mrv.rs".into(),
                // The facade interprets orderings rather than using them; its
                // internals (shims, vector-clock runtime, seeded hooks) name every
                // ordering by construction.
                "crates/engine/src/sync/".into(),
            ],
            atomic_allowlist: vec!["crates/engine/src/sync/".into()],
            surface_files: vec![
                "crates/engine/src/epoch.rs".into(),
                "crates/engine/src/concurrent.rs".into(),
                "crates/core/src/serve.rs".into(),
                "crates/core/src/delta.rs".into(),
                // The durable-state surface: the model lifecycle entry points and
                // the on-disk snapshot/journal formats they rest on.
                "crates/core/src/persist.rs".into(),
                "crates/store/src/snapshot.rs".into(),
                "crates/store/src/journal.rs".into(),
                // The sharded-model surface: the shard map, slice and router the
                // simulated cluster serves from.
                "crates/core/src/shard.rs".into(),
            ],
        }
    }
}

fn path_matches(path: &str, entry: &str) -> bool {
    if let Some(dir) = entry.strip_suffix('/') {
        path.starts_with(dir) && path[dir.len()..].starts_with('/')
    } else {
        path == entry
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    /// A punctuation cluster the rules care about (`::`, `==`, `!=`) or a single
    /// punctuation character.
    Punct(String),
    Float,
    Int,
    Str,
    Char,
}

#[derive(Clone, Debug)]
struct Token {
    tok: Tok,
    line: u32,
}

/// Lex `src` into rule-relevant tokens plus the `// lint: <tag>` escape tags.
/// A tag comment applies to its own line and the following line, so it can sit
/// either at the end of the offending line or on its own line above it.
fn lex(src: &str) -> (Vec<Token>, HashMap<u32, HashSet<String>>) {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut tags: HashMap<u32, HashSet<String>> = HashMap::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                let comment = src[start..j].trim();
                if let Some(rest) = comment.strip_prefix("lint:") {
                    // Each comma segment is `<tag> [free-form justification]`.
                    for segment in rest.split(',') {
                        if let Some(tag) = segment.split_whitespace().next() {
                            tags.entry(line).or_default().insert(tag.to_string());
                            tags.entry(line + 1).or_default().insert(tag.to_string());
                        }
                    }
                }
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (j, newlines) = scan_string(bytes, i + 1);
                tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
                line += newlines;
                i = j;
            }
            'r' | 'b' if is_raw_string_start(bytes, i) => {
                let (j, newlines) = scan_raw_string(bytes, i);
                tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
                line += newlines;
                i = j;
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'` ident not followed by
                // a closing quote.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if (n as char).is_alphabetic() || n == b'_')
                    && after != Some(b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < bytes.len()
                        && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    i = j;
                } else {
                    // Char literal: handle escapes, find closing quote.
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&b'\\') {
                        j += 2;
                        // Consume the rest of longer escapes (\u{..}, \x..)
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                    } else {
                        // One (possibly multi-byte) character.
                        j += 1;
                        while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
                            j += 1;
                        }
                    }
                    if bytes.get(j) == Some(&b'\'') {
                        j += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i = j;
                }
            }
            _ if c.is_ascii_digit() => {
                let (j, is_float) = scan_number(bytes, i);
                tokens.push(Token {
                    tok: if is_float { Tok::Float } else { Tok::Int },
                    line,
                });
                i = j;
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = src[j..].chars().next().unwrap_or(' ');
                    if ch.is_alphanumeric() || ch == '_' {
                        j += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    tok: Tok::Ident(src[i..j].to_string()),
                    line,
                });
                i = j;
            }
            ':' if bytes.get(i + 1) == Some(&b':') => {
                tokens.push(Token {
                    tok: Tok::Punct("::".into()),
                    line,
                });
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    tok: Tok::Punct("==".into()),
                    line,
                });
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    tok: Tok::Punct("!=".into()),
                    line,
                });
                i += 2;
            }
            _ if c.is_ascii_whitespace() => {
                i += 1;
            }
            _ => {
                tokens.push(Token {
                    tok: Tok::Punct(c.to_string()),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    (tokens, tags)
}

/// Scan past a `"..."` string body starting just after the opening quote; returns
/// (index after closing quote, newlines crossed).
fn scan_string(bytes: &[u8], mut i: usize) -> (usize, u32) {
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (i, newlines)
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r"..." | r#"..."# | br"..." | b"..." handled by '"' arm (b is lexed as an
    // ident; the quote follows). Here: r or br raw strings only.
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn scan_raw_string(bytes: &[u8], mut i: usize) -> (usize, u32) {
    if bytes.get(i) == Some(&b'b') {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let mut newlines = 0;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (j, newlines);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    (i, newlines)
}

/// Scan a numeric literal; returns (end index, is_float). Floats are `1.5`,
/// `1.5e3`, `1e3`, `1.` (when not a range/method like `1..` or `1.max`), and any
/// literal with an `f32`/`f64` suffix.
fn scan_number(bytes: &[u8], mut i: usize) -> (usize, bool) {
    let mut is_float = false;
    // Hex/octal/binary literals are never floats.
    if bytes[i] == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'o') | Some(b'b')) {
        i += 2;
        while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (i, false);
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    if bytes.get(i) == Some(&b'.') {
        let after = bytes.get(i + 1).copied();
        let fractional = matches!(after, Some(d) if d.is_ascii_digit());
        // `1.` with nothing ident-like after is also a float (e.g. `1. + x`);
        // `1..` is a range and `1.max` a method call on an integer.
        let bare_dot =
            !matches!(after, Some(d) if d == b'.' || (d as char).is_alphabetic() || d == b'_');
        if fractional || bare_dot {
            is_float = true;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    if matches!(bytes.get(i), Some(b'e') | Some(b'E')) {
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
            j += 1;
        }
        if matches!(bytes.get(j), Some(d) if d.is_ascii_digit()) {
            is_float = true;
            i = j;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix: f32/f64 force float; u*/i* stay int.
    let suffix_start = i;
    while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    if bytes[suffix_start..i].starts_with(b"f3") || bytes[suffix_start..i].starts_with(b"f6") {
        is_float = true;
    }
    (i, is_float)
}

// ---------------------------------------------------------------------------
// Test-region masking
// ---------------------------------------------------------------------------

fn is_punct(tokens: &[Token], i: usize, p: &str) -> bool {
    matches!(tokens.get(i), Some(Token { tok: Tok::Punct(s), .. }) if s == p)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i) {
        Some(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

/// Scan an outer attribute `#[...]` starting at `i` (which must point at `#`).
/// Returns (index after the closing `]`, attribute marks a test item).
fn scan_attr(tokens: &[Token], i: usize) -> (usize, bool) {
    let mut j = i + 2; // past '#' '['
    let mut depth = 1;
    let mut has_test = false;
    let mut has_not = false;
    while j < tokens.len() && depth > 0 {
        if is_punct(tokens, j, "[") {
            depth += 1;
        } else if is_punct(tokens, j, "]") {
            depth -= 1;
        } else if let Some(name) = ident_at(tokens, j) {
            if name == "test" {
                has_test = true;
            }
            if name == "not" {
                has_not = true;
            }
        }
        j += 1;
    }
    (j, has_test && !has_not)
}

/// Index just past the item that starts at `i`: the matching `}` of its first
/// top-level brace block, or a `;` before any brace (for `use` etc.).
fn scan_item_end(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0usize;
    let mut saw_brace = false;
    while i < tokens.len() {
        if is_punct(tokens, i, "{") {
            depth += 1;
            saw_brace = true;
        } else if is_punct(tokens, i, "}") {
            depth = depth.saturating_sub(1);
            if saw_brace && depth == 0 {
                return i + 1;
            }
        } else if is_punct(tokens, i, ";") && !saw_brace {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Marks every token inside a `#[test]` / `#[cfg(test)]`-guarded item.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(tokens, i, "#") && is_punct(tokens, i + 1, "[") {
            let (mut j, is_test) = scan_attr(tokens, i);
            if is_test {
                // Skip the rest of the attribute stack, then the item itself.
                while is_punct(tokens, j, "#") && is_punct(tokens, j + 1, "[") {
                    j = scan_attr(tokens, j).0;
                }
                let end = scan_item_end(tokens, j);
                for m in mask.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
            } else {
                i = j;
            }
        } else {
            i += 1;
        }
    }
    mask
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn has_tag(tags: &HashMap<u32, HashSet<String>>, line: u32, tag: &str) -> bool {
    tags.get(&line).is_some_and(|s| s.contains(tag))
}

/// Whether the panic rule applies to this workspace-relative path: library source
/// trees only — binaries and out-of-tree test/bench/example code are exempt.
fn panic_rule_applies(path: &str) -> bool {
    let in_src = path.contains("/src/") || path.starts_with("src/");
    let exempt = path.contains("/bin/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/");
    in_src && !exempt
}

/// Lint one source file (workspace-relative `path`, contents `src`).
/// `design` is `DESIGN.md`'s contents, used by the surface-doc rule.
pub fn lint_source(path: &str, src: &str, design: &str, config: &Config) -> Vec<Violation> {
    let (tokens, tags) = lex(src);
    let mask = test_mask(&tokens);
    let mut out = Vec::new();

    let ordering_allowed = config
        .ordering_allowlist
        .iter()
        .any(|e| path_matches(path, e));
    let atomic_allowed = config
        .atomic_allowlist
        .iter()
        .any(|e| path_matches(path, e));
    let is_surface = config.surface_files.iter().any(|e| path_matches(path, e));
    let panic_applies = panic_rule_applies(path);

    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let line = tokens[i].line;

        // ordering: `Ordering` `::` `Relaxed|SeqCst`
        if !ordering_allowed
            && ident_at(&tokens, i) == Some("Ordering")
            && is_punct(&tokens, i + 1, "::")
        {
            if let Some(which @ ("Relaxed" | "SeqCst")) = ident_at(&tokens, i + 2) {
                let line = tokens[i + 2].line;
                if !has_tag(&tags, line, "ordering") {
                    out.push(Violation {
                        file: path.to_string(),
                        line,
                        rule: Rule::Ordering,
                        message: format!(
                            "Ordering::{which} outside the audited concurrency files; \
                             justify with `// lint: ordering` or move the code into the facade"
                        ),
                    });
                }
            }
        }

        // panic: `.` `unwrap|expect` `(`
        if panic_applies && is_punct(&tokens, i, ".") {
            if let Some(name @ ("unwrap" | "expect")) = ident_at(&tokens, i + 1) {
                if is_punct(&tokens, i + 2, "(") {
                    let line = tokens[i + 1].line;
                    if !has_tag(&tags, line, "panic") {
                        out.push(Violation {
                            file: path.to_string(),
                            line,
                            rule: Rule::Panic,
                            message: format!(
                                ".{name}() in library code; return an error, use \
                                 unwrap_or_else, or justify an invariant with `// lint: panic`"
                            ),
                        });
                    }
                }
            }
        }

        // float-eq: float literal adjacent to == / !=
        if matches!(tokens[i].tok, Tok::Punct(ref p) if p == "==" || p == "!=") {
            let float_beside = matches!(
                tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
                Some(Tok::Float)
            ) || matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Float));
            if float_beside && !has_tag(&tags, line, "float-eq") {
                out.push(Violation {
                    file: path.to_string(),
                    line,
                    rule: Rule::FloatEq,
                    message: "exact float comparison; use an epsilon/total_cmp helper or tag an \
                              exact-sentinel check with `// lint: float-eq`"
                        .to_string(),
                });
            }
        }

        // atomic-facade: `std|core` `::` `sync` `::` `atomic`
        if !atomic_allowed
            && matches!(ident_at(&tokens, i), Some("std") | Some("core"))
            && is_punct(&tokens, i + 1, "::")
            && ident_at(&tokens, i + 2) == Some("sync")
            && is_punct(&tokens, i + 3, "::")
            && ident_at(&tokens, i + 4) == Some("atomic")
        {
            out.push(Violation {
                file: path.to_string(),
                line,
                rule: Rule::AtomicFacade,
                message: "std::sync::atomic bypasses the model-check facade; import from \
                          xmap_engine::sync (crate::sync inside xmap-engine) instead"
                    .to_string(),
            });
        }
    }

    // surface-doc: every `pub fn` in a read-surface file must appear in DESIGN.md.
    if is_surface {
        for i in 0..tokens.len() {
            if mask[i] {
                continue;
            }
            if ident_at(&tokens, i) == Some("pub") && ident_at(&tokens, i + 1) == Some("fn") {
                if let Some(name) = ident_at(&tokens, i + 2) {
                    if !mentions_word(design, name) {
                        out.push(Violation {
                            file: path.to_string(),
                            line: tokens[i + 2].line,
                            rule: Rule::SurfaceDoc,
                            message: format!(
                                "pub fn `{name}` on the serve/epoch read surface is not \
                                 mentioned in DESIGN.md"
                            ),
                        });
                    }
                }
            }
        }
    }

    out
}

/// Word-boundary containment: `name` appears in `text` not embedded in a longer
/// identifier.
fn mentions_word(text: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = text[start..].find(name) {
        let at = start + pos;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + name.len();
        let after_ok = after >= text.len()
            || !text[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + name.len().max(1);
    }
    false
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The `src/` trees the linter walks, workspace-relative: every first-party crate
/// plus the workspace facade. The vendor stand-ins are exempt (they mimic external
/// crates' APIs, panics and all).
fn lintable_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let src = dir.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        roots.push(facade_src);
    }
    roots
}

/// Lints the whole workspace rooted at `root`. Returns all findings, ordered by
/// file then line. Missing `DESIGN.md` makes every surface `pub fn` a finding
/// rather than silently passing.
pub fn run_workspace(root: &Path, config: &Config) -> Vec<Violation> {
    let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let mut files = Vec::new();
    for src_root in lintable_roots(root) {
        collect_rs_files(&src_root, &mut files);
    }
    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        out.extend(lint_source(&rel, &source, &design, config));
    }
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(path: &str, src: &str) -> Vec<Violation> {
        lint_source(
            path,
            src,
            "DESIGN: mentions serve_fn here.",
            &Config::default(),
        )
    }

    #[test]
    fn relaxed_outside_allowlist_is_flagged() {
        let src = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }";
        let v = lint_str("crates/core/src/pipeline.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Ordering);
    }

    #[test]
    fn relaxed_with_tag_passes() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n    // lint: ordering — monotone counter, no payload\n    a.load(Ordering::Relaxed)\n}";
        let v = lint_str("crates/core/src/pipeline.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn relaxed_in_allowlisted_file_passes() {
        let src = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::SeqCst) }";
        let v = lint_str("crates/engine/src/epoch.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cmp_ordering_is_not_confused_with_atomic_ordering() {
        let src = "fn f() -> std::cmp::Ordering { std::cmp::Ordering::Less }";
        let v = lint_str("crates/core/src/pipeline.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_in_library_is_flagged_and_tag_escapes() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Panic);

        let tagged = "fn f(x: Option<u8>) -> u8 { x.expect(\"invariant\") } // lint: panic";
        assert!(lint_str("crates/cf/src/matrix.rs", tagged).is_empty());
    }

    #[test]
    fn unwrap_in_tests_benches_and_cfg_test_is_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(lint_str("crates/cf/tests/matrix.rs", src).is_empty());
        assert!(lint_str("crates/cf/benches/matrix.rs", src).is_empty());
        assert!(lint_str("crates/bench/src/bin/experiments.rs", src).is_empty());

        let cfg_test = "#[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) -> u8 { x.unwrap() }\n}\nfn keep() {}";
        assert!(lint_str("crates/cf/src/matrix.rs", cfg_test).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f(m: &std::sync::Mutex<u8>) -> u8 { *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner) }";
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_is_flagged_and_tag_escapes() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }";
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatEq);

        let tagged = "fn f(x: f64) -> bool { x == 0.0 } // lint: float-eq exact zero sentinel";
        assert!(lint_str("crates/cf/src/matrix.rs", tagged).is_empty());

        let int_cmp = "fn f(x: u64) -> bool { x == 0 }";
        assert!(lint_str("crates/cf/src/matrix.rs", int_cmp).is_empty());
    }

    #[test]
    fn std_sync_atomic_outside_facade_is_flagged() {
        let src = "use std::sync::atomic::AtomicU64;";
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::AtomicFacade);

        assert!(lint_str("crates/engine/src/sync/shim.rs", src).is_empty());
    }

    #[test]
    fn surface_pub_fn_must_be_in_design_md() {
        let src = "pub fn serve_fn() {}\npub fn undocumented_fn() {}";
        let v = lint_str("crates/core/src/serve.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::SurfaceDoc);
        assert!(v[0].message.contains("undocumented_fn"));

        // Non-surface files are not held to the rule.
        assert!(lint_str("crates/cf/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn strings_comments_and_lifetimes_do_not_confuse_the_lexer() {
        let src = r##"
fn f<'a>(x: &'a str) -> bool {
    let _s = "Ordering::Relaxed .unwrap() 1.0 == 2.0";
    let _r = r#"x.unwrap()"#;
    let _c = '=';
    /* Ordering::SeqCst in a /* nested */ block comment */
    // Ordering::Relaxed in a line comment
    x.len() == 3
}
"##;
        let v = lint_str("crates/cf/src/matrix.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn range_and_method_calls_on_ints_are_not_floats() {
        let src = "fn f() -> bool { let v: Vec<u8> = (1..5).collect(); v.len() != 0 }";
        assert!(lint_str("crates/cf/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn planted_fixture_is_rejected() {
        // The acceptance-criteria fixture: one file violating several rules at
        // once must produce a finding per rule.
        let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
pub fn planted(flag: &AtomicU64, x: Option<f64>) -> bool {
    let v = x.unwrap();
    flag.store(1, Ordering::Relaxed);
    v == 1.5
}
"#;
        let v = lint_str("crates/cf/src/planted.rs", src);
        let rules: Vec<Rule> = v.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::AtomicFacade), "{v:?}");
        assert!(rules.contains(&Rule::Panic), "{v:?}");
        assert!(rules.contains(&Rule::Ordering), "{v:?}");
        assert!(rules.contains(&Rule::FloatEq), "{v:?}");
    }
}
