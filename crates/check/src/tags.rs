//! Escape-tag bookkeeping: scope resolution, suppression, stale detection.
//!
//! Passes report findings unconditionally; the driver asks the [`TagIndex`]
//! whether a justified `// lint: <tag>` covers each one. Tags that end a run
//! without having suppressed anything are *stale* and surface as warnings —
//! a justification that outlived its finding is noise at best and a sign the
//! justified hazard moved at worst.

use std::collections::BTreeMap;

use crate::lex::is_punct;
use crate::parse::ParsedFile;

/// One tag site after scope resolution: covers `[line, end_line]`.
#[derive(Clone, Debug)]
struct ResolvedTag {
    tag: String,
    line: u32,
    end_line: u32,
    block: bool,
    used: bool,
}

/// A non-fatal analyzer warning (stale or unknown escape tags).
#[derive(Clone, Debug)]
pub struct Warning {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the tag comment.
    pub line: u32,
    /// What is wrong with the tag.
    pub message: String,
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: warning: {}", self.file, self.line, self.message)
    }
}

/// All escape tags of an audit run, with usage tracking.
pub(crate) struct TagIndex {
    /// Per-file resolved tag sites, ordered by line.
    per_file: BTreeMap<String, Vec<ResolvedTag>>,
}

impl TagIndex {
    /// Resolves every tag site in `files` to its covered line range.
    ///
    /// * line tags cover their own line and the next (trailing or above);
    /// * `(block)` tags cover from the tag line through the matching `}` of the
    ///   first `{` at or below the tag — the item they annotate.
    pub(crate) fn new(files: &[ParsedFile]) -> TagIndex {
        let mut per_file = BTreeMap::new();
        for pf in files {
            let mut resolved = Vec::new();
            for site in &pf.tags {
                let end_line = if site.block {
                    block_end_line(pf, site.line)
                } else {
                    site.line + 1
                };
                resolved.push(ResolvedTag {
                    tag: site.tag.clone(),
                    line: site.line,
                    end_line,
                    block: site.block,
                    used: false,
                });
            }
            per_file.insert(pf.path.clone(), resolved);
        }
        TagIndex { per_file }
    }

    /// Whether a tag named `tag` covers `line` in `file`; marks every covering
    /// site used. Block tags covering a wide range win ties with line tags —
    /// both are marked, so neither reads as stale.
    pub(crate) fn covers(&mut self, file: &str, line: u32, tag: &str) -> bool {
        let Some(sites) = self.per_file.get_mut(file) else {
            return false;
        };
        let mut hit = false;
        for site in sites.iter_mut() {
            if site.tag == tag && site.line <= line && line <= site.end_line {
                site.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Warnings for every tag that suppressed nothing, plus tags naming no
    /// known rule. `known` is the set of valid tag names.
    pub(crate) fn stale(&self, known: &[&str]) -> Vec<Warning> {
        let mut out = Vec::new();
        for (file, sites) in &self.per_file {
            for site in sites {
                if !known.contains(&site.tag.as_str()) {
                    out.push(Warning {
                        file: file.clone(),
                        line: site.line,
                        message: format!(
                            "unknown lint tag `{}`; valid tags: {}",
                            site.tag,
                            known.join(", ")
                        ),
                    });
                } else if !site.used {
                    let scope = if site.block { " (block)" } else { "" };
                    out.push(Warning {
                        file: file.clone(),
                        line: site.line,
                        message: format!(
                            "stale lint tag `{}`{scope}: it no longer matches any finding — \
                             remove it or re-justify",
                            site.tag
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Last line covered by a `(block)` tag at `tag_line`: the closing brace of the
/// first `{` at or below the tag. Tags on items without braces cover two lines,
/// like a line tag.
fn block_end_line(pf: &ParsedFile, tag_line: u32) -> u32 {
    for i in 0..pf.tokens.len() {
        if pf.tokens[i].line >= tag_line && is_punct(&pf.tokens, i, "{") {
            let close = pf.brace_match[i];
            if close != usize::MAX {
                return pf.tokens[close].line;
            }
            break;
        }
    }
    tag_line + 1
}
