//! Workspace linter entry point: `cargo xmap-lint` (alias in `.cargo/config.toml`).
//!
//! Walks every first-party `src/` tree from the workspace root, applies the house
//! rules in [`xmap_check::lint`], prints findings in `file:line: [rule] message`
//! form and exits non-zero if any were found.

use std::path::PathBuf;
use std::process::ExitCode;

use xmap_check::lint::{run_workspace, Config};

/// Workspace root: walk up from `CARGO_MANIFEST_DIR` (set under `cargo run`) or
/// the current directory until a directory containing both `Cargo.toml` and
/// `crates/` appears.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        dir = dir.parent()?;
    }
}

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match workspace_root() {
            Some(root) => root,
            None => {
                eprintln!(
                    "xmap-lint: could not locate the workspace root (pass it as the first argument)"
                );
                return ExitCode::FAILURE;
            }
        },
    };
    let findings = run_workspace(&root, &Config::default());
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("xmap-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xmap-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
