//! Workspace linter entry point: `cargo xmap-lint` (alias in `.cargo/config.toml`).
//!
//! Audits every first-party `src/` tree from the workspace root with the nine
//! rules in [`xmap_check::lint`], prints findings in `file:line: [rule] message`
//! form (plus stale-tag warnings) and exits non-zero if any finding survived
//! escape-tag suppression.
//!
//! Flags:
//!
//! * `--json <path>` — also write the versioned JSON findings report (the
//!   `lint-audit` CI job uploads it as an artifact);
//! * `--explain <rule>` — print the rule's rationale and escape syntax, then
//!   exit (so red CI logs are self-documenting: paste the rule name back);
//! * a positional argument overrides the workspace root.

use std::path::PathBuf;
use std::process::ExitCode;

use xmap_check::lint::{audit_workspace, Config, Rule};
use xmap_check::report::render_report;

/// Workspace root: walk up from `CARGO_MANIFEST_DIR` (set under `cargo run`) or
/// the current directory until a directory containing both `Cargo.toml` and
/// `crates/` appears.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        dir = dir.parent()?;
    }
}

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut explain: Option<String> = None;

    let mut args = std::env::args_os().skip(1);
    while let Some(arg) = args.next() {
        match arg.to_str() {
            Some("--json") => match args.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("xmap-lint: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            Some("--explain") => match args.next().and_then(|a| a.to_str().map(str::to_string)) {
                Some(rule) => explain = Some(rule),
                None => {
                    eprintln!("xmap-lint: --explain needs a rule name");
                    return ExitCode::from(2);
                }
            },
            _ => root_arg = Some(PathBuf::from(arg)),
        }
    }

    if let Some(name) = explain {
        return match Rule::from_name(&name) {
            Some(rule) => {
                println!("{}", rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "xmap-lint: unknown rule `{name}`; rules: {}",
                    Rule::all().map(|r| r.name()).join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let root = match root_arg.or_else(workspace_root) {
        Some(root) => root,
        None => {
            eprintln!(
                "xmap-lint: could not locate the workspace root (pass it as the first argument)"
            );
            return ExitCode::FAILURE;
        }
    };

    let audit = audit_workspace(&root, &Config::default());
    for finding in &audit.findings {
        println!("{finding}");
    }
    for warning in &audit.warnings {
        eprintln!("{warning}");
    }
    if let Some(path) = json_path {
        let report = render_report(&root.to_string_lossy(), &audit);
        if let Err(err) = std::fs::write(&path, report) {
            eprintln!("xmap-lint: could not write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if audit.findings.is_empty() {
        println!(
            "xmap-lint: clean ({} files, {} rule(s), {} warning(s))",
            audit.files,
            Rule::all().len(),
            audit.warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xmap-lint: {} finding(s); run `cargo xmap-lint -- --explain <rule>` for rationale",
            audit.findings.len()
        );
        ExitCode::FAILURE
    }
}
