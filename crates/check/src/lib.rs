//! # xmap-check — correctness tooling for the X-Map workspace
//!
//! Two engines, both required CI gates:
//!
//! * the **model-check harness**: re-exports of `xmap_engine::sync::model` plus
//!   the protocol models under `tests/` that exhaustively explore the
//!   epoch-publication and MRV merge protocols (see `DESIGN.md`, "Checked
//!   concurrency");
//! * the **`xmap-lint` binary** ([`lint`]): a multi-pass determinism auditor —
//!   a hand-rolled lexer ([`lex`](crate::lex)) and lightweight parser layer
//!   ([`parse`](crate::parse)) drive the five token-level house rules plus the
//!   iter-order / ambient-nondeterminism / codec-exhaustive / lock-order
//!   passes ([`passes`](crate::passes)) across workspace sources, with a JSON
//!   findings report ([`report`]) for CI.

pub(crate) mod lex;
pub mod lint;
pub(crate) mod parse;
pub(crate) mod passes;
pub mod report;
pub(crate) mod tags;

pub use tags::Warning;

pub use xmap_engine::sync::model::{CheckFailure, Checker, Failure, Report};
pub use xmap_engine::sync::seeded::Mutation;
