//! # xmap-check — correctness tooling for the X-Map workspace
//!
//! Two engines, both required CI gates:
//!
//! * the **model-check harness**: re-exports of `xmap_engine::sync::model` plus
//!   the protocol models under `tests/` that exhaustively explore the
//!   epoch-publication and MRV merge protocols (see `DESIGN.md`, "Checked
//!   concurrency");
//! * the **`xmap-lint` binary** ([`lint`]): a hand-rolled lexer-based linter
//!   enforcing the house concurrency/panic/float rules across workspace sources.

pub mod lint;

pub use xmap_engine::sync::model::{CheckFailure, Checker, Failure, Report};
pub use xmap_engine::sync::seeded::Mutation;
