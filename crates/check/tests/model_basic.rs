//! Sanity gates for the model checker itself: the scheduler must explore real
//! interleavings, the vector-clock tracker must flag textbook races, and correct
//! synchronization idioms must pass.

use xmap_check::Checker;
use xmap_engine::sync::{thread, Arc, AtomicU64, AtomicUsize, Mutex, Ordering, UnsafeCell};

struct RacyCell(UnsafeCell<u64>);
// SAFETY: deliberately unsound sharing — the point of these tests is that the
// checker proves it so.
unsafe impl Sync for RacyCell {}
unsafe impl Send for RacyCell {}

#[test]
fn counter_increments_explore_multiple_schedules_and_pass() {
    let report = Checker::new()
        .check(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("model thread");
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        })
        .expect("two atomic increments are race-free");
    assert!(
        report.schedules > 1,
        "two-thread model must explore more than one schedule, got {}",
        report.schedules
    );
}

#[test]
fn unsynchronized_cell_write_is_reported_as_race() {
    let failure = Checker::new()
        .check(|| {
            let cell = Arc::new(RacyCell(UnsafeCell::new(0)));
            let writer = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.0.with_mut(|p| unsafe { *p = 1 }))
            };
            // Main-thread read unordered with the child's write.
            cell.0.with(|p| unsafe { *p });
            writer.join().expect("model thread");
        })
        .expect_err("unsynchronized write/read must be reported");
    assert!(
        failure.is_data_race(),
        "expected a data race, got: {failure}"
    );
}

#[test]
fn release_acquire_handoff_passes() {
    Checker::new()
        .check(|| {
            let cell = Arc::new(RacyCell(UnsafeCell::new(0)));
            let flag = Arc::new(AtomicU64::new(0));
            let producer = {
                let cell = Arc::clone(&cell);
                let flag = Arc::clone(&flag);
                thread::spawn(move || {
                    cell.0.with_mut(|p| unsafe { *p = 42 });
                    flag.store(1, Ordering::Release);
                })
            };
            if flag.load(Ordering::Acquire) == 1 {
                let v = cell.0.with(|p| unsafe { *p });
                assert_eq!(v, 42, "acquire read must see the released write");
            }
            producer.join().expect("model thread");
        })
        .expect("release/acquire handoff is race-free");
}

#[test]
fn relaxed_handoff_is_reported_as_race() {
    let failure = Checker::new()
        .check(|| {
            let cell = Arc::new(RacyCell(UnsafeCell::new(0)));
            let flag = Arc::new(AtomicU64::new(0));
            let producer = {
                let cell = Arc::clone(&cell);
                let flag = Arc::clone(&flag);
                thread::spawn(move || {
                    cell.0.with_mut(|p| unsafe { *p = 42 });
                    flag.store(1, Ordering::Relaxed);
                })
            };
            if flag.load(Ordering::Relaxed) == 1 {
                cell.0.with(|p| unsafe { *p });
            }
            producer.join().expect("model thread");
        })
        .expect_err("relaxed handoff must be reported");
    assert!(
        failure.is_data_race(),
        "expected a data race, got: {failure}"
    );
}

#[test]
fn mutex_protected_cell_passes() {
    Checker::new()
        .check(|| {
            let shared = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    thread::spawn(move || {
                        let mut g = shared.lock().expect("model mutex");
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("model thread");
            }
            assert_eq!(*shared.lock().expect("model mutex"), 2);
        })
        .expect("mutex-serialized increments are race-free");
}

#[test]
fn assertion_failures_surface_as_panics_with_schedule_trace() {
    let failure = Checker::new()
        .check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let setter = {
                let flag = Arc::clone(&flag);
                thread::spawn(move || flag.store(1, Ordering::Release))
            };
            // Fails on the schedule where the setter runs first.
            assert_eq!(flag.load(Ordering::Acquire), 0, "setter ran first");
            setter.join().expect("model thread");
        })
        .expect_err("some schedule must trip the assertion");
    assert!(
        failure.is_panic_containing("setter ran first"),
        "expected the assertion panic, got: {failure}"
    );
    assert!(!failure.trace.is_empty(), "failure must carry a trace");
}

#[test]
fn spin_loop_wakeups_terminate() {
    Checker::new()
        .check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let setter = {
                let flag = Arc::clone(&flag);
                thread::spawn(move || flag.store(1, Ordering::Release))
            };
            while flag.load(Ordering::Acquire) != 1 {
                xmap_engine::sync::hint::spin_loop();
            }
            setter.join().expect("model thread");
        })
        .expect("spin on a flag another thread sets must terminate");
}
