//! Property test: reported line numbers survive lexical noise.
//!
//! The audit's findings are only actionable if their line numbers are exact, so
//! the lexer must keep counting correctly through the constructs most likely to
//! derail a hand-rolled scanner: multi-line raw strings (containing quotes,
//! braces and decoy `// lint:` tags), nested block comments (containing decoy
//! violations), and `#[cfg(test)]` items (containing *masked* violations that
//! must not leak into the findings). A random mixture of those precedes one
//! planted violation; the audit must report exactly that violation on exactly
//! the computed line, with zero escape-tag warnings — proving the decoy tag
//! inside the raw string was never parsed as a tag.

use proptest::{prop_assert, prop_assert_eq, proptest};
use xmap_check::lint::{audit_sources, Config, Rule};

/// One noise segment: its source text (newline-terminated) and line count.
fn segment(pos: usize, kind: usize) -> (String, u32) {
    match kind {
        0 => (
            format!(
                "pub const RS{pos}: &str = r#\"quote \" closing brace }} // lint: panic\n\
                 /* not a comment, still a raw string\n\
                 last raw line\"#;\n"
            ),
            3,
        ),
        1 => (
            "/* outer /* inner .unwrap() == 1.5\n\
             still inside the nested comment\n\
             */ outer tail .expect(\"decoy\") */\n"
                .to_string(),
            3,
        ),
        2 => (
            format!(
                "#[cfg(test)]\n\
                 mod masked{pos} {{\n\
                 \x20   pub fn g(x: Option<u32>) -> u32 {{ x.unwrap() }}\n\
                 }}\n"
            ),
            4,
        ),
        _ => (format!("pub fn ok{pos}() {{}}\n"), 1),
    }
}

proptest! {
    #[test]
    fn planted_violation_line_survives_lexical_noise(
        kinds in proptest::collection::vec(0usize..4, 0..12),
    ) {
        let mut src = String::new();
        let mut planted_line = 1u32;
        for (pos, &kind) in kinds.iter().enumerate() {
            let (text, lines) = segment(pos, kind);
            src.push_str(&text);
            planted_line += lines;
        }
        src.push_str("pub fn planted(x: Option<u32>) -> u32 { x.unwrap() }\n");

        let sources = vec![("crates/cf/src/fixture.rs".to_string(), src)];
        let audit = audit_sources(&sources, "", &Config::default());

        let panics: Vec<_> = audit
            .findings
            .iter()
            .filter(|f| f.rule == Rule::Panic)
            .collect();
        prop_assert_eq!(
            panics.len(),
            1,
            "exactly the planted unwrap must be reported (decoys masked): {:?}",
            audit.findings
        );
        prop_assert_eq!(panics[0].line, planted_line, "line drifted: {:?}", panics[0]);
        prop_assert!(
            audit.warnings.is_empty(),
            "the decoy tag inside the raw string leaked into tag parsing: {:?}",
            audit.warnings
        );
    }
}
