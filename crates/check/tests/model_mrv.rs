//! Model-checks the MRV accumulator discipline (`xmap_cf::mrv`).
//!
//! The MRV contract has two concurrency claims: writers that own disjoint shards
//! need no synchronization at all (that is the point of splitting a hotspot), and
//! the deterministic `(key, shard)` merge makes any parallel fold bit-equal to the
//! serial reference. The checker verifies the first claim's happens-before
//! structure exhaustively and demonstrates the detector catches its violation.

use xmap_cf::mrv::{
    fold_cells_parallel, route_events, serial_keyed_reference, ConcurrentMrvSplit, MrvShard,
    MrvSplit,
};
use xmap_check::Checker;
use xmap_engine::sync::{thread, Arc};

#[test]
fn disjoint_shard_writers_are_race_free_and_bit_equal() {
    let report = Checker::new()
        .check(|| {
            let split = Arc::new(ConcurrentMrvSplit::new(2));
            let writers: Vec<_> = (0..2)
                .map(|shard| {
                    let split = Arc::clone(&split);
                    thread::spawn(move || {
                        split.record(shard, 1.5 + shard as f64);
                        split.record(shard, -0.25);
                    })
                })
                .collect();
            for w in writers {
                w.join().expect("shard writer");
            }
            // The join edges make the merge race-free; the shard partials must be
            // exactly the per-shard serial folds regardless of the schedule.
            let mut s0 = MrvShard::empty();
            s0.record(1.5);
            s0.record(-0.25);
            let mut s1 = MrvShard::empty();
            s1.record(2.5);
            s1.record(-0.25);
            let expected = MrvSplit::from_shards(vec![s0, s1]);
            assert_eq!(split.snapshot(), expected.shards());
            assert_eq!(split.merge().sum.to_bits(), expected.merge().sum.to_bits());
        })
        .expect("disjoint shard writers are race-free");
    println!(
        "mrv 2 disjoint shard writers: {} schedules explored exhaustively",
        report.schedules
    );
    assert!(
        report.schedules > 1,
        "expected schedule choice, not a straight line"
    );
}

#[test]
fn same_shard_concurrent_writers_are_reported_as_a_race() {
    let failure = Checker::new()
        .check(|| {
            let split = Arc::new(ConcurrentMrvSplit::new(2));
            let contender = Arc::clone(&split);
            let t = thread::spawn(move || contender.record(0, 1.0));
            // Violates the single-writer-per-shard contract: same shard, no ordering.
            split.record(0, 2.0);
            t.join().expect("shard writer");
        })
        .expect_err("two unsynchronized writers on one shard must race");
    assert!(
        failure.is_data_race(),
        "expected a data race, got: {failure}"
    );
    println!("same-shard contention detected as: {failure}");
}

#[test]
fn parallel_cell_fold_matches_the_serial_reference_in_every_schedule() {
    // One hot key routed across two shards — the contended fold the module exists
    // for. Every interleaving of the two fold threads must produce the reference
    // bits, because each cell's sub-sequence and the merge order are data-derived.
    let events = [(7u32, 0.5), (7, 1.25), (7, -2.0), (7, 4.5)];
    let reference = serial_keyed_reference(events, 2);
    let report = Checker::new()
        .check(move || {
            let parallel = fold_cells_parallel(&route_events(events, 2));
            assert_eq!(parallel.len(), reference.len());
            for ((pk, ps), (rk, rs)) in parallel.iter().zip(&reference) {
                assert_eq!(pk, rk);
                assert_eq!(ps.count, rs.count);
                assert_eq!(ps.sum.to_bits(), rs.sum.to_bits());
            }
        })
        .expect("the routed fold is schedule-independent");
    println!(
        "mrv parallel cell fold: {} schedules explored exhaustively",
        report.schedules
    );
}
