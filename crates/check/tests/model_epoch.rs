//! Model checks of the `EpochHandle` publication protocol (see `DESIGN.md`,
//! "Checked concurrency").
//!
//! The protocol invariants checked here, over every explored interleaving:
//!
//! * a reader's `(epoch, value)` pair is never torn — the value is the one
//!   published as that epoch;
//! * epochs are monotone from any single reader's point of view;
//! * no reader ever observes a retired slot (the clone-from-`None` panic) and the
//!   publisher never frees a pinned epoch (a data race on the slot cell) — both
//!   surface as check failures, and the seeded mutants prove the checker would
//!   actually report them.
//!
//! Exploration tiers: the 1-reader/1-publisher protocol is explored **unbounded**
//! (every schedule, no preemption cap) on every run. The 2-reader/1-publisher
//! space is explored exhaustively **within a preemption bound** (CHESS-style — all
//! seeded protocol mutants die within 2 preemptions, so bound 4 carries real
//! margin); `XMAP_CHECK_FULL=1` (the nightly CI job) deepens the bounds.

use xmap_check::{Checker, Mutation};
use xmap_engine::sync::{thread, Arc};
use xmap_engine::EpochHandle;

fn full_mode() -> bool {
    std::env::var_os("XMAP_CHECK_FULL").is_some()
}

/// The canonical model: `readers` reader threads each take `loads` snapshots while
/// the main thread publishes `publishes` epochs; every read asserts the epoch/value
/// pair is untorn and monotone per reader.
fn epoch_model(readers: usize, loads: u64, publishes: u64) {
    let handle = Arc::new(EpochHandle::new(Arc::new(0u64), 0));
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let handle = Arc::clone(&handle);
            thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..loads {
                    let (epoch, value) = handle.load();
                    assert_eq!(epoch, *value, "epoch/value pair torn");
                    assert!(epoch >= last, "epoch went backwards");
                    last = epoch;
                }
            })
        })
        .collect();
    for i in 1..=publishes {
        let published = handle.publish(Arc::new(i));
        assert_eq!(published, i, "publisher must advance the epoch by one");
    }
    for h in handles {
        h.join().expect("reader thread");
    }
    let (epoch, value) = handle.load();
    assert_eq!(epoch, publishes, "final epoch");
    assert_eq!(*value, publishes, "final value");
}

/// The 1-reader/1-publisher protocol, explored with **no preemption bound**: every
/// schedule of the full load/pin/revalidate/clone vs. lock/write/swap/drain/retire
/// interleaving. The explored-schedule count is printed so CI output records the
/// size of the verified space.
#[test]
fn exhaustive_one_reader_one_publisher_unbounded() {
    let report = Checker::new()
        .with_max_schedules(20_000_000)
        .check(|| epoch_model(1, 1, 1))
        .expect("unmutated epoch protocol must pass unbounded exploration");
    println!(
        "epoch protocol 1 reader/1 publisher: {} schedules explored exhaustively, \
         unbounded (max decision depth {})",
        report.schedules, report.max_depth
    );
    assert!(
        report.preemption_bound.is_none(),
        "this gate must run unbounded"
    );
    assert!(
        report.schedules > 1_000,
        "suspiciously small schedule space: {}",
        report.schedules
    );
}

/// Acceptance gate: the 2-reader/1-publisher protocol, explored exhaustively
/// within a preemption bound (4 by default — ~32k schedules; 6 under
/// `XMAP_CHECK_FULL=1` — ~1.2M schedules; the truly unbounded space exceeds 50M
/// schedules, which is what the bound exists for). The explored-schedule count is
/// printed so CI output records the size of the verified space.
#[test]
fn exhaustive_two_readers_one_publisher() {
    let bound = if full_mode() { 6 } else { 4 };
    let report = Checker::new()
        .with_preemption_bound(bound)
        .with_max_schedules(20_000_000)
        .check(|| epoch_model(2, 1, 1))
        .expect("unmutated epoch protocol must pass exhaustive exploration");
    println!(
        "epoch protocol 2 readers/1 publisher: {} schedules explored exhaustively \
         within preemption bound {} (max decision depth {})",
        report.schedules, bound, report.max_depth
    );
    assert!(
        report.schedules > 10_000,
        "suspiciously small schedule space: {}",
        report.schedules
    );
}

/// A deeper variant — two sequential loads per reader against two publishes —
/// checking epoch monotonicity across reader retries. Preemption-bounded to keep
/// the space affordable in the smoke tier; `XMAP_CHECK_FULL=1` (nightly CI)
/// deepens the bound.
#[test]
fn monotonic_epochs_across_publishes() {
    let bound = if full_mode() { 4 } else { 2 };
    let report = Checker::new()
        .with_preemption_bound(bound)
        .with_max_schedules(20_000_000)
        .check(|| epoch_model(1, 2, 2))
        .expect("epoch monotonicity must hold on every schedule");
    println!(
        "epoch monotonicity 1 reader x2 loads / 2 publishes: {} schedules \
         (preemption bound {})",
        report.schedules, bound
    );
}

/// The mutation gate: every seeded weakening of the protocol must be caught by the
/// checker — as a data race from the vector-clock tracker or as an invariant panic
/// — under the same model and bounds where the unmutated protocol passes.
#[test]
fn seeded_mutants_are_caught() {
    let checker = Checker::new()
        .with_preemption_bound(2)
        .with_max_schedules(20_000_000);
    let model = || epoch_model(1, 1, 1);

    let baseline = checker
        .check(model)
        .expect("unmutated protocol must pass the mutant-gate model");
    println!(
        "mutant-gate baseline: {} schedules pass at preemption bound 2",
        baseline.schedules
    );

    for mutation in [
        Mutation::PublishStoreRelaxed,
        Mutation::PinLoadRelaxed,
        Mutation::SkipRevalidate,
        Mutation::DrainLoadRelaxed,
    ] {
        let failure = checker
            .check_with_mutation(mutation, model)
            .expect_err(&format!("mutant {mutation:?} must be caught"));
        println!(
            "mutant {:?} caught after {} passing schedule(s): {}",
            mutation, failure.schedules_explored, failure.failure
        );
    }
}

/// Retirement safety: while a reader still pins the old epoch's slot, the
/// publisher's drain must wait — on every schedule the reader's clone completes
/// before the slot is retired, and the handle's final state holds only the new
/// epoch. (A drain that retired early would race the reader's clone and fail the
/// exhaustive gates above; this test additionally pins the Arc accounting.)
/// Unbounded: the 1-reader model is small enough to explore fully.
#[test]
fn publisher_retires_old_epoch_only_after_drain() {
    Checker::new()
        .with_max_schedules(20_000_000)
        .check(|| {
            let initial = Arc::new(0u64);
            let handle = Arc::new(EpochHandle::new(Arc::clone(&initial), 0));
            let reader = {
                let handle = Arc::clone(&handle);
                thread::spawn(move || handle.load())
            };
            handle.publish(Arc::new(1));
            let (epoch, value) = reader.join().expect("reader thread");
            assert_eq!(epoch, *value, "epoch/value pair torn");
            // After publish returned, the handle has dropped its reference to the
            // old epoch: only `initial` itself (plus the reader's clone, if the
            // reader saw epoch 0) keeps it alive.
            let expected = if epoch == 0 { 2 } else { 1 };
            assert_eq!(
                Arc::strong_count(&initial),
                expected,
                "handle must retire the old epoch exactly once"
            );
        })
        .expect("retirement protocol must pass exhaustive exploration");
}
