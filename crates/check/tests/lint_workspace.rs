//! The workspace must lint clean — this is the same gate the `lint` CI job runs
//! via `cargo xmap-lint`, kept as a test so `cargo test` catches regressions
//! without the alias.

use std::path::Path;

use xmap_check::lint::{audit_workspace, lint_source, run_workspace, Config, Rule};

fn workspace_root() -> &'static Path {
    // crates/check → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check sits two levels below the workspace root")
}

#[test]
fn the_workspace_lints_clean() {
    let findings = run_workspace(workspace_root(), &Config::default());
    assert!(
        findings.is_empty(),
        "xmap-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_workspace_audit_has_no_findings_and_no_warnings() {
    // The full v2 audit — all nine rules plus escape-tag hygiene. Zero findings
    // means every hazard is fixed or justified; zero warnings means every
    // justification is still load-bearing and correctly spelled.
    let audit = audit_workspace(workspace_root(), &Config::default());
    assert!(
        audit.findings.is_empty(),
        "the audit found {} violation(s):\n{}",
        audit.findings.len(),
        audit
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        audit.warnings.is_empty(),
        "the audit produced {} warning(s):\n{}",
        audit.warnings.len(),
        audit
            .warnings
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn a_planted_violation_is_rejected_against_the_real_design_md() {
    // End-to-end fixture: a source file violating four rules at once, linted with
    // the real DESIGN.md, must produce a finding per rule — proving the CI gate
    // would reject it, not just the unit-test stub config.
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md"))
        .expect("DESIGN.md exists at the workspace root");
    let planted = r#"
use std::sync::atomic::{AtomicU64, Ordering};
pub fn planted(flag: &AtomicU64, x: Option<f64>) -> bool {
    let v = x.unwrap();
    flag.store(1, Ordering::Relaxed);
    v == 1.5
}
"#;
    let findings = lint_source(
        "crates/cf/src/planted.rs",
        planted,
        &design,
        &Config::default(),
    );
    for rule in [
        Rule::AtomicFacade,
        Rule::Panic,
        Rule::Ordering,
        Rule::FloatEq,
    ] {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "planted {rule} violation was not rejected; findings: {findings:?}"
        );
    }
}
