//! Planted-violation fixtures for the four v2 audit passes, escape-tag scope
//! tests, the codec mutation gate, and a lexer line-number property test.
//!
//! The analyzer is itself a determinism gate, so it gets the same treatment as
//! the concurrency model checker: every rule must demonstrably see the bug it
//! was built for (planted fixtures), and the codec-exhaustive rule is mutation
//! tested against the *real* workspace codecs — delete any field mention from
//! any `enc`/`dec` body and the audit must fail.

use std::path::Path;

use xmap_check::lint::{audit_sources, codec_surface, workspace_sources, Audit, Config, Rule};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check sits two levels below the workspace root")
}

fn srcs(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

/// Audits fixture sources with an empty DESIGN (fixture paths are never on the
/// documented surface, so the surface-doc rule stays quiet).
fn audit(files: &[(&str, &str)]) -> Audit {
    audit_sources(&srcs(files), "", &Config::default())
}

fn has_rule(audit: &Audit, rule: Rule) -> bool {
    audit.findings.iter().any(|f| f.rule == rule)
}

// --- iter-order ---------------------------------------------------------------

#[test]
fn iter_order_rejects_hash_iteration_in_library_code() {
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
use std::collections::HashMap;
pub fn leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m.iter() {
        out.push(*k);
    }
    out
}
"#,
    )]);
    assert!(
        has_rule(&audit, Rule::IterOrder),
        "planted hash iteration was not flagged: {:?}",
        audit.findings
    );
}

#[test]
fn iter_order_accepts_the_collect_then_sort_idiom() {
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
use std::collections::HashMap;
pub fn sorted(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}
pub fn counted(m: &HashMap<u32, u32>) -> usize {
    m.values().filter(|v| **v > 0).count()
}
"#,
    )]);
    assert!(
        !has_rule(&audit, Rule::IterOrder),
        "deterministic sinks were flagged: {:?}",
        audit.findings
    );
}

#[test]
fn iter_order_ignores_test_code_and_non_library_paths() {
    let body = r#"
use std::collections::HashMap;
pub fn leak(m: &HashMap<u32, u32>) {
    for k in m.keys() {
        let _ = k;
    }
}
"#;
    for path in [
        "crates/cf/benches/fixture.rs",
        "crates/cf/tests/fixture.rs",
        "crates/bench/src/bin/fixture.rs",
    ] {
        let audit = audit(&[(path, body)]);
        assert!(
            !has_rule(&audit, Rule::IterOrder),
            "{path}: non-library code was flagged: {:?}",
            audit.findings
        );
    }
}

// --- ambient-nondeterminism ----------------------------------------------------

#[test]
fn ambient_rejects_wall_clock_entropy_and_env_reads() {
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
use std::time::Instant;
pub fn timed() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
pub fn seeded() -> u64 {
    let mut rng = thread_rng();
    rng.next()
}
pub fn configured() -> Option<String> {
    std::env::var("XMAP_MODE").ok()
}
"#,
    )]);
    let n = audit
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Ambient)
        .count();
    assert!(
        n >= 3,
        "expected clock + rng + env findings, got {n}: {:?}",
        audit.findings
    );
}

#[test]
fn ambient_allows_the_clock_facade_itself() {
    let audit = audit(&[(
        "crates/engine/src/clock.rs",
        r#"
use std::time::Instant;
pub fn probe() -> Instant {
    Instant::now()
}
"#,
    )]);
    assert!(
        !has_rule(&audit, Rule::Ambient),
        "the clock facade must be allowed to read Instant: {:?}",
        audit.findings
    );
}

// --- codec-exhaustive ----------------------------------------------------------

const CODEC_STRUCT: &str = r#"
pub struct Rec {
    pub alpha: u32,
    pub beta: f64,
    pub gamma: usize,
}
"#;

#[test]
fn codec_exhaustive_rejects_a_field_missing_from_enc() {
    let audit = audit(&[
        ("crates/cf/src/fixture.rs", CODEC_STRUCT),
        (
            "crates/cf/src/fixture_codec.rs",
            r#"
use crate::fixture::Rec;
impl xmap_store::Codec for Rec {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        self.alpha.enc(e);
        e.put_f64(self.beta);
    }
    fn dec(d: &mut xmap_store::Decoder<'_>) -> Result<Self, xmap_store::StoreError> {
        Ok(Rec { alpha: u32::dec(d)?, beta: d.take_f64()?, gamma: d.take_usize()? })
    }
}
"#,
        ),
    ]);
    let finding = audit
        .findings
        .iter()
        .find(|f| f.rule == Rule::CodecExhaustive)
        .unwrap_or_else(|| panic!("dropped field was not flagged: {:?}", audit.findings));
    assert!(
        finding.message.contains("gamma") && finding.message.contains("enc"),
        "finding should name the field and the side: {finding}"
    );
}

#[test]
fn codec_exhaustive_accepts_a_complete_impl() {
    let audit = audit(&[
        ("crates/cf/src/fixture.rs", CODEC_STRUCT),
        (
            "crates/cf/src/fixture_codec.rs",
            r#"
use crate::fixture::Rec;
impl xmap_store::Codec for Rec {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        self.alpha.enc(e);
        e.put_f64(self.beta);
        e.put_usize(self.gamma);
    }
    fn dec(d: &mut xmap_store::Decoder<'_>) -> Result<Self, xmap_store::StoreError> {
        Ok(Rec { alpha: u32::dec(d)?, beta: d.take_f64()?, gamma: d.take_usize()? })
    }
}
"#,
        ),
    ]);
    assert!(
        !has_rule(&audit, Rule::CodecExhaustive),
        "complete codec was flagged: {:?}",
        audit.findings
    );
}

// --- lock-order ----------------------------------------------------------------

#[test]
fn lock_order_rejects_opposite_nested_acquisition() {
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
use std::sync::Mutex;
pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        *ga + *gb
    }
    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        *ga + *gb
    }
}
"#,
    )]);
    assert!(
        has_rule(&audit, Rule::LockOrder),
        "opposite-order nested locking was not flagged: {:?}",
        audit.findings
    );
}

#[test]
fn lock_order_accepts_a_consistent_acquisition_order() {
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
use std::sync::Mutex;
pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
impl Pair {
    pub fn sum(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        *ga + *gb
    }
    pub fn diff(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        *ga - *gb
    }
}
"#,
    )]);
    assert!(
        !has_rule(&audit, Rule::LockOrder),
        "consistent order was flagged: {:?}",
        audit.findings
    );
}

#[test]
fn lock_order_respects_early_drop() {
    // `drop(ga)` ends the first guard before the second acquisition, so the
    // opposite-order pair in `ba` never overlaps `ab`'s edge.
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
use std::sync::Mutex;
pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let x = *ga;
        drop(ga);
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        x + *gb
    }
    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        let y = *gb;
        drop(gb);
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        y + *ga
    }
}
"#,
    )]);
    assert!(
        !has_rule(&audit, Rule::LockOrder),
        "hand-over-hand locking was flagged: {:?}",
        audit.findings
    );
}

// --- escape-tag scopes ----------------------------------------------------------

#[test]
fn a_block_tag_suppresses_every_finding_in_its_item() {
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
use std::collections::HashMap;
// lint: iter-order (block) — fixture: both loops feed a commutative fold.
pub fn fold(m: &HashMap<u32, u32>) -> u64 {
    let mut acc = 0u64;
    for v in m.values() {
        acc = acc.wrapping_add(u64::from(*v));
    }
    for k in m.keys() {
        acc = acc.wrapping_mul(31).wrapping_add(u64::from(*k) & 1);
    }
    acc
}
"#,
    )]);
    assert!(
        !has_rule(&audit, Rule::IterOrder),
        "block tag did not cover the whole item: {:?}",
        audit.findings
    );
    assert!(
        audit.warnings.is_empty(),
        "a used block tag must not warn: {:?}",
        audit.warnings
    );
}

#[test]
fn a_line_tag_nested_inside_a_block_tag_leaves_neither_stale() {
    // Both tags cover the first loop; `covers` marks every covering site used,
    // so the redundant inner tag is not reported stale (the block tag is still
    // load-bearing for the second loop).
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
use std::collections::HashMap;
// lint: iter-order (block) — fixture: commutative folds.
pub fn fold(m: &HashMap<u32, u32>) -> u64 {
    let mut acc = 0u64;
    // lint: iter-order — fixture: wrapping add commutes.
    for v in m.values() {
        acc = acc.wrapping_add(u64::from(*v));
    }
    for k in m.keys() {
        acc = acc.wrapping_mul(31).wrapping_add(u64::from(*k) & 1);
    }
    acc
}
"#,
    )]);
    assert!(!has_rule(&audit, Rule::IterOrder), "{:?}", audit.findings);
    assert!(
        audit.warnings.is_empty(),
        "nested tags must both count as used: {:?}",
        audit.warnings
    );
}

#[test]
fn a_line_tag_does_not_reach_past_its_scope() {
    // The line tag covers only the first loop; the second must still be flagged.
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
use std::collections::HashMap;
pub fn fold(m: &HashMap<u32, u32>) -> u64 {
    let mut acc = 0u64;
    // lint: iter-order — fixture: wrapping add commutes.
    for v in m.values() {
        acc = acc.wrapping_add(u64::from(*v));
    }
    let mut order: Vec<u32> = Vec::new();
    for k in m.keys() {
        order.push(*k);
    }
    acc.wrapping_add(u64::from(order.first().copied().unwrap_or(0)))
}
"#,
    )]);
    let flagged: Vec<_> = audit
        .findings
        .iter()
        .filter(|f| f.rule == Rule::IterOrder)
        .collect();
    assert_eq!(
        flagged.len(),
        1,
        "exactly the out-of-scope loop must be flagged: {:?}",
        audit.findings
    );
}

#[test]
fn stale_and_unknown_tags_surface_as_warnings() {
    let audit = audit(&[(
        "crates/cf/src/fixture.rs",
        r#"
// lint: iter-order — nothing here iterates anything.
pub fn quiet() -> u32 {
    // lint: determinsm — misspelled rule name.
    7
}
"#,
    )]);
    assert!(audit.findings.is_empty(), "{:?}", audit.findings);
    assert!(
        audit.warnings.iter().any(|w| w.message.contains("stale")),
        "unused tag must warn: {:?}",
        audit.warnings
    );
    assert!(
        audit.warnings.iter().any(|w| w.message.contains("unknown")),
        "misspelled tag must warn: {:?}",
        audit.warnings
    );
}

// --- codec mutation gate ---------------------------------------------------------

/// Replaces whole-word occurrences of `field` with a nonsense identifier on the
/// 1-based lines `span` (inclusive) of `path` inside `sources`.
fn mutate_field_mention(
    sources: &[(String, String)],
    path: &str,
    span: (u32, u32),
    field: &str,
) -> Vec<(String, String)> {
    let mut out = sources.to_vec();
    let entry = out
        .iter_mut()
        .find(|(p, _)| p == path)
        .unwrap_or_else(|| panic!("{path} missing from workspace sources"));
    let mut mutated_any = false;
    let mutated: Vec<String> = entry
        .1
        .lines()
        .enumerate()
        .map(|(ix, line)| {
            let lineno = ix as u32 + 1;
            if lineno < span.0 || lineno > span.1 {
                return line.to_string();
            }
            let replaced = replace_word(line, field, "zz_mutated");
            if replaced != line {
                mutated_any = true;
            }
            replaced
        })
        .collect();
    assert!(
        mutated_any,
        "field `{field}` had no mention on lines {span:?} of {path} — the \
         surface map disagrees with the source"
    );
    entry.1 = mutated.join("\n");
    out
}

/// Word-boundary string replacement (no regex offline).
fn replace_word(line: &str, word: &str, with: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    let is_word = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    while i < line.len() {
        if line[i..].starts_with(word) {
            let before_ok = i == 0 || !is_word(bytes[i - 1]);
            let after = i + word.len();
            let after_ok = after >= line.len() || !is_word(bytes[after]);
            if before_ok && after_ok {
                out.push_str(with);
                i = after;
                continue;
            }
        }
        let ch = line[i..].chars().next().expect("in-bounds char");
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

#[test]
fn every_workspace_codec_field_is_mutation_covered() {
    // The real gate: for every (Codec impl, struct field) pair in the live
    // workspace, deleting the field's mention from the `enc` body — and then,
    // independently, from the `dec` body — must produce a codec-exhaustive
    // finding. A codec rule that cannot see a dropped field does not count.
    let root = workspace_root();
    let sources = workspace_sources(root);
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md exists");
    let config = Config::default();

    let surface = codec_surface(&sources);
    assert!(
        surface.len() >= 10,
        "the workspace should expose a meaningful codec surface, got {}",
        surface.len()
    );

    for cf in &surface {
        for (side, span) in [("enc", cf.enc_lines), ("dec", cf.dec_lines)] {
            let mutated = mutate_field_mention(&sources, &cf.file, span, &cf.field);
            let audit = audit_sources(&mutated, &design, &config);
            let caught = audit.findings.iter().any(|f| {
                f.rule == Rule::CodecExhaustive
                    && f.file == cf.file
                    && f.message.contains(&cf.field)
                    && f.message.contains(side)
            });
            assert!(
                caught,
                "dropping `{}::{}` from `{side}` in {} went undetected",
                cf.type_name, cf.field, cf.file
            );
        }
    }
}
