//! Bridge-item detection (§3.2 of the paper).
//!
//! A *bridge item* is any item `i` of a domain `D` that connects — through the baseline
//! similarity graph, i.e. through users who rated in both domains — to some item `j` of
//! another domain `D'`. Both endpoints of such a cross-domain edge are bridge items.
//! Every other item is a *non-bridge item*. Bridge items are the anchors of the layer
//! partition (BB/NB/NN) and therefore of meta-path pruning.

use crate::graph::SimilarityGraph;
use serde::{Deserialize, Serialize};
use xmap_cf::ItemId;

/// Precomputed bridge flags for every item of the similarity graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BridgeIndex {
    is_bridge: Vec<bool>,
}

impl BridgeIndex {
    /// Scans the graph and marks every item that has at least one cross-domain edge.
    pub fn from_graph(graph: &SimilarityGraph) -> Self {
        let mut is_bridge = vec![false; graph.n_items()];
        for i in graph.items() {
            let di = graph.item_domain(i);
            for &to in graph.neighbors(i).ids() {
                if graph.item_domain(to) != di {
                    // both endpoints of a cross-domain pair are bridges by definition
                    is_bridge[i.index()] = true;
                    is_bridge[to.index()] = true;
                }
            }
        }
        BridgeIndex { is_bridge }
    }

    /// Whether the item is a bridge item. Unknown items are non-bridge.
    pub fn is_bridge(&self, item: ItemId) -> bool {
        self.is_bridge.get(item.index()).copied().unwrap_or(false)
    }

    /// Number of items covered by the index.
    pub fn len(&self) -> usize {
        self.is_bridge.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.is_bridge.is_empty()
    }

    /// All bridge items.
    pub fn bridge_items(&self) -> Vec<ItemId> {
        self.is_bridge
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| if b { Some(ItemId(i as u32)) } else { None })
            .collect()
    }

    /// Number of bridge items.
    pub fn n_bridges(&self) -> usize {
        self.is_bridge.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use xmap_cf::{DomainId, RatingMatrixBuilder};

    fn two_domain_fixture() -> SimilarityGraph {
        let mut b = RatingMatrixBuilder::new();
        // Movies 0-2, books 3-5. User 0 straddles via items 1 and 3.
        b.push_parts(0, 1, 5.0).unwrap();
        b.push_parts(0, 3, 4.0).unwrap();
        b.push_parts(1, 0, 4.0).unwrap();
        b.push_parts(1, 1, 5.0).unwrap();
        b.push_parts(2, 3, 3.0).unwrap();
        b.push_parts(2, 4, 4.0).unwrap();
        b.push_parts(3, 2, 2.0).unwrap(); // item 2 rated by a single user: isolated
        b.push_parts(4, 5, 5.0).unwrap(); // item 5 isolated in books
        for i in 0..3u32 {
            b.set_item_domain(ItemId(i), DomainId::SOURCE);
        }
        for i in 3..6u32 {
            b.set_item_domain(ItemId(i), DomainId::TARGET);
        }
        let m = b.build().unwrap();
        SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        )
    }

    #[test]
    fn straddler_items_are_bridges() {
        let g = two_domain_fixture();
        let idx = BridgeIndex::from_graph(&g);
        assert!(
            idx.is_bridge(ItemId(1)),
            "movie co-rated with a book must be a bridge"
        );
        assert!(
            idx.is_bridge(ItemId(3)),
            "book co-rated with a movie must be a bridge"
        );
    }

    #[test]
    fn isolated_and_intra_domain_items_are_not_bridges() {
        let g = two_domain_fixture();
        let idx = BridgeIndex::from_graph(&g);
        assert!(
            !idx.is_bridge(ItemId(2)),
            "item with a single rater is not a bridge"
        );
        assert!(
            !idx.is_bridge(ItemId(5)),
            "item only co-rated within its domain is not a bridge"
        );
        assert!(
            !idx.is_bridge(ItemId(0)),
            "item 0 is only connected to item 1 (same domain)"
        );
        assert!(!idx.is_bridge(ItemId(99)), "unknown items are non-bridge");
    }

    #[test]
    fn bridge_items_listing_matches_flags() {
        let g = two_domain_fixture();
        let idx = BridgeIndex::from_graph(&g);
        let listed = idx.bridge_items();
        assert_eq!(listed.len(), idx.n_bridges());
        for item in listed {
            assert!(idx.is_bridge(item));
        }
        assert_eq!(idx.len(), g.n_items());
        assert!(!idx.is_empty());
    }

    #[test]
    fn single_domain_graph_has_no_bridges() {
        let mut b = RatingMatrixBuilder::new();
        b.push_parts(0, 0, 4.0).unwrap();
        b.push_parts(0, 1, 5.0).unwrap();
        b.push_parts(1, 0, 3.0).unwrap();
        b.push_parts(1, 1, 4.0).unwrap();
        let m = b.build().unwrap();
        let g = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        let idx = BridgeIndex::from_graph(&g);
        assert_eq!(idx.n_bridges(), 0);
    }
}
