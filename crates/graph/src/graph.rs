//! The baseline similarity graph `G_ac` (§3.1 of the paper).
//!
//! Vertices are items (from every domain, treated as one aggregated item set); an edge
//! `(i, j)` exists when the two items have at least one common rater and a non-zero
//! similarity under the chosen metric. Each edge carries the full [`SimilarityStats`]
//! (similarity, co-rater count, weighted significance, union size) so that X-Sim's path
//! similarity and path certainty can be computed without going back to the rating matrix.
//!
//! The graph is stored as per-item adjacency lists sorted by descending similarity and
//! optionally pruned to the top-k strongest edges per item — never as a dense m × m
//! matrix, which would be intractable at the paper's scale (§3.1 discusses exactly this
//! O(m²) blow-up).

use serde::{Deserialize, Serialize};
use xmap_cf::similarity::{item_similarity_stats, SimilarityStats};
use xmap_cf::{DomainId, ItemId, RatingMatrix, SimilarityMetric};

/// Configuration for building the baseline similarity graph.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Similarity metric for edge weights (the paper uses adjusted cosine).
    pub metric: SimilarityMetric,
    /// Keep only the `top_k` strongest edges (by similarity) per item; `None` keeps all.
    pub top_k: Option<usize>,
    /// Drop edges whose |similarity| is below this threshold.
    pub min_similarity: f64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            metric: SimilarityMetric::AdjustedCosine,
            top_k: Some(50),
            min_similarity: 0.0,
        }
    }
}

/// A weighted edge of the similarity graph.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// The neighbouring item.
    pub to: ItemId,
    /// Pairwise statistics between the owning item and `to`.
    pub stats: SimilarityStats,
}

impl Edge {
    /// Similarity weight of the edge.
    pub fn similarity(&self) -> f64 {
        self.stats.similarity
    }

    /// Normalised weighted significance `Ŝ` of the edge (Definition 4).
    pub fn normalized_significance(&self) -> f64 {
        self.stats.normalized_significance()
    }
}

/// The baseline similarity graph with per-item adjacency lists.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimilarityGraph {
    adjacency: Vec<Vec<Edge>>,
    item_domain: Vec<DomainId>,
    config: GraphConfig,
}

impl SimilarityGraph {
    /// Builds the graph from a rating matrix containing the aggregated domains.
    ///
    /// Candidate item pairs are generated through co-rating users, so items with no
    /// common rater never pay a similarity computation.
    pub fn build(matrix: &RatingMatrix, config: GraphConfig) -> Self {
        let n_items = matrix.n_items();
        let mut candidate_sets: Vec<Vec<ItemId>> = vec![Vec::new(); n_items];
        for u in matrix.users() {
            let profile = matrix.user_profile(u);
            for a in 0..profile.len() {
                for b in 0..profile.len() {
                    if a != b {
                        candidate_sets[profile[a].item.index()].push(profile[b].item);
                    }
                }
            }
        }

        let mut adjacency = Vec::with_capacity(n_items);
        for i in 0..n_items {
            let mut cands = std::mem::take(&mut candidate_sets[i]);
            cands.sort_unstable();
            cands.dedup();
            let mut edges: Vec<Edge> = cands
                .into_iter()
                .map(|j| Edge {
                    to: j,
                    stats: item_similarity_stats(matrix, ItemId(i as u32), j, config.metric),
                })
                .filter(|e| {
                    e.stats.similarity != 0.0 && e.stats.similarity.abs() >= config.min_similarity
                })
                .collect();
            edges.sort_by(|a, b| {
                b.stats
                    .similarity
                    .partial_cmp(&a.stats.similarity)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            if let Some(k) = config.top_k {
                edges.truncate(k);
            }
            adjacency.push(edges);
        }

        let item_domain = (0..n_items as u32).map(|i| matrix.item_domain(ItemId(i))).collect();

        SimilarityGraph {
            adjacency,
            item_domain,
            config,
        }
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Number of items (vertices), rated or not.
    pub fn n_items(&self) -> usize {
        self.adjacency.len()
    }

    /// Total number of directed edges stored (an undirected edge that survives pruning on
    /// both endpoints is counted twice).
    pub fn n_directed_edges(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).sum()
    }

    /// The outgoing edges of an item, sorted by descending similarity.
    pub fn edges(&self, item: ItemId) -> &[Edge] {
        self.adjacency
            .get(item.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The domain of an item.
    pub fn item_domain(&self, item: ItemId) -> DomainId {
        self.item_domain
            .get(item.index())
            .copied()
            .unwrap_or(DomainId::SOURCE)
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.n_items() as u32).map(ItemId)
    }

    /// The edge between two specific items, if it survived pruning on `from`'s side.
    pub fn edge_between(&self, from: ItemId, to: ItemId) -> Option<&Edge> {
        self.edges(from).iter().find(|e| e.to == to)
    }

    /// Whether the item has at least one edge to an item of a *different* domain.
    pub fn has_cross_domain_edge(&self, item: ItemId) -> bool {
        let d = self.item_domain(item);
        self.edges(item).iter().any(|e| self.item_domain(e.to) != d)
    }

    /// Number of item pairs `(i, j)` with `i` and `j` in different domains connected by a
    /// direct edge — the "standard" heterogeneous similarity count of Figure 1(b).
    /// Each undirected pair is counted once.
    pub fn n_heterogeneous_pairs(&self) -> usize {
        let mut count = 0usize;
        for i in self.items() {
            let di = self.item_domain(i);
            for e in self.edges(i) {
                if self.item_domain(e.to) != di && i < e.to {
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_cf::RatingMatrixBuilder;

    /// Two domains; user 2 straddles them.
    fn fixture() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        // movies: items 0, 1, 2 ; books: items 3, 4
        b.push_parts(0, 0, 5.0).unwrap();
        b.push_parts(0, 1, 4.0).unwrap();
        b.push_parts(1, 1, 5.0).unwrap();
        b.push_parts(1, 2, 2.0).unwrap();
        b.push_parts(2, 1, 4.0).unwrap(); // straddler rates a movie
        b.push_parts(2, 3, 5.0).unwrap(); // ... and books
        b.push_parts(2, 4, 2.0).unwrap();
        b.push_parts(3, 3, 4.0).unwrap();
        b.push_parts(3, 4, 1.0).unwrap();
        for i in 0..3u32 {
            b.set_item_domain(ItemId(i), DomainId::SOURCE);
        }
        for i in 3..5u32 {
            b.set_item_domain(ItemId(i), DomainId::TARGET);
        }
        b.build().unwrap()
    }

    #[test]
    fn edges_only_between_co_rated_items() {
        let m = fixture();
        let g = SimilarityGraph::build(&m, GraphConfig::default());
        assert_eq!(g.n_items(), 5);
        // items 0 and 2 share no rater
        assert!(g.edge_between(ItemId(0), ItemId(2)).is_none());
        // items 0 and 1 share user 0
        assert!(g.edge_between(ItemId(0), ItemId(1)).is_some() || g.edge_between(ItemId(1), ItemId(0)).is_some());
        // cross-domain edge through the straddler (user 2): item 1 and item 3
        assert!(g.has_cross_domain_edge(ItemId(1)) || g.has_cross_domain_edge(ItemId(3)));
    }

    #[test]
    fn adjacency_sorted_by_descending_similarity() {
        let m = fixture();
        let g = SimilarityGraph::build(&m, GraphConfig { top_k: None, ..Default::default() });
        for i in g.items() {
            let edges = g.edges(i);
            for w in edges.windows(2) {
                assert!(w[0].similarity() >= w[1].similarity());
            }
        }
    }

    #[test]
    fn top_k_pruning_limits_degree() {
        let mut b = RatingMatrixBuilder::new();
        // star pattern: one user rates everything -> item 0 is connected to all others
        for i in 0..20u32 {
            b.push_parts(0, i, ((i % 5) + 1) as f64).unwrap();
            b.push_parts(1 + i, i, 3.0).unwrap(); // extra raters to vary averages
        }
        let m = b.build().unwrap();
        let g = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: Some(5),
                ..Default::default()
            },
        );
        for i in g.items() {
            assert!(g.edges(i).len() <= 5, "item {i} has degree {}", g.edges(i).len());
        }
        let unpruned = SimilarityGraph::build(&m, GraphConfig { top_k: None, ..Default::default() });
        assert!(unpruned.n_directed_edges() >= g.n_directed_edges());
    }

    #[test]
    fn min_similarity_filters_weak_edges() {
        let m = fixture();
        let strict = SimilarityGraph::build(
            &m,
            GraphConfig {
                min_similarity: 0.99,
                top_k: None,
                ..Default::default()
            },
        );
        let loose = SimilarityGraph::build(&m, GraphConfig { top_k: None, min_similarity: 0.0, ..Default::default() });
        assert!(strict.n_directed_edges() <= loose.n_directed_edges());
        for i in strict.items() {
            for e in strict.edges(i) {
                assert!(e.similarity().abs() >= 0.99);
            }
        }
    }

    #[test]
    fn heterogeneous_pair_count_is_symmetric_and_small_here() {
        let m = fixture();
        let g = SimilarityGraph::build(&m, GraphConfig { top_k: None, ..Default::default() });
        // only the straddler (user 2) creates cross-domain pairs: (1,3), (1,4)
        let n = g.n_heterogeneous_pairs();
        assert!(n >= 1 && n <= 3, "unexpected heterogeneous pair count {n}");
    }

    #[test]
    fn out_of_range_item_has_no_edges_and_default_domain() {
        let m = fixture();
        let g = SimilarityGraph::build(&m, GraphConfig::default());
        assert!(g.edges(ItemId(99)).is_empty());
        assert_eq!(g.item_domain(ItemId(99)), DomainId::SOURCE);
    }

    #[test]
    fn edge_accessors_expose_stats() {
        let m = fixture();
        let g = SimilarityGraph::build(&m, GraphConfig { top_k: None, ..Default::default() });
        let e = g.edges(ItemId(0)).first().copied().unwrap();
        assert!(e.similarity().abs() <= 1.0);
        assert!(e.normalized_significance() >= 0.0 && e.normalized_significance() <= 1.0);
    }
}
