//! The baseline similarity graph `G_ac` (§3.1 of the paper), stored as a CSR arena.
//!
//! Vertices are items (from every domain, treated as one aggregated item set); an edge
//! `(i, j)` exists when the two items have at least one common rater and a non-zero
//! similarity under the chosen metric. Each edge carries the full [`SimilarityStats`]
//! (similarity, co-rater count, weighted significance, union size) so that X-Sim's path
//! similarity and path certainty can be computed without going back to the rating matrix.
//!
//! ## Storage layout
//!
//! The graph is a compressed-sparse-row (CSR) arena rather than per-item `Vec`s:
//!
//! * `offsets[i]..offsets[i + 1]` delimits item `i`'s adjacency slots,
//! * `neighbors` holds the neighbour ids of every item, **sorted ascending** per item so
//!   that [`SimilarityGraph::edge_between`] is an `O(log d)` binary search instead of a
//!   linear scan,
//! * `edge_ix` maps each adjacency slot to a record in `edge_stats`, the pool that stores
//!   every **undirected edge exactly once** in canonical `(min, max)` orientation — both
//!   endpoints' slots share the record, so a symmetric lookup never needs the historical
//!   `edge_between(a, b).or_else(edge_between(b, a))` double probe,
//! * `sim_rank` stores, per item, the local slot order by **descending similarity**, which
//!   is what meta-path enumeration's per-layer top-k pruning walks.
//!
//! Pruning keeps an undirected edge when it ranks within the `top_k` strongest edges of
//! *either* endpoint (union semantics). This is a deliberate change from the historical
//! per-item lists, which traversed only edges surviving the *from* side's pruning and
//! consulted the reverse orientation solely when scoring already-enumerated paths: with
//! undirected storage the traversable and scorable edge sets are necessarily the same,
//! and the union is the choice consistent with the old scoring fallback. Consequently
//! item degrees are no longer bounded by `top_k` (a hub every neighbour ranks highly
//! keeps all those edges) and graphs are somewhat denser than the seed's, which shifts
//! absolute pair counts in the figures while preserving their shape. The graph is never
//! stored as a dense m × m matrix, which would be intractable at the paper's scale
//! (§3.1 discusses exactly this O(m²) blow-up).

use serde::{Deserialize, Serialize};
use xmap_cf::similarity::{item_similarity_stats, SimilarityStats};
use xmap_cf::{DomainId, ItemId, RatingMatrix, SimilarityMetric, UserId};

/// Configuration for building the baseline similarity graph.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Similarity metric for edge weights (the paper uses adjusted cosine).
    pub metric: SimilarityMetric,
    /// Keep an undirected edge only if it is among the `top_k` strongest (by similarity)
    /// of at least one endpoint; `None` keeps all.
    pub top_k: Option<usize>,
    /// Drop edges whose |similarity| is below this threshold.
    pub min_similarity: f64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            metric: SimilarityMetric::AdjustedCosine,
            top_k: Some(50),
            min_similarity: 0.0,
        }
    }
}

/// A borrowed view of one edge of the graph: the neighbour plus the shared
/// per-undirected-edge statistics record.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRef<'a> {
    /// The neighbouring item.
    pub to: ItemId,
    /// Pairwise statistics of the undirected edge (stored once per edge).
    pub stats: &'a SimilarityStats,
}

impl EdgeRef<'_> {
    /// Similarity weight of the edge.
    pub fn similarity(&self) -> f64 {
        self.stats.similarity
    }

    /// Normalised weighted significance `Ŝ` of the edge (Definition 4).
    pub fn normalized_significance(&self) -> f64 {
        self.stats.normalized_significance()
    }
}

/// The adjacency of one item: a slice view into the CSR arena.
///
/// Neighbour ids are sorted ascending (so membership tests are binary searches), and
/// [`NeighborView::by_similarity`] walks the same slots strongest-first for top-k
/// fan-out pruning.
#[derive(Clone, Copy)]
pub struct NeighborView<'a> {
    ids: &'a [ItemId],
    edge_ix: &'a [u32],
    sim_rank: &'a [u32],
    edge_stats: &'a [SimilarityStats],
}

impl<'a> NeighborView<'a> {
    /// Number of neighbours.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the item has no neighbours.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The neighbour ids, sorted ascending.
    pub fn ids(&self) -> &'a [ItemId] {
        self.ids
    }

    /// The edge at a local slot (slots follow ascending neighbour id).
    pub fn get(&self, slot: usize) -> EdgeRef<'a> {
        EdgeRef {
            to: self.ids[slot],
            stats: &self.edge_stats[self.edge_ix[slot] as usize],
        }
    }

    /// Iterates the edges in ascending neighbour-id order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeRef<'a>> + '_ {
        (0..self.ids.len()).map(move |slot| self.get(slot))
    }

    /// Iterates the edges strongest-first (descending similarity, ties by ascending id).
    pub fn by_similarity(&self) -> impl Iterator<Item = EdgeRef<'a>> + '_ {
        self.sim_rank
            .iter()
            .map(move |&slot| self.get(slot as usize))
    }

    /// Binary-searches the adjacency for a specific neighbour.
    pub fn find(&self, to: ItemId) -> Option<EdgeRef<'a>> {
        self.ids.binary_search(&to).ok().map(|slot| self.get(slot))
    }
}

/// The baseline similarity graph, stored as a CSR arena over a shared pool of
/// per-undirected-edge statistics (see the module docs for the layout).
///
/// `PartialEq` compares the full arena bit for bit (offsets, neighbour slots, edge
/// statistics, domains and configuration) — it is what the engine-parallel baseliner's
/// bit-identity tests assert against [`SimilarityGraph::build_serial`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimilarityGraph {
    /// CSR row offsets; `len == n_items + 1`, monotone non-decreasing.
    offsets: Vec<u32>,
    /// Neighbour ids per item, ascending within each item's slice.
    neighbors: Vec<ItemId>,
    /// Per-slot index into `edge_stats` (two slots — one per endpoint — share a record).
    edge_ix: Vec<u32>,
    /// Per-item local slot order by descending similarity (ties: ascending id).
    sim_rank: Vec<u32>,
    /// One record per undirected edge, canonical `(min, max)` orientation.
    edge_stats: Vec<SimilarityStats>,
    /// The **delta-fit cache**: every filter-surviving scored pair (ascending canonical
    /// keys), *before* top-k pruning. Pruning is a global property of this set — a
    /// delta that weakens one edge can pull a previously pruned pair back into an
    /// endpoint's top-k — so an exact incremental rebuild must rank over all scored
    /// pairs, not just the stored arena. The weak-edge *filter*, by contrast, is
    /// per-pair, so pairs it dropped stay dropped while their inputs are unchanged and
    /// need no cache.
    scored_keys: Vec<u64>,
    /// Statistics of `scored_keys` (parallel array).
    scored_stats: Vec<SimilarityStats>,
    item_domain: Vec<DomainId>,
    config: GraphConfig,
}

/// Flush threshold floor for the chunked pair-key dedup: below this many pending keys a
/// merge is not worth its copy.
const PAIR_KEY_MIN_CHUNK: usize = 1 << 12;

/// Sorts + dedups `pending` and merges it into the sorted, deduplicated `merged`.
fn merge_pair_chunk(merged: &mut Vec<u64>, pending: &mut Vec<u64>) {
    if pending.is_empty() {
        return;
    }
    pending.sort_unstable();
    pending.dedup();
    let mut out = Vec::with_capacity(merged.len() + pending.len());
    let (mut a, mut b) = (0usize, 0usize);
    while a < merged.len() && b < pending.len() {
        match merged[a].cmp(&pending[b]) {
            std::cmp::Ordering::Less => {
                out.push(merged[a]);
                a += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(pending[b]);
                b += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(merged[a]);
                a += 1;
                b += 1;
            }
        }
    }
    out.extend_from_slice(&merged[a..]);
    out.extend_from_slice(&pending[b..]);
    *merged = out;
    pending.clear();
}

impl SimilarityGraph {
    /// The canonical key of an unordered item pair: `(min << 32) | max`.
    pub fn pair_key(i: ItemId, j: ItemId) -> u64 {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        (u64::from(lo.0) << 32) | u64::from(hi.0)
    }

    /// Decodes a canonical pair key back into its `(lo, hi)` items.
    pub fn pair_of_key(key: u64) -> (ItemId, ItemId) {
        (ItemId((key >> 32) as u32), ItemId(key as u32))
    }

    /// All co-rated unordered item pairs of the matrix as sorted, deduplicated
    /// canonical keys — the candidate set every graph build scores.
    ///
    /// Peak memory is bounded by the *deduplicated* pair count (plus a constant-size
    /// chunk), not by the raw `Σ_u d_u²` pair emissions: users' pair streams are
    /// accumulated into a bounded pending chunk that is sorted, deduplicated and merged
    /// into the running sorted set whenever it would outgrow that set. A single heavy
    /// user's pairs are mutually distinct (profiles hold each item once), so even the
    /// largest one-user burst stays within the bound.
    pub fn co_rated_pair_keys(matrix: &RatingMatrix) -> Vec<u64> {
        let mut merged: Vec<u64> = Vec::new();
        let mut pending: Vec<u64> = Vec::new();
        for u in matrix.users() {
            let profile = matrix.user_profile(u);
            for a in 0..profile.len() {
                for b in (a + 1)..profile.len() {
                    pending.push(Self::pair_key(profile[a].item, profile[b].item));
                }
            }
            if pending.len() >= PAIR_KEY_MIN_CHUNK.max(merged.len()) {
                merge_pair_chunk(&mut merged, &mut pending);
            }
        }
        merge_pair_chunk(&mut merged, &mut pending);
        merged
    }

    /// The items whose pairwise similarity statistics may differ after the profiles of
    /// `affected_users` changed: every item in an affected user's (updated) profile,
    /// sorted and deduplicated.
    ///
    /// This is the exact dependency footprint of [`item_similarity_stats`] under a
    /// rating delta that only *adds or updates* ratings: a pair's statistics read the
    /// two item profiles, the two item averages and the user average of **every rater
    /// of either item** (the adjusted-cosine denominators of Equation 6 run over all
    /// raters, not just co-raters). All three inputs change only through an affected
    /// user's profile, and every item an affected user touches — including the items
    /// they rated before the delta, whose columns gain nothing but whose raters'
    /// averages move — is in that user's updated profile.
    pub fn dirty_items(matrix: &RatingMatrix, affected_users: &[UserId]) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = affected_users
            .iter()
            .flat_map(|&u| matrix.user_profile(u).iter().map(|e| e.item))
            .collect();
        items.sort_unstable();
        items.dedup();
        items
    }

    /// Every co-rated unordered pair of `matrix` with at least one endpoint in
    /// `dirty` — the exact set of pair keys a delta fit must re-score (sorted,
    /// deduplicated canonical keys, like [`SimilarityGraph::co_rated_pair_keys`]).
    ///
    /// Pairs with *no* dirty endpoint keep their statistics bit for bit: both profiles,
    /// both item averages and all their raters' user averages are untouched by the
    /// delta (see [`SimilarityGraph::dirty_items`]). Enumeration walks each dirty
    /// item's raters' profiles, so the cost is proportional to the delta's two-hop
    /// co-rating neighbourhood, not to the trace.
    pub fn affected_pair_keys(matrix: &RatingMatrix, dirty: &[ItemId]) -> Vec<u64> {
        let mut merged: Vec<u64> = Vec::new();
        let mut pending: Vec<u64> = Vec::new();
        for &it in dirty {
            for rater in matrix.item_profile(it) {
                for e in matrix.user_profile(rater.user) {
                    if e.item != it {
                        pending.push(Self::pair_key(it, e.item));
                    }
                }
            }
            if pending.len() >= PAIR_KEY_MIN_CHUNK.max(merged.len()) {
                merge_pair_chunk(&mut merged, &mut pending);
            }
        }
        merge_pair_chunk(&mut merged, &mut pending);
        merged
    }

    /// Rebuilds the graph after a rating delta: the `affected_keys` (sorted canonical
    /// keys, with `fresh_stats[ix]` the **freshly recomputed** statistics of
    /// `affected_keys[ix]` on the updated matrix) replace or extend this graph's
    /// scored-pair cache; every other scored pair keeps its cached statistics. The
    /// merged key/stat sequence then runs through the shared
    /// [`SimilarityGraph::from_scored_pairs`] back half (filter → union top-k pruning →
    /// arena assembly).
    ///
    /// The merge runs over the **pre-pruning** scored-pair cache, not the stored
    /// arena: top-k pruning is a global ranking over all scored pairs, so a delta that
    /// *weakens* an edge can promote a previously pruned, unaffected pair back into an
    /// endpoint's top-k — only the cache still knows that pair's statistics.
    ///
    /// **Recompute, never accumulate:** affected pairs are re-scored from scratch on
    /// the updated matrix — no float deltas are added to cached similarities — so when
    /// `affected_keys` covers every pair whose inputs changed (see
    /// [`SimilarityGraph::affected_pair_keys`]), the result is **bit-identical to a
    /// full [`SimilarityGraph::build`] on the updated matrix**. Pruning and pool
    /// ordering are global properties of the surviving pair set, which is why the
    /// assembly is a linear merge over all pairs (cheap copies) while the similarity
    /// *scoring* — the dominant cost — is confined to the affected keys.
    ///
    /// # Panics
    /// Panics if the key/stat lengths differ or `affected_keys` is not strictly
    /// ascending.
    pub fn apply_updates(
        &self,
        updated: &RatingMatrix,
        affected_keys: &[u64],
        fresh_stats: Vec<SimilarityStats>,
    ) -> SimilarityGraph {
        assert_eq!(
            affected_keys.len(),
            fresh_stats.len(),
            "every affected key needs exactly one fresh statistics record"
        );
        assert!(
            affected_keys.windows(2).all(|w| w[0] < w[1]),
            "affected keys must be strictly ascending"
        );

        let mut keys: Vec<u64> = Vec::with_capacity(self.scored_keys.len() + affected_keys.len());
        let mut stats: Vec<SimilarityStats> = Vec::with_capacity(keys.capacity());
        let (mut cached, mut af) = (0usize, 0usize);
        while cached < self.scored_keys.len() && af < affected_keys.len() {
            match self.scored_keys[cached].cmp(&affected_keys[af]) {
                std::cmp::Ordering::Less => {
                    keys.push(self.scored_keys[cached]);
                    stats.push(self.scored_stats[cached]);
                    cached += 1;
                }
                std::cmp::Ordering::Greater => {
                    keys.push(affected_keys[af]);
                    stats.push(fresh_stats[af]);
                    af += 1;
                }
                std::cmp::Ordering::Equal => {
                    keys.push(affected_keys[af]);
                    stats.push(fresh_stats[af]);
                    cached += 1;
                    af += 1;
                }
            }
        }
        while cached < self.scored_keys.len() {
            keys.push(self.scored_keys[cached]);
            stats.push(self.scored_stats[cached]);
            cached += 1;
        }
        while af < affected_keys.len() {
            keys.push(affected_keys[af]);
            stats.push(fresh_stats[af]);
            af += 1;
        }

        Self::from_scored_pairs(updated, self.config, &keys, stats)
    }

    /// Number of entries in the scored-pair cache (filter-surviving pairs before
    /// pruning) — the memory the delta-fit path pays for exact incremental pruning.
    pub fn n_scored_pairs(&self) -> usize {
        self.scored_keys.len()
    }

    /// Single-threaded delta rebuild: derives the dirty items and affected pair keys
    /// from `affected_users`, re-scores the affected keys on the updated matrix and
    /// merges them through [`SimilarityGraph::apply_updates`]. This is the reference
    /// the engine-parallel delta stage must match bit for bit at any worker count —
    /// and, by the recompute-exactly rule, it equals a full
    /// [`SimilarityGraph::build`] on the updated matrix (property-tested below).
    pub fn apply_updates_serial(
        &self,
        updated: &RatingMatrix,
        affected_users: &[UserId],
    ) -> SimilarityGraph {
        let dirty = Self::dirty_items(updated, affected_users);
        let keys = Self::affected_pair_keys(updated, &dirty);
        let stats: Vec<SimilarityStats> = keys
            .iter()
            .map(|&key| {
                let (lo, hi) = Self::pair_of_key(key);
                item_similarity_stats(updated, lo, hi, self.config.metric)
            })
            .collect();
        self.apply_updates(updated, &keys, stats)
    }

    /// Assembles the CSR arena from every candidate pair key and its similarity
    /// statistics (`stats[ix]` belongs to `keys[ix]`; keys sorted ascending as
    /// [`SimilarityGraph::co_rated_pair_keys`] produces them).
    ///
    /// This is the shared back half of every build path: the weak-edge filter, the
    /// union top-k pruning and the arena assembly. The engine-parallel baseliner scores
    /// the keys partition-parallel and feeds the reassembled in-key-order stats here,
    /// which is what makes it bit-identical to [`SimilarityGraph::build_serial`].
    ///
    /// # Panics
    /// Panics if `keys` and `stats` have different lengths.
    pub fn from_scored_pairs(
        matrix: &RatingMatrix,
        config: GraphConfig,
        keys: &[u64],
        stats: Vec<SimilarityStats>,
    ) -> Self {
        assert_eq!(
            keys.len(),
            stats.len(),
            "every pair key needs exactly one statistics record"
        );
        let n_items = matrix.n_items();

        // --- 2. Weak-edge filter over the scored pairs. ---
        let mut pairs: Vec<(ItemId, ItemId, SimilarityStats)> = keys
            .iter()
            .zip(stats)
            .filter_map(|(&key, stats)| {
                let (lo, hi) = Self::pair_of_key(key);
                // lint: float-eq — exact zero is the "no co-rater" sentinel from the stats.
                if stats.similarity != 0.0 && stats.similarity.abs() >= config.min_similarity {
                    Some((lo, hi, stats))
                } else {
                    None
                }
            })
            .collect();

        // The filter-surviving scored pairs are the delta-fit cache (see the field
        // docs): captured before pruning, in ascending key order.
        let scored_keys: Vec<u64> = pairs
            .iter()
            .map(|&(lo, hi, _)| Self::pair_key(lo, hi))
            .collect();
        let scored_stats: Vec<SimilarityStats> = pairs.iter().map(|&(_, _, s)| s).collect();

        // --- 3. Union top-k pruning: keep a pair ranked top-k by either endpoint. ---
        if let Some(k) = config.top_k {
            let mut ranked: Vec<Vec<(f64, usize)>> = vec![Vec::new(); n_items];
            for (ix, &(lo, hi, ref stats)) in pairs.iter().enumerate() {
                ranked[lo.index()].push((stats.similarity, ix));
                ranked[hi.index()].push((stats.similarity, ix));
            }
            let mut keep = vec![false; pairs.len()];
            for list in &mut ranked {
                list.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.cmp(&b.1))
                });
                for &(_, ix) in list.iter().take(k) {
                    keep[ix] = true;
                }
            }
            let mut kept = Vec::with_capacity(pairs.len());
            for (ix, pair) in pairs.into_iter().enumerate() {
                if keep[ix] {
                    kept.push(pair);
                }
            }
            pairs = kept;
        }

        // --- 4. CSR assembly: degrees → offsets → slot fill → per-item ordering. ---
        let mut degree = vec![0u32; n_items];
        for &(lo, hi, _) in &pairs {
            degree[lo.index()] += 1;
            degree[hi.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n_items + 1);
        offsets.push(0u32);
        for i in 0..n_items {
            offsets.push(offsets[i] + degree[i]);
        }

        let total_slots = offsets[n_items] as usize;
        let mut neighbors = vec![ItemId(0); total_slots];
        let mut edge_ix = vec![0u32; total_slots];
        let mut cursor: Vec<u32> = offsets[..n_items].to_vec();
        let mut edge_stats = Vec::with_capacity(pairs.len());
        for (pair_ix, &(lo, hi, stats)) in pairs.iter().enumerate() {
            edge_stats.push(stats);
            for (from, to) in [(lo, hi), (hi, lo)] {
                let slot = cursor[from.index()] as usize;
                neighbors[slot] = to;
                edge_ix[slot] = pair_ix as u32;
                cursor[from.index()] += 1;
            }
        }

        // Pair keys were processed in ascending (lo, hi) order, but an item appears as
        // both `lo` and `hi`, so its slice is not sorted yet — sort each row by id and
        // derive the descending-similarity slot permutation.
        let mut sim_rank = vec![0u32; total_slots];
        for i in 0..n_items {
            let (start, end) = (offsets[i] as usize, offsets[i + 1] as usize);
            let mut row: Vec<(ItemId, u32)> = neighbors[start..end]
                .iter()
                .copied()
                .zip(edge_ix[start..end].iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(id, _)| id);
            for (slot, &(id, ix)) in row.iter().enumerate() {
                neighbors[start + slot] = id;
                edge_ix[start + slot] = ix;
            }
            let mut order: Vec<u32> = (0..(end - start) as u32).collect();
            order.sort_by(|&a, &b| {
                let sa = edge_stats[edge_ix[start + a as usize] as usize].similarity;
                let sb = edge_stats[edge_ix[start + b as usize] as usize].similarity;
                sb.partial_cmp(&sa)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            sim_rank[start..end].copy_from_slice(&order);
        }

        let item_domain = (0..n_items as u32)
            .map(|i| matrix.item_domain(ItemId(i)))
            .collect();

        SimilarityGraph {
            offsets,
            neighbors,
            edge_ix,
            sim_rank,
            edge_stats,
            scored_keys,
            scored_stats,
            item_domain,
            config,
        }
    }

    /// Builds the graph single-threaded: scores every co-rated pair key in ascending
    /// key order and assembles the arena. This is the reference the engine-parallel
    /// baseliner stage must match bit for bit at any worker count.
    ///
    /// Candidate item pairs are generated through co-rating users, so items with no
    /// common rater never pay a similarity computation, and each unordered pair pays it
    /// exactly once (the historical per-item adjacency computed every pair twice).
    pub fn build_serial(matrix: &RatingMatrix, config: GraphConfig) -> Self {
        let keys = Self::co_rated_pair_keys(matrix);
        let stats: Vec<SimilarityStats> = keys
            .iter()
            .map(|&key| {
                let (lo, hi) = Self::pair_of_key(key);
                item_similarity_stats(matrix, lo, hi, config.metric)
            })
            .collect();
        Self::from_scored_pairs(matrix, config, &keys, stats)
    }

    /// Builds the graph from a rating matrix containing the aggregated domains
    /// (the serial path; see [`SimilarityGraph::build_serial`]).
    pub fn build(matrix: &RatingMatrix, config: GraphConfig) -> Self {
        Self::build_serial(matrix, config)
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Number of items (vertices), rated or not.
    pub fn n_items(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges stored in the arena (each stored once).
    pub fn n_undirected_edges(&self) -> usize {
        self.edge_stats.len()
    }

    /// Total number of adjacency slots (every undirected edge occupies one slot on each
    /// endpoint, so this is `2 * n_undirected_edges`).
    pub fn n_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of an item (number of neighbours).
    pub fn degree(&self, item: ItemId) -> usize {
        let i = item.index();
        if i + 1 >= self.offsets.len() {
            return 0;
        }
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The adjacency view of an item. Out-of-range items have an empty view.
    pub fn neighbors(&self, item: ItemId) -> NeighborView<'_> {
        let i = item.index();
        let (start, end) = if i + 1 < self.offsets.len() {
            (self.offsets[i] as usize, self.offsets[i + 1] as usize)
        } else {
            (0, 0)
        };
        NeighborView {
            ids: &self.neighbors[start..end],
            edge_ix: &self.edge_ix[start..end],
            sim_rank: &self.sim_rank[start..end],
            edge_stats: &self.edge_stats,
        }
    }

    /// The domain of an item.
    pub fn item_domain(&self, item: ItemId) -> DomainId {
        self.item_domain
            .get(item.index())
            .copied()
            .unwrap_or(DomainId::SOURCE)
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.n_items() as u32).map(ItemId)
    }

    /// The edge between two items, accepting the endpoints in either order.
    ///
    /// The lookup binary-searches the lower-degree endpoint's sorted adjacency, so the
    /// cost is `O(log min(d_a, d_b))`; undirected storage makes the result identical for
    /// `(a, b)` and `(b, a)`.
    pub fn edge_between(&self, a: ItemId, b: ItemId) -> Option<EdgeRef<'_>> {
        let (probe, key) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(probe).find(key).map(|e| EdgeRef {
            to: if probe == a { e.to } else { probe },
            stats: e.stats,
        })
    }

    /// Whether the item has at least one edge to an item of a *different* domain.
    pub fn has_cross_domain_edge(&self, item: ItemId) -> bool {
        let d = self.item_domain(item);
        self.neighbors(item)
            .ids()
            .iter()
            .any(|&to| self.item_domain(to) != d)
    }

    /// Number of item pairs `(i, j)` with `i` and `j` in different domains connected by a
    /// direct edge — the "standard" heterogeneous similarity count of Figure 1(b).
    /// Each undirected pair is counted once.
    pub fn n_heterogeneous_pairs(&self) -> usize {
        let mut count = 0usize;
        for i in self.items() {
            let di = self.item_domain(i);
            for &to in self.neighbors(i).ids() {
                if i < to && self.item_domain(to) != di {
                    count += 1;
                }
            }
        }
        count
    }
}

/// On-disk codec for [`GraphConfig`], field order.
impl xmap_store::Codec for GraphConfig {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        self.metric.enc(e);
        self.top_k.enc(e);
        e.put_f64(self.min_similarity);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(GraphConfig {
            metric: xmap_cf::SimilarityMetric::dec(d)?,
            top_k: Option::dec(d)?,
            min_similarity: d.take_f64()?,
        })
    }
}

/// On-disk codec for the whole CSR arena, scored-pair delta cache included — the
/// cache is part of the bit-identity contract (a recovered model must delta-fit
/// exactly like the in-memory one, and pruning decisions rank over the cache).
/// Lives here because the arena fields are private to this module; decode
/// reconstructs the struct verbatim.
impl xmap_store::Codec for SimilarityGraph {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        self.offsets.enc(e);
        self.neighbors.enc(e);
        self.edge_ix.enc(e);
        self.sim_rank.enc(e);
        self.edge_stats.enc(e);
        self.scored_keys.enc(e);
        self.scored_stats.enc(e);
        self.item_domain.enc(e);
        self.config.enc(e);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(SimilarityGraph {
            offsets: Vec::dec(d)?,
            neighbors: Vec::dec(d)?,
            edge_ix: Vec::dec(d)?,
            sim_rank: Vec::dec(d)?,
            edge_stats: Vec::dec(d)?,
            scored_keys: Vec::dec(d)?,
            scored_stats: Vec::dec(d)?,
            item_domain: Vec::dec(d)?,
            config: GraphConfig::dec(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use xmap_cf::RatingMatrixBuilder;

    /// Two domains; user 2 straddles them.
    fn fixture() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        // movies: items 0, 1, 2 ; books: items 3, 4
        b.push_parts(0, 0, 5.0).unwrap();
        b.push_parts(0, 1, 4.0).unwrap();
        b.push_parts(1, 1, 5.0).unwrap();
        b.push_parts(1, 2, 2.0).unwrap();
        b.push_parts(2, 1, 4.0).unwrap(); // straddler rates a movie
        b.push_parts(2, 3, 5.0).unwrap(); // ... and books
        b.push_parts(2, 4, 2.0).unwrap();
        b.push_parts(3, 3, 4.0).unwrap();
        b.push_parts(3, 4, 1.0).unwrap();
        for i in 0..3u32 {
            b.set_item_domain(ItemId(i), DomainId::SOURCE);
        }
        for i in 3..5u32 {
            b.set_item_domain(ItemId(i), DomainId::TARGET);
        }
        b.build().unwrap()
    }

    #[test]
    fn edges_only_between_co_rated_items() {
        let m = fixture();
        let g = SimilarityGraph::build(&m, GraphConfig::default());
        assert_eq!(g.n_items(), 5);
        // items 0 and 2 share no rater
        assert!(g.edge_between(ItemId(0), ItemId(2)).is_none());
        // items 0 and 1 share user 0
        assert!(g.edge_between(ItemId(0), ItemId(1)).is_some());
        // cross-domain edge through the straddler (user 2): item 1 and item 3
        assert!(g.has_cross_domain_edge(ItemId(1)) || g.has_cross_domain_edge(ItemId(3)));
    }

    #[test]
    fn edge_between_is_order_insensitive() {
        let m = fixture();
        let g = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        for i in g.items() {
            for j in g.items() {
                let ab = g.edge_between(i, j).map(|e| (e.to, *e.stats));
                let ba = g.edge_between(j, i).map(|e| (e.to, *e.stats));
                match (ab, ba) {
                    (None, None) => {}
                    (Some((to_ab, s_ab)), Some((to_ba, s_ba))) => {
                        assert_eq!(s_ab, s_ba, "stats must be shared for ({i}, {j})");
                        assert_eq!(to_ab, j);
                        assert_eq!(to_ba, i);
                    }
                    other => panic!("asymmetric lookup for ({i}, {j}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn adjacency_sorted_by_id_and_similarity_views_agree() {
        let m = fixture();
        let g = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        for i in g.items() {
            let view = g.neighbors(i);
            for w in view.ids().windows(2) {
                assert!(w[0] < w[1], "neighbour ids must be strictly ascending");
            }
            let strongest: Vec<f64> = view.by_similarity().map(|e| e.similarity()).collect();
            for w in strongest.windows(2) {
                assert!(w[0] >= w[1], "by_similarity must be descending");
            }
            assert_eq!(strongest.len(), view.len());
        }
    }

    #[test]
    fn top_k_pruning_limits_stored_edges() {
        let mut b = RatingMatrixBuilder::new();
        // star pattern: one user rates everything -> item 0 is connected to all others
        for i in 0..20u32 {
            b.push_parts(0, i, ((i % 5) + 1) as f64).unwrap();
            b.push_parts(1 + i, i, 3.0).unwrap(); // extra raters to vary averages
        }
        let m = b.build().unwrap();
        let pruned = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: Some(5),
                ..Default::default()
            },
        );
        let unpruned = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        assert!(pruned.n_undirected_edges() <= unpruned.n_undirected_edges());
        // every kept edge must be in the top-5 of at least one endpoint
        for i in pruned.items() {
            for e in pruned.neighbors(i).iter() {
                if i < e.to {
                    let rank_i = pruned
                        .neighbors(i)
                        .by_similarity()
                        .position(|x| x.to == e.to)
                        .unwrap();
                    let rank_j = pruned
                        .neighbors(e.to)
                        .by_similarity()
                        .position(|x| x.to == i)
                        .unwrap();
                    assert!(
                        rank_i < 5 || rank_j < 5,
                        "edge ({i}, {}) is outside both endpoints' top-5",
                        e.to
                    );
                }
            }
        }
    }

    #[test]
    fn min_similarity_filters_weak_edges() {
        let m = fixture();
        let strict = SimilarityGraph::build(
            &m,
            GraphConfig {
                min_similarity: 0.99,
                top_k: None,
                ..Default::default()
            },
        );
        let loose = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                min_similarity: 0.0,
                ..Default::default()
            },
        );
        assert!(strict.n_undirected_edges() <= loose.n_undirected_edges());
        for i in strict.items() {
            for e in strict.neighbors(i).iter() {
                assert!(e.similarity().abs() >= 0.99);
            }
        }
    }

    #[test]
    fn heterogeneous_pair_count_is_symmetric_and_small_here() {
        let m = fixture();
        let g = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        // only the straddler (user 2) creates cross-domain pairs: (1,3), (1,4)
        let n = g.n_heterogeneous_pairs();
        assert!(
            (1..=3).contains(&n),
            "unexpected heterogeneous pair count {n}"
        );
    }

    #[test]
    fn out_of_range_item_has_no_edges_and_default_domain() {
        let m = fixture();
        let g = SimilarityGraph::build(&m, GraphConfig::default());
        assert!(g.neighbors(ItemId(99)).is_empty());
        assert_eq!(g.degree(ItemId(99)), 0);
        assert_eq!(g.item_domain(ItemId(99)), DomainId::SOURCE);
        assert!(g.edge_between(ItemId(99), ItemId(0)).is_none());
    }

    #[test]
    fn edge_accessors_expose_stats() {
        let m = fixture();
        let g = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        let view = g.neighbors(ItemId(0));
        let e = view.iter().next().unwrap();
        assert!(e.similarity().abs() <= 1.0);
        assert!(e.normalized_significance() >= 0.0 && e.normalized_significance() <= 1.0);
    }

    #[test]
    fn pair_key_collection_flushes_chunks_on_heavy_traces() {
        // 40 users × 40-item profiles emit 31,200 raw pairs — several times the flush
        // threshold — so this exercises the chunk-sort-merge path the proptest corpus
        // is too small to reach. The result must still be the exact naive key set.
        let mut b = RatingMatrixBuilder::new();
        for u in 0..40u32 {
            for x in 0..40u32 {
                let i = (u * 7 + x * 11) % 120;
                b.push_parts(u, i, ((x % 5) + 1) as f64).unwrap();
            }
        }
        let m = b.build().unwrap();
        let raw: usize = m
            .users()
            .map(|u| {
                let d = m.user_profile(u).len();
                d * (d - 1) / 2
            })
            .sum();
        assert!(
            raw > 4 * super::PAIR_KEY_MIN_CHUNK,
            "trace too small to exercise the flush path ({raw} raw pairs)"
        );
        let mut naive: Vec<u64> = Vec::new();
        for u in m.users() {
            let profile = m.user_profile(u);
            for a in 0..profile.len() {
                for b in (a + 1)..profile.len() {
                    naive.push(SimilarityGraph::pair_key(profile[a].item, profile[b].item));
                }
            }
        }
        naive.sort_unstable();
        naive.dedup();
        assert!(naive.len() < raw, "dedup must actually collapse duplicates");
        assert_eq!(SimilarityGraph::co_rated_pair_keys(&m), naive);
    }

    #[test]
    fn dirty_items_are_the_affected_users_profiles() {
        let m = fixture();
        let dirty = SimilarityGraph::dirty_items(&m, &[UserId(2)]);
        assert_eq!(dirty, vec![ItemId(1), ItemId(3), ItemId(4)]);
        assert!(SimilarityGraph::dirty_items(&m, &[]).is_empty());
        // unknown users have empty profiles
        assert!(SimilarityGraph::dirty_items(&m, &[UserId(99)]).is_empty());
    }

    #[test]
    fn affected_pair_keys_cover_every_pair_touching_a_dirty_item() {
        let m = fixture();
        let dirty = vec![ItemId(1)];
        let keys = SimilarityGraph::affected_pair_keys(&m, &dirty);
        let all = SimilarityGraph::co_rated_pair_keys(&m);
        // exactly the co-rated pairs with item 1 as an endpoint
        let expect: Vec<u64> = all
            .iter()
            .copied()
            .filter(|&k| {
                let (lo, hi) = SimilarityGraph::pair_of_key(k);
                lo == ItemId(1) || hi == ItemId(1)
            })
            .collect();
        assert_eq!(keys, expect);
        assert!(!keys.is_empty());
    }

    #[test]
    fn apply_updates_with_no_affected_keys_reproduces_the_graph() {
        let m = fixture();
        for top_k in [None, Some(2)] {
            let config = GraphConfig {
                top_k,
                ..Default::default()
            };
            let g = SimilarityGraph::build(&m, config);
            assert_eq!(g.apply_updates(&m, &[], Vec::new()), g);
            assert_eq!(g.apply_updates_serial(&m, &[]), g);
        }
    }

    #[test]
    fn apply_updates_serial_equals_full_build_after_a_delta() {
        let m = fixture();
        let config = GraphConfig {
            top_k: Some(3),
            ..Default::default()
        };
        let g = SimilarityGraph::build(&m, config);
        // user 0 updates a rating and rates a brand-new item; user 4 is brand new
        let delta = vec![
            xmap_cf::Rating::at(UserId(0), ItemId(1), 1.0, xmap_cf::Timestep(7)),
            xmap_cf::Rating::at(UserId(0), ItemId(5), 5.0, xmap_cf::Timestep(8)),
            xmap_cf::Rating::at(UserId(4), ItemId(0), 2.0, xmap_cf::Timestep(1)),
            xmap_cf::Rating::at(UserId(4), ItemId(5), 4.0, xmap_cf::Timestep(2)),
        ];
        let updated = m
            .apply_delta(&delta, &[(ItemId(5), DomainId::TARGET)])
            .unwrap();
        let incremental = g.apply_updates_serial(&updated, &[UserId(0), UserId(4)]);
        let full = SimilarityGraph::build(&updated, config);
        assert_eq!(incremental, full);
        assert!(incremental
            .edge_between(ItemId(0), ItemId(5))
            .is_some_and(|e| e.stats.co_raters >= 2));
    }

    #[test]
    fn weakened_edges_resurrect_previously_pruned_pairs_exactly() {
        // Regression: top-k pruning ranks over *all* scored pairs, so a delta that
        // weakens an edge can promote a previously pruned, unaffected pair back into
        // an endpoint's top-k. The merge must therefore run over the pre-pruning
        // scored-pair cache — merging over the stored arena loses those pairs and
        // diverges from the full rebuild.
        let mut b = RatingMatrixBuilder::new();
        for u in 0..16u32 {
            for x in 0..8u32 {
                let i = (u * 3 + x * 7) % 12;
                b.push_parts(u, i, ((u * 2 + x * 3) % 5 + 1) as f64)
                    .unwrap();
            }
        }
        let m = b.build().unwrap();
        let config = GraphConfig {
            top_k: Some(1),
            ..Default::default()
        };
        let g = SimilarityGraph::build(&m, config);
        assert!(
            g.n_scored_pairs() > g.n_undirected_edges(),
            "pruning must actually drop pairs for this regression to bite"
        );
        // user 0 flips every one of their ratings to the opposite end of the scale,
        // weakening (and sign-flipping) many similarities at once
        let delta: Vec<xmap_cf::Rating> = m
            .user_profile(UserId(0))
            .iter()
            .enumerate()
            .map(|(ix, e)| {
                xmap_cf::Rating::at(
                    UserId(0),
                    e.item,
                    6.0 - e.value,
                    xmap_cf::Timestep(100 + ix as u32),
                )
            })
            .collect();
        let updated = m.apply_delta(&delta, &[]).unwrap();
        let incremental = g.apply_updates_serial(&updated, &[UserId(0)]);
        let full = SimilarityGraph::build(&updated, config);
        assert_eq!(incremental, full);
        assert_ne!(g, full, "the delta must actually move the arena");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn apply_updates_rejects_unsorted_keys() {
        let m = fixture();
        let g = SimilarityGraph::build(&m, GraphConfig::default());
        let keys = vec![
            SimilarityGraph::pair_key(ItemId(1), ItemId(0)),
            SimilarityGraph::pair_key(ItemId(0), ItemId(1)),
        ];
        let stats = vec![SimilarityStats::NONE; 2];
        let _ = g.apply_updates(&m, &keys, stats);
    }

    /// Reference adjacency built the naive way: all unordered co-rated pairs into a
    /// `HashMap`, no pruning. The CSR arena must agree exactly when pruning is off.
    fn naive_reference(
        m: &RatingMatrix,
        config: GraphConfig,
    ) -> HashMap<(ItemId, ItemId), SimilarityStats> {
        let mut pairs = HashMap::new();
        for u in m.users() {
            let profile = m.user_profile(u);
            for a in 0..profile.len() {
                for b in (a + 1)..profile.len() {
                    let (i, j) = (profile[a].item, profile[b].item);
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    pairs
                        .entry((lo, hi))
                        .or_insert_with(|| item_similarity_stats(m, lo, hi, config.metric));
                }
            }
        }
        pairs.retain(|_, s| s.similarity != 0.0 && s.similarity.abs() >= config.min_similarity);
        pairs
    }

    fn random_matrix(ratings: &[(u32, u32, u32)], n_domains: u16) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        let mut max_item = 0;
        for &(u, i, v) in ratings {
            b.push_parts(u, i, v as f64).unwrap();
            max_item = max_item.max(i);
        }
        for i in 0..=max_item {
            b.set_item_domain(ItemId(i), DomainId((i % u32::from(n_domains)) as u16));
        }
        b.build().unwrap()
    }

    proptest! {
        /// CSR structural invariants on random graphs: offsets monotone, neighbour ids
        /// sorted and deduplicated, every slot's edge record within bounds, and the
        /// similarity permutation is a permutation.
        #[test]
        fn csr_invariants(
            ratings in proptest::collection::vec((0u32..12, 0u32..16, 1u32..=5), 1..200),
            top_k in 1usize..8,
        ) {
            let m = random_matrix(&ratings, 2);
            for top_k in [None, Some(top_k)] {
                let g = SimilarityGraph::build(&m, GraphConfig { top_k, ..Default::default() });
                prop_assert_eq!(g.offsets.len(), g.n_items() + 1);
                for w in g.offsets.windows(2) {
                    prop_assert!(w[0] <= w[1], "offsets must be monotone");
                }
                prop_assert_eq!(*g.offsets.last().unwrap() as usize, g.neighbors.len());
                prop_assert_eq!(g.neighbors.len(), g.edge_ix.len());
                prop_assert_eq!(g.neighbors.len(), g.sim_rank.len());
                prop_assert_eq!(g.neighbors.len(), 2 * g.n_undirected_edges());
                for i in g.items() {
                    let view = g.neighbors(i);
                    for w in view.ids().windows(2) {
                        prop_assert!(w[0] < w[1], "ids must be sorted and deduped");
                    }
                    let mut slots: Vec<u32> = view.sim_rank.to_vec();
                    slots.sort_unstable();
                    let expect: Vec<u32> = (0..view.len() as u32).collect();
                    prop_assert_eq!(slots, expect, "sim_rank must be a permutation");
                    for e in view.iter() {
                        prop_assert!(e.to != i, "no self-loops");
                    }
                }
            }
        }

        /// With pruning off, the arena stores exactly the naive reference's pairs, and
        /// the symmetric lookup agrees with the reference in both argument orders.
        #[test]
        fn lookup_agrees_with_naive_reference(
            ratings in proptest::collection::vec((0u32..10, 0u32..14, 1u32..=5), 1..150),
        ) {
            let m = random_matrix(&ratings, 2);
            let config = GraphConfig { top_k: None, ..Default::default() };
            let g = SimilarityGraph::build(&m, config);
            let reference = naive_reference(&m, config);
            prop_assert_eq!(g.n_undirected_edges(), reference.len());
            for (&(lo, hi), stats) in &reference {
                let via_lo = g.edge_between(lo, hi);
                let via_hi = g.edge_between(hi, lo);
                prop_assert!(via_lo.is_some() && via_hi.is_some());
                prop_assert_eq!(*via_lo.unwrap().stats, *stats);
                prop_assert_eq!(*via_hi.unwrap().stats, *stats);
            }
            // and nothing beyond the reference
            for i in g.items() {
                for e in g.neighbors(i).iter() {
                    let key = if i < e.to { (i, e.to) } else { (e.to, i) };
                    prop_assert!(reference.contains_key(&key), "extra edge {key:?}");
                }
            }
        }

        /// The chunk-sort-merge pair-key collection produces exactly the naive
        /// collect-everything-then-dedup key set (the memory fix must not change a key),
        /// and decoding round-trips.
        #[test]
        fn bounded_pair_key_collection_matches_naive_dedup(
            ratings in proptest::collection::vec((0u32..12, 0u32..16, 1u32..=5), 1..250),
        ) {
            let m = random_matrix(&ratings, 2);
            let mut naive: Vec<u64> = Vec::new();
            for u in m.users() {
                let profile = m.user_profile(u);
                for a in 0..profile.len() {
                    for b in (a + 1)..profile.len() {
                        naive.push(SimilarityGraph::pair_key(profile[a].item, profile[b].item));
                    }
                }
            }
            naive.sort_unstable();
            naive.dedup();
            let bounded = SimilarityGraph::co_rated_pair_keys(&m);
            prop_assert_eq!(&bounded, &naive);
            for &key in &bounded {
                let (lo, hi) = SimilarityGraph::pair_of_key(key);
                prop_assert!(lo < hi, "canonical keys must be (min, max)");
                prop_assert_eq!(SimilarityGraph::pair_key(hi, lo), key);
            }
        }

        /// The delta-fit contract: `apply_updates_serial` on the updated matrix is
        /// bit-identical to a full `build` of the updated matrix, with and without
        /// pruning — i.e. the affected-key set derived from the delta users is a
        /// sufficient recompute set, and no cached statistic that should have moved
        /// survives the merge.
        #[test]
        fn apply_updates_serial_is_bit_identical_to_full_build(
            base in proptest::collection::vec((0u32..10, 0u32..14, 1u32..=5), 1..150),
            delta in proptest::collection::vec((0u32..14, 0u32..18, 1u32..=5), 1..30),
            k in 1usize..6,
        ) {
            let m = random_matrix(&base, 2);
            let delta_ratings: Vec<xmap_cf::Rating> = delta
                .iter()
                .enumerate()
                .map(|(ix, &(u, i, v))| {
                    xmap_cf::Rating::at(
                        UserId(u),
                        ItemId(i),
                        v as f64,
                        xmap_cf::Timestep(10 + ix as u32),
                    )
                })
                .collect();
            let new_domains: Vec<(ItemId, DomainId)> = delta_ratings
                .iter()
                .map(|r| r.item)
                .filter(|i| i.index() >= m.n_items())
                .map(|i| (i, DomainId((i.0 % 2) as u16)))
                .collect();
            let updated = m.apply_delta(&delta_ratings, &new_domains).unwrap();
            let mut affected: Vec<UserId> = delta_ratings.iter().map(|r| r.user).collect();
            affected.sort_unstable();
            affected.dedup();
            for top_k in [None, Some(k)] {
                let config = GraphConfig { top_k, ..Default::default() };
                let g = SimilarityGraph::build(&m, config);
                let incremental = g.apply_updates_serial(&updated, &affected);
                let full = SimilarityGraph::build(&updated, config);
                prop_assert_eq!(incremental, full, "delta rebuild diverged (top_k {:?})", top_k);
            }
        }

        /// Union pruning keeps an edge iff it ranks top-k on at least one endpoint.
        #[test]
        fn union_pruning_semantics(
            ratings in proptest::collection::vec((0u32..10, 0u32..12, 1u32..=5), 1..150),
            k in 1usize..6,
        ) {
            let m = random_matrix(&ratings, 2);
            let pruned = SimilarityGraph::build(&m, GraphConfig { top_k: Some(k), ..Default::default() });
            let full = SimilarityGraph::build(&m, GraphConfig { top_k: None, ..Default::default() });
            prop_assert!(pruned.n_undirected_edges() <= full.n_undirected_edges());
            for i in pruned.items() {
                for e in pruned.neighbors(i).iter() {
                    prop_assert!(
                        full.edge_between(i, e.to).is_some(),
                        "pruning must not invent edges"
                    );
                }
            }
        }
    }
}
