//! # xmap-graph — similarity graph, layer-based pruning and meta-paths
//!
//! X-Sim (§3 of the paper) is defined over a *baseline similarity graph* `G_ac`: vertices
//! are items from both domains, and an edge `(i, j)` weighted by the adjusted-cosine
//! similarity `s_ac(i, j)` exists whenever the two items share at least one rater. On top
//! of that graph the paper defines:
//!
//! * **bridge items** — items connected (through common users) to an item of the *other*
//!   domain (§3.2);
//! * the **layer partition** of each domain into BB / NB / NN layers based on bridge
//!   connectivity (Figure 2);
//! * **meta-paths** — walks that contain at most one item per layer (Definition 3),
//!   pruned by keeping only the top-k edges between adjacent layers.
//!
//! This crate builds the graph, computes the layer partition, and enumerates pruned
//! meta-paths. The X-Sim aggregation itself (path similarity, path certainty, the final
//! weighted mean) lives in `xmap-core`, which consumes the [`MetaPath`]s produced here.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bridge;
pub mod graph;
pub mod layers;
pub mod metapath;

pub use bridge::BridgeIndex;
pub use graph::{EdgeRef, GraphConfig, NeighborView, SimilarityGraph};
pub use layers::{Layer, LayerAssignment, LayerPartition};
pub use metapath::{enumerate_cross_domain_paths, enumerate_meta_paths, MetaPath, MetaPathConfig};
