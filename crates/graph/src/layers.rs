//! Layer-based pruning (§3.2, Figure 2 of the paper).
//!
//! The items of each domain are partitioned into three layers:
//!
//! * **BB-layer** — bridge items of the domain (they connect to bridge items of the other
//!   domain);
//! * **NB-layer** — non-bridge items that are connected (within their own domain) to at
//!   least one bridge item;
//! * **NN-layer** — non-bridge items with no connection to a bridge item.
//!
//! Meta-paths (Definition 3) contain at most one item per layer and only cross between
//! adjacent layers, which is what turns the `O(m²)` all-pairs meta-path computation into
//! `O(km)`.

use crate::bridge::BridgeIndex;
use crate::graph::SimilarityGraph;
use serde::{Deserialize, Serialize};
use xmap_cf::{DomainId, ItemId};

/// The three layers of the partition within a domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Bridge items connected to bridge items of another domain.
    BridgeBridge,
    /// Non-bridge items connected to bridge items of the same domain.
    NonBridgeBridge,
    /// Non-bridge items not connected to any bridge item.
    NonBridgeNonBridge,
}

impl Layer {
    /// Short label used in reports ("BB", "NB", "NN").
    pub fn label(&self) -> &'static str {
        match self {
            Layer::BridgeBridge => "BB",
            Layer::NonBridgeBridge => "NB",
            Layer::NonBridgeNonBridge => "NN",
        }
    }
}

/// The layer and domain of one item.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerAssignment {
    /// Domain the item belongs to.
    pub domain: DomainId,
    /// Layer of the item within its domain.
    pub layer: Layer,
}

/// The full layer partition of a similarity graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerPartition {
    assignments: Vec<LayerAssignment>,
}

impl LayerPartition {
    /// Computes the partition from the graph and its bridge index.
    pub fn compute(graph: &SimilarityGraph, bridges: &BridgeIndex) -> Self {
        let mut assignments = Vec::with_capacity(graph.n_items());
        for i in graph.items() {
            let domain = graph.item_domain(i);
            let layer = if bridges.is_bridge(i) {
                Layer::BridgeBridge
            } else {
                let touches_bridge = graph
                    .neighbors(i)
                    .ids()
                    .iter()
                    .any(|&to| bridges.is_bridge(to) && graph.item_domain(to) == domain);
                if touches_bridge {
                    Layer::NonBridgeBridge
                } else {
                    Layer::NonBridgeNonBridge
                }
            };
            assignments.push(LayerAssignment { domain, layer });
        }
        LayerPartition { assignments }
    }

    /// Convenience: builds the bridge index and the partition in one call.
    pub fn from_graph(graph: &SimilarityGraph) -> (BridgeIndex, Self) {
        let bridges = BridgeIndex::from_graph(graph);
        let partition = Self::compute(graph, &bridges);
        (bridges, partition)
    }

    /// The assignment of an item. Unknown items default to `(SOURCE, NN)`.
    pub fn assignment(&self, item: ItemId) -> LayerAssignment {
        self.assignments
            .get(item.index())
            .copied()
            .unwrap_or(LayerAssignment {
                domain: DomainId::SOURCE,
                layer: Layer::NonBridgeNonBridge,
            })
    }

    /// The layer of an item.
    pub fn layer(&self, item: ItemId) -> Layer {
        self.assignment(item).layer
    }

    /// The domain of an item as recorded by the partition.
    pub fn domain(&self, item: ItemId) -> DomainId {
        self.assignment(item).domain
    }

    /// Number of items covered by the partition.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// All items assigned to a given `(domain, layer)` cell.
    pub fn items_in(&self, domain: DomainId, layer: Layer) -> Vec<ItemId> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                if a.domain == domain && a.layer == layer {
                    Some(ItemId(i as u32))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Item counts per `(domain, layer)` cell, as `(domain, layer, count)` rows — handy
    /// for experiment reports and sanity checks.
    pub fn cell_counts(&self) -> Vec<(DomainId, Layer, usize)> {
        let mut domains: Vec<DomainId> = self.assignments.iter().map(|a| a.domain).collect();
        domains.sort_unstable();
        domains.dedup();
        let mut rows = Vec::new();
        for d in domains {
            for layer in [
                Layer::BridgeBridge,
                Layer::NonBridgeBridge,
                Layer::NonBridgeNonBridge,
            ] {
                let count = self
                    .assignments
                    .iter()
                    .filter(|a| a.domain == d && a.layer == layer)
                    .count();
                rows.push((d, layer, count));
            }
        }
        rows
    }

    /// The rank of an item's layer along the canonical meta-path direction from
    /// `source_domain` towards the other domain:
    ///
    /// `NN_src = 0, NB_src = 1, BB_src = 2, BB_other = 3, NB_other = 4, NN_other = 5`.
    ///
    /// Meta-paths move along strictly increasing ranks (one item per layer, adjacent
    /// layers only), which is exactly the pruned path structure of Figure 2.
    pub fn path_rank(&self, item: ItemId, source_domain: DomainId) -> u8 {
        let a = self.assignment(item);
        let base = if a.domain == source_domain { 0 } else { 3 };
        let within = match a.layer {
            Layer::NonBridgeNonBridge => {
                if a.domain == source_domain {
                    0
                } else {
                    2
                }
            }
            Layer::NonBridgeBridge => 1,
            Layer::BridgeBridge => {
                if a.domain == source_domain {
                    2
                } else {
                    0
                }
            }
        };
        base + within
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use xmap_cf::RatingMatrixBuilder;

    /// Builds a graph with a clear BB / NB / NN structure in the SOURCE domain:
    /// * item 2 (movie) co-rated with item 3 (book)  -> both BB
    /// * item 1 (movie) co-rated with item 2 (movie) -> NB
    /// * item 0 (movie) co-rated with item 1 only    -> NN
    /// * item 4 (book) co-rated with item 3          -> NB in TARGET
    fn chain_fixture() -> SimilarityGraph {
        let mut b = RatingMatrixBuilder::new();
        b.push_parts(0, 0, 5.0).unwrap();
        b.push_parts(0, 1, 4.0).unwrap(); // connects 0 - 1
        b.push_parts(1, 1, 5.0).unwrap();
        b.push_parts(1, 2, 4.0).unwrap(); // connects 1 - 2
        b.push_parts(2, 2, 5.0).unwrap();
        b.push_parts(2, 3, 4.0).unwrap(); // straddler connects 2 - 3 (cross-domain)
        b.push_parts(3, 3, 5.0).unwrap();
        b.push_parts(3, 4, 4.0).unwrap(); // connects 3 - 4
        for i in 0..3u32 {
            b.set_item_domain(ItemId(i), DomainId::SOURCE);
        }
        for i in 3..5u32 {
            b.set_item_domain(ItemId(i), DomainId::TARGET);
        }
        let m = b.build().unwrap();
        SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        )
    }

    #[test]
    fn chain_is_partitioned_as_expected() {
        let g = chain_fixture();
        let (bridges, partition) = LayerPartition::from_graph(&g);
        assert!(bridges.is_bridge(ItemId(2)));
        assert!(bridges.is_bridge(ItemId(3)));
        assert_eq!(partition.layer(ItemId(2)), Layer::BridgeBridge);
        assert_eq!(partition.layer(ItemId(3)), Layer::BridgeBridge);
        assert_eq!(partition.layer(ItemId(1)), Layer::NonBridgeBridge);
        assert_eq!(partition.layer(ItemId(4)), Layer::NonBridgeBridge);
        assert_eq!(partition.layer(ItemId(0)), Layer::NonBridgeNonBridge);
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let g = chain_fixture();
        let (_, partition) = LayerPartition::from_graph(&g);
        assert_eq!(partition.len(), g.n_items());
        // every item appears in exactly one (domain, layer) cell
        let total: usize = partition.cell_counts().iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, g.n_items());
        for d in [DomainId::SOURCE, DomainId::TARGET] {
            for layer in [
                Layer::BridgeBridge,
                Layer::NonBridgeBridge,
                Layer::NonBridgeNonBridge,
            ] {
                for item in partition.items_in(d, layer) {
                    assert_eq!(partition.layer(item), layer);
                    assert_eq!(partition.domain(item), d);
                }
            }
        }
    }

    #[test]
    fn path_ranks_increase_along_the_chain() {
        let g = chain_fixture();
        let (_, partition) = LayerPartition::from_graph(&g);
        let src = DomainId::SOURCE;
        assert_eq!(partition.path_rank(ItemId(0), src), 0); // NN source
        assert_eq!(partition.path_rank(ItemId(1), src), 1); // NB source
        assert_eq!(partition.path_rank(ItemId(2), src), 2); // BB source
        assert_eq!(partition.path_rank(ItemId(3), src), 3); // BB target
        assert_eq!(partition.path_rank(ItemId(4), src), 4); // NB target
                                                            // viewed from the other direction the ranks mirror
        let tgt = DomainId::TARGET;
        assert_eq!(partition.path_rank(ItemId(3), tgt), 2);
        assert_eq!(partition.path_rank(ItemId(2), tgt), 3);
        assert_eq!(partition.path_rank(ItemId(0), tgt), 5);
    }

    #[test]
    fn unknown_item_defaults_to_source_nn() {
        let g = chain_fixture();
        let (_, partition) = LayerPartition::from_graph(&g);
        let a = partition.assignment(ItemId(99));
        assert_eq!(a.layer, Layer::NonBridgeNonBridge);
        assert_eq!(a.domain, DomainId::SOURCE);
        assert!(!partition.is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Layer::BridgeBridge.label(), "BB");
        assert_eq!(Layer::NonBridgeBridge.label(), "NB");
        assert_eq!(Layer::NonBridgeNonBridge.label(), "NN");
    }
}
