//! Meta-path enumeration with layer-based pruning (Definition 3, §3.2 and §5.2).
//!
//! A meta-path between two items consists of at most one item from each of the six
//! layers, moving across *adjacent* layers only:
//!
//! ```text
//! NN_src ↔ NB_src ↔ BB_src ↔ BB_tgt ↔ NB_tgt ↔ NN_tgt
//! ```
//!
//! Enumeration is a depth-first walk from the start item in which each hop (a) follows an
//! edge of the baseline similarity graph, (b) moves to the *next* layer rank
//! ([`crate::LayerPartition::path_rank`]), and (c) is restricted to the `per_layer_top_k`
//! strongest such edges — the "top-k items from every neighbouring layer" pruning that
//! the extender applies (§5.2).

use crate::graph::SimilarityGraph;
use crate::layers::LayerPartition;
use serde::{Deserialize, Serialize};
use xmap_cf::{DomainId, ItemId};

/// Configuration of meta-path enumeration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MetaPathConfig {
    /// Per-hop fan-out: only the `per_layer_top_k` strongest edges into the next layer
    /// are followed.
    pub per_layer_top_k: usize,
    /// Upper bound on the number of paths collected per starting item (a safety valve for
    /// pathological graphs; the layer structure already bounds path length at 6).
    pub max_paths: usize,
}

impl Default for MetaPathConfig {
    fn default() -> Self {
        MetaPathConfig {
            per_layer_top_k: 10,
            max_paths: 10_000,
        }
    }
}

/// A meta-path: the ordered sequence of items visited, starting at the source item.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaPath {
    /// Visited items in order; always at least two items (one hop).
    pub items: Vec<ItemId>,
}

impl MetaPath {
    /// The first item of the path.
    pub fn source(&self) -> ItemId {
        self.items[0]
    }

    /// The last item of the path.
    pub fn destination(&self) -> ItemId {
        *self.items.last().expect("meta-paths are never empty") // lint: panic — reviewed invariant
    }

    /// Number of hops (edges) in the path.
    pub fn n_hops(&self) -> usize {
        self.items.len().saturating_sub(1)
    }

    /// Iterator over consecutive item pairs (the edges of the path).
    pub fn hops(&self) -> impl Iterator<Item = (ItemId, ItemId)> + '_ {
        self.items.windows(2).map(|w| (w[0], w[1]))
    }
}

/// Enumerates pruned meta-paths from `start` to items satisfying `accept`.
///
/// `source_domain` orients the layer ranks: paths always move *away* from the source
/// domain's NN layer towards the other domain's NN layer. Paths are reported as soon as
/// an accepted item is reached (and the walk continues deeper, so both a 2-hop and a
/// 3-hop path to different accepted items can be reported).
pub fn enumerate_meta_paths(
    graph: &SimilarityGraph,
    partition: &LayerPartition,
    start: ItemId,
    source_domain: DomainId,
    config: MetaPathConfig,
    mut accept: impl FnMut(ItemId) -> bool,
) -> Vec<MetaPath> {
    let mut paths = Vec::new();
    let mut current = vec![start];
    dfs(
        graph,
        partition,
        source_domain,
        config,
        &mut current,
        &mut paths,
        &mut accept,
    );
    paths
}

/// Convenience wrapper: all pruned meta-paths from `start` (an item of `source_domain`)
/// to any item of the *other* domain. This is the enumeration the extender's
/// cross-domain step needs: for every source item, the reachable target items together
/// with the paths that reach them.
pub fn enumerate_cross_domain_paths(
    graph: &SimilarityGraph,
    partition: &LayerPartition,
    start: ItemId,
    source_domain: DomainId,
    config: MetaPathConfig,
) -> Vec<MetaPath> {
    enumerate_meta_paths(graph, partition, start, source_domain, config, |item| {
        partition.domain(item) != source_domain
    })
}

fn dfs(
    graph: &SimilarityGraph,
    partition: &LayerPartition,
    source_domain: DomainId,
    config: MetaPathConfig,
    current: &mut Vec<ItemId>,
    paths: &mut Vec<MetaPath>,
    accept: &mut impl FnMut(ItemId) -> bool,
) {
    if paths.len() >= config.max_paths {
        return;
    }
    let here = *current.last().expect("path is never empty"); // lint: panic — reviewed invariant
    let here_rank = partition.path_rank(here, source_domain);
    if here_rank >= 5 {
        return; // the far NN layer is terminal
    }

    // Candidate hops: edges into the next layer rank, strongest first (the CSR arena's
    // per-item similarity ranking), limited to the per-layer top-k.
    let mut taken = 0usize;
    for edge in graph.neighbors(here).by_similarity() {
        if taken >= config.per_layer_top_k || paths.len() >= config.max_paths {
            break;
        }
        let next = edge.to;
        if current.contains(&next) {
            continue;
        }
        if partition.path_rank(next, source_domain) != here_rank + 1 {
            continue;
        }
        taken += 1;
        current.push(next);
        if accept(next) {
            paths.push(MetaPath {
                items: current.clone(),
            });
        }
        dfs(
            graph,
            partition,
            source_domain,
            config,
            current,
            paths,
            accept,
        );
        current.pop();
    }
}

/// On-disk codec for [`MetaPathConfig`], field order. Lives in this crate because
/// both the type and the `Codec` trait are foreign to `xmap-core`.
impl xmap_store::Codec for MetaPathConfig {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_usize(self.per_layer_top_k);
        e.put_usize(self.max_paths);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(MetaPathConfig {
            per_layer_top_k: d.take_usize()?,
            max_paths: d.take_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use crate::layers::LayerPartition;
    use proptest::prelude::*;
    use xmap_cf::RatingMatrixBuilder;

    /// The chain 0(NN_S) - 1(NB_S) - 2(BB_S) - 3(BB_T) - 4(NB_T) - 5(NN_T).
    fn chain() -> (SimilarityGraph, LayerPartition) {
        let mut b = RatingMatrixBuilder::new();
        b.push_parts(0, 0, 5.0).unwrap();
        b.push_parts(0, 1, 4.0).unwrap();
        b.push_parts(1, 1, 5.0).unwrap();
        b.push_parts(1, 2, 4.0).unwrap();
        b.push_parts(2, 2, 5.0).unwrap();
        b.push_parts(2, 3, 4.0).unwrap();
        b.push_parts(3, 3, 5.0).unwrap();
        b.push_parts(3, 4, 4.0).unwrap();
        b.push_parts(4, 4, 5.0).unwrap();
        b.push_parts(4, 5, 4.0).unwrap();
        for i in 0..3u32 {
            b.set_item_domain(ItemId(i), xmap_cf::DomainId::SOURCE);
        }
        for i in 3..6u32 {
            b.set_item_domain(ItemId(i), xmap_cf::DomainId::TARGET);
        }
        let m = b.build().unwrap();
        let g = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        let (_, p) = LayerPartition::from_graph(&g);
        (g, p)
    }

    #[test]
    fn full_chain_is_enumerated_from_the_nn_layer() {
        let (g, p) = chain();
        let paths = enumerate_cross_domain_paths(
            &g,
            &p,
            ItemId(0),
            xmap_cf::DomainId::SOURCE,
            MetaPathConfig::default(),
        );
        assert!(!paths.is_empty());
        // the longest path reaches the far NN item 5 through every layer once
        let longest = paths.iter().max_by_key(|p| p.n_hops()).unwrap();
        assert_eq!(
            longest.items,
            vec![
                ItemId(0),
                ItemId(1),
                ItemId(2),
                ItemId(3),
                ItemId(4),
                ItemId(5)
            ]
        );
        assert_eq!(longest.n_hops(), 5);
        // every reported path ends in the target domain
        for path in &paths {
            assert_eq!(p.domain(path.destination()), xmap_cf::DomainId::TARGET);
            assert_eq!(path.source(), ItemId(0));
        }
    }

    #[test]
    fn paths_visit_each_layer_at_most_once_with_increasing_rank() {
        let (g, p) = chain();
        for start in [ItemId(0), ItemId(1), ItemId(2)] {
            let paths = enumerate_cross_domain_paths(
                &g,
                &p,
                start,
                xmap_cf::DomainId::SOURCE,
                MetaPathConfig::default(),
            );
            for path in paths {
                let ranks: Vec<u8> = path
                    .items
                    .iter()
                    .map(|&i| p.path_rank(i, xmap_cf::DomainId::SOURCE))
                    .collect();
                for w in ranks.windows(2) {
                    assert_eq!(w[1], w[0] + 1, "ranks must increase by one: {ranks:?}");
                }
            }
        }
    }

    #[test]
    fn bridge_item_reaches_target_in_a_single_hop() {
        let (g, p) = chain();
        let paths = enumerate_cross_domain_paths(
            &g,
            &p,
            ItemId(2),
            xmap_cf::DomainId::SOURCE,
            MetaPathConfig::default(),
        );
        assert!(paths
            .iter()
            .any(|pth| pth.items == vec![ItemId(2), ItemId(3)]));
    }

    #[test]
    fn hop_iterator_matches_items() {
        let path = MetaPath {
            items: vec![ItemId(0), ItemId(1), ItemId(3)],
        };
        let hops: Vec<(ItemId, ItemId)> = path.hops().collect();
        assert_eq!(hops, vec![(ItemId(0), ItemId(1)), (ItemId(1), ItemId(3))]);
        assert_eq!(path.source(), ItemId(0));
        assert_eq!(path.destination(), ItemId(3));
    }

    #[test]
    fn max_paths_caps_enumeration() {
        let (g, p) = chain();
        let paths = enumerate_cross_domain_paths(
            &g,
            &p,
            ItemId(0),
            xmap_cf::DomainId::SOURCE,
            MetaPathConfig {
                max_paths: 1,
                ..Default::default()
            },
        );
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn per_layer_top_k_limits_fanout() {
        // Build a star: bridge item 0 (SOURCE) connected to many TARGET bridge items.
        let mut b = RatingMatrixBuilder::new();
        for t in 0..8u32 {
            // user t rates source item 0 and target item 1 + t
            b.push_parts(t, 0, 5.0).unwrap();
            b.push_parts(t, 1 + t, ((t % 5) + 1) as f64).unwrap();
        }
        b.set_item_domain(ItemId(0), xmap_cf::DomainId::SOURCE);
        for t in 0..8u32 {
            b.set_item_domain(ItemId(1 + t), xmap_cf::DomainId::TARGET);
        }
        let m = b.build().unwrap();
        let g = SimilarityGraph::build(
            &m,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        let (_, p) = LayerPartition::from_graph(&g);
        let narrow = enumerate_cross_domain_paths(
            &g,
            &p,
            ItemId(0),
            xmap_cf::DomainId::SOURCE,
            MetaPathConfig {
                per_layer_top_k: 3,
                ..Default::default()
            },
        );
        let wide = enumerate_cross_domain_paths(
            &g,
            &p,
            ItemId(0),
            xmap_cf::DomainId::SOURCE,
            MetaPathConfig {
                per_layer_top_k: 100,
                ..Default::default()
            },
        );
        assert!(
            narrow.len() <= 3 + 3 * 3,
            "narrow fanout produced {} paths",
            narrow.len()
        );
        assert!(wide.len() >= narrow.len());
    }

    proptest! {
        /// On random two-domain matrices every enumerated path starts at the requested
        /// item, ends in the other domain, has at most 5 hops, and never repeats an item.
        #[test]
        fn path_invariants(
            ratings in proptest::collection::vec((0u32..10, 0u32..12, 1u32..=5), 10..150),
            start in 0u32..12,
        ) {
            let mut b = RatingMatrixBuilder::new();
            for (u, i, v) in &ratings {
                b.push_parts(*u, *i, *v as f64).unwrap();
            }
            for i in 0..12u32 {
                let d = if i < 6 { xmap_cf::DomainId::SOURCE } else { xmap_cf::DomainId::TARGET };
                b.set_item_domain(ItemId(i), d);
            }
            let m = b.build().unwrap();
            let g = SimilarityGraph::build(&m, GraphConfig { top_k: Some(5), ..Default::default() });
            let (_, p) = LayerPartition::from_graph(&g);
            let src_domain = if start < 6 { xmap_cf::DomainId::SOURCE } else { xmap_cf::DomainId::TARGET };
            let paths = enumerate_cross_domain_paths(&g, &p, ItemId(start), src_domain, MetaPathConfig::default());
            for path in paths {
                prop_assert_eq!(path.source(), ItemId(start));
                prop_assert!(path.n_hops() >= 1 && path.n_hops() <= 5);
                prop_assert!(p.domain(path.destination()) != src_domain);
                let mut seen = path.items.clone();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), path.items.len(), "no repeated items");
            }
        }
    }
}
