//! Acceptance gates for the sharded model (`xmap_core::shard`).
//!
//! The contract under test: sharded serve / ingest is **bit-identical** to the
//! single-node model at 1, 2 and 8 nodes in all four modes; hot-shard
//! replication changes only *where* reads land, never what they answer; and a
//! node killed mid-stream recovers from its per-shard snapshot + journal (or by
//! re-replication when its journal missed ingests) to the very same bits.

use xmap_cf::{DomainId, ItemId, Timestep, UserId};
use xmap_core::{RatingDelta, ShardedModel, XMapConfig, XMapMode, XMapModel};
use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};

const ALL_MODES: [XMapMode; 4] = [
    XMapMode::NxMapItemBased,
    XMapMode::NxMapUserBased,
    XMapMode::XMapItemBased,
    XMapMode::XMapUserBased,
];

fn dataset() -> CrossDomainDataset {
    CrossDomainDataset::generate(CrossDomainConfig::small())
}

fn fit(ds: &CrossDomainDataset, mode: XMapMode) -> XMapModel {
    let config = XMapConfig {
        mode,
        k: 8,
        ..Default::default()
    };
    XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, config).unwrap()
}

fn probe_users(ds: &CrossDomainDataset) -> Vec<UserId> {
    ds.overlap_users.iter().take(4).copied().collect()
}

fn assert_same_recs(a: &[(ItemId, f64)], b: &[(ItemId, f64)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.0, y.0, "{what}: item diverged");
        assert_eq!(
            x.1.to_bits(),
            y.1.to_bits(),
            "{what}: score bits diverged for {:?}",
            x.0
        );
    }
}

/// Routed predictions and top-N answers vs the single-node model, over every
/// mode and 1/2/8 nodes. Fitting is deterministic, so a fresh fit per node
/// count is the same reference model.
#[test]
fn routed_serving_matches_single_node_in_all_modes_at_1_2_8_nodes() {
    let ds = dataset();
    for mode in ALL_MODES {
        let reference = fit(&ds, mode);
        let users = probe_users(&ds);
        let items: Vec<ItemId> = ds.target_items().into_iter().take(8).collect();
        for n_nodes in [1usize, 2, 8] {
            let sharded = ShardedModel::from_model(fit(&ds, mode), n_nodes).unwrap();
            for &u in &users {
                for &i in &items {
                    assert_eq!(
                        sharded.predict(u, i).unwrap().to_bits(),
                        reference.predict(u, i).to_bits(),
                        "{mode:?}/{n_nodes} nodes: prediction diverged for {u}/{i}"
                    );
                }
                assert_same_recs(
                    &sharded.recommend(u, 5).unwrap(),
                    &reference.recommend(u, 5),
                    &format!("{mode:?}/{n_nodes} nodes: top-5 for {u}"),
                );
            }
            // Sharding spends no additional privacy budget.
            match (sharded.privacy_budget(), reference.privacy_budget()) {
                (Some(s), Some(r)) => {
                    assert_eq!(
                        s.ledger().len(),
                        r.ledger().len(),
                        "{mode:?}: ledger length"
                    );
                    assert_eq!(
                        s.spent().to_bits(),
                        r.spent().to_bits(),
                        "{mode:?}: spent ε diverged"
                    );
                }
                (None, None) => {}
                _ => panic!("{mode:?}: privacy accountant presence diverged"),
            }
            assert!(
                !sharded.route_ledger().is_empty(),
                "{mode:?}: routed reads must be ledgered"
            );
            assert!(
                !sharded.shard_serve_ledger().is_empty(),
                "{mode:?}: shard serving must be ledgered"
            );
        }
    }
}

/// A single shard on a single node is exactly the unsharded model: one slice
/// covering the whole catalogue, every answer bit-identical.
#[test]
fn single_shard_is_the_unsharded_model() {
    let ds = dataset();
    let reference = fit(&ds, XMapMode::NxMapItemBased);
    let sharded = ShardedModel::from_model(fit(&ds, XMapMode::NxMapItemBased), 1).unwrap();
    let (_, slice) = sharded.slice(0, 0).expect("node 0 hosts the only shard");
    assert_eq!(slice.item_range(), (0, ds.matrix.n_items() as u32));
    for &u in &probe_users(&ds) {
        assert_same_recs(
            &sharded.recommend(u, 5).unwrap(),
            &reference.recommend(u, 5),
            "single shard top-5",
        );
    }
}

/// More nodes than items: trailing shards are empty yet routable, and routed
/// answers still match the single-node model bit-for-bit.
#[test]
fn empty_shards_serve_nothing_and_change_no_bits() {
    let ds = CrossDomainDataset::generate(CrossDomainConfig {
        n_source_items: 4,
        n_target_items: 3,
        n_source_only_users: 8,
        n_target_only_users: 8,
        n_overlap_users: 8,
        ratings_per_user: 3,
        ..CrossDomainConfig::small()
    });
    let reference = fit(&ds, XMapMode::NxMapItemBased);
    let sharded = ShardedModel::from_model(fit(&ds, XMapMode::NxMapItemBased), 8).unwrap();
    let map = sharded.shard_map();
    assert!(
        (0..map.n_shards() as u32).any(|s| {
            let (start, end) = map.range(s);
            start == end
        }),
        "7 items over 8 nodes must leave an empty shard"
    );
    for &u in &probe_users(&ds) {
        assert_same_recs(
            &sharded.recommend(u, 3).unwrap(),
            &reference.recommend(u, 3),
            "empty-shard top-3",
        );
    }
}

/// Hot-shard replication keeps every answer bit-identical and rotates reads of
/// a replicated shard across its replicas. Asking for more replicas than nodes
/// clamps to every node exactly once.
#[test]
fn hot_shard_replication_preserves_bits_and_rotates_reads() {
    let ds = dataset();
    let reference = fit(&ds, XMapMode::NxMapItemBased);
    let sharded =
        ShardedModel::with_hot_replication(fit(&ds, XMapMode::NxMapItemBased), 4, 3).unwrap();
    let map = sharded.shard_map();
    let hot = (0..map.n_shards() as u32)
        .find(|&s| map.replication(s) > 1)
        .expect("the popularity head must mark at least one shard hot");
    assert_eq!(map.hosts(hot, 4).len(), 3);
    for &u in &probe_users(&ds) {
        assert_same_recs(
            &sharded.recommend(u, 5).unwrap(),
            &reference.recommend(u, 5),
            "replicated top-5",
        );
    }
    // Two routed reads of the same hot item land on two different replicas.
    let item = ItemId(map.range(hot).0);
    let profile = vec![(ds.target_items()[0], 4.0, Timestep(0))];
    sharded.clear_ledgers();
    let a = sharded.predict_for_profile(&profile, item).unwrap();
    let b = sharded.predict_for_profile(&profile, item).unwrap();
    assert_eq!(a.to_bits(), b.to_bits(), "replicas must answer identically");
    let route = sharded.route_ledger();
    assert_eq!(route.len(), 2);
    assert_ne!(
        route[0].node, route[1].node,
        "reads of a replicated shard must rotate across replicas"
    );

    // Replication beyond the node count clamps: every node hosts the hot shard.
    let clamped =
        ShardedModel::with_hot_replication(fit(&ds, XMapMode::NxMapItemBased), 2, 64).unwrap();
    let cmap = clamped.shard_map();
    let chot = (0..cmap.n_shards() as u32)
        .find(|&s| cmap.replication(s) > 1)
        .expect("hot shard");
    assert_eq!(
        cmap.hosts(chot, 2),
        vec![cmap.owner(chot, 2), (cmap.owner(chot, 2) + 1) % 2]
    );
    for &u in &probe_users(&ds).into_iter().take(2).collect::<Vec<_>>() {
        assert_same_recs(
            &clamped.recommend(u, 5).unwrap(),
            &reference.recommend(u, 5),
            "clamped-replication top-5",
        );
    }
}

fn probe_delta(ds: &CrossDomainDataset) -> RatingDelta {
    let new_user = ds.matrix.n_users() as u32;
    let new_item = ds.matrix.n_items() as u32; // clamps into the last shard
    let mut delta = RatingDelta::new();
    delta
        .declare_item(ItemId(new_item), DomainId::TARGET)
        .push_timed(new_user, ds.source_items()[0].0, 5.0, 90)
        .push_timed(new_user, ds.target_items()[0].0, 4.0, 91)
        .push_timed(new_user, new_item, 3.0, 92)
        .push_timed(ds.overlap_users[0].0, new_item, 5.0, 93);
    delta
}

/// A routed ingest (split into per-shard sub-deltas, coordinator apply, slice
/// republish) answers exactly like the single-node model after the same delta —
/// including for the delta-introduced user and item.
#[test]
fn routed_ingest_matches_single_node_ingest() {
    for mode in [XMapMode::NxMapItemBased, XMapMode::XMapUserBased] {
        let ds = dataset();
        let delta = probe_delta(&ds);
        let reference = fit(&ds, mode);
        reference.apply_delta(&delta).unwrap();
        let mut sharded = ShardedModel::from_model(fit(&ds, mode), 4).unwrap();
        let report = sharded.ingest(&delta).unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(sharded.epoch(), 2);
        assert!(
            !sharded.shard_ingest_ledger().is_empty(),
            "per-shard ingest work must be ledgered"
        );
        let new_user = UserId(ds.matrix.n_users() as u32);
        let new_item = ItemId(ds.matrix.n_items() as u32);
        let mut users = probe_users(&ds);
        users.push(new_user);
        for &u in &users {
            assert_eq!(
                sharded.predict(u, new_item).unwrap().to_bits(),
                reference.predict(u, new_item).to_bits(),
                "{mode:?}: post-ingest prediction diverged for {u}"
            );
            assert_same_recs(
                &sharded.recommend(u, 5).unwrap(),
                &reference.recommend(u, 5),
                &format!("{mode:?}: post-ingest top-5 for {u}"),
            );
        }
    }
}

fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xmap-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kill a node after an ingest it journaled: surviving replicas keep serving
/// the hot shard bit-identically (failover = promotion is implicit in read
/// routing), and recovery replays the journal — no re-replication — back to
/// slices equal to the live replicas', with full serving restored.
#[test]
fn killed_node_fails_over_and_recovers_from_its_journal() {
    let ds = dataset();
    let delta = probe_delta(&ds);
    let reference = fit(&ds, XMapMode::XMapItemBased);
    reference.apply_delta(&delta).unwrap();

    let mut sharded =
        ShardedModel::with_hot_replication(fit(&ds, XMapMode::XMapItemBased), 4, 2).unwrap();
    let dir = temp_store("journal-recovery");
    assert_eq!(sharded.persist(&dir).unwrap(), 1);
    sharded.ingest(&delta).unwrap();

    let map = sharded.shard_map().clone();
    let hot = (0..map.n_shards() as u32)
        .find(|&s| map.replication(s) > 1)
        .expect("hot shard");
    let hosts = map.hosts(hot, 4);
    let victim = hosts[0];
    sharded.kill_node(victim).unwrap();
    assert!(!sharded.node_is_alive(victim));

    // Failover: the surviving replica answers the hot shard, same bits.
    let hot_item = ItemId(map.range(hot).0);
    let profile = vec![(ds.target_items()[0], 4.0, Timestep(0))];
    let (_, live_epoch) = (hosts[1], sharded.slice(hosts[1], hot).unwrap().0);
    assert_eq!(live_epoch, 2, "live replica serves the post-ingest epoch");
    sharded.clear_ledgers();
    sharded.predict_for_profile(&profile, hot_item).unwrap();
    assert!(
        sharded.route_ledger().iter().all(|t| t.node != victim),
        "no read may route to a dead node"
    );

    // A shard hosted only by the victim has no live replica until recovery.
    if let Some(lonely) = (0..map.n_shards() as u32).find(|&s| map.hosts(s, 4) == vec![victim]) {
        let lonely_item = ItemId(map.range(lonely).0);
        assert!(
            sharded.predict_for_profile(&profile, lonely_item).is_err(),
            "a shard with every host dead must fail loudly"
        );
    }

    sharded.recover_node(victim).unwrap();
    assert!(sharded.node_is_alive(victim));
    for s in 0..map.n_shards() as u32 {
        let hosts = map.hosts(s, 4);
        if !hosts.contains(&victim) {
            continue;
        }
        let (epoch, recovered) = sharded.slice(victim, s).expect("recovered shard");
        assert_eq!(epoch, 2, "journal replay must reach the coordinator epoch");
        for &other in hosts.iter().filter(|&&h| h != victim) {
            let (oe, live) = sharded.slice(other, s).unwrap();
            assert_eq!(oe, 2);
            assert_eq!(
                *recovered, *live,
                "shard {s}: journal-replayed slice diverged from the live replica"
            );
        }
    }
    let new_user = UserId(ds.matrix.n_users() as u32);
    for &u in &[ds.overlap_users[0], new_user] {
        assert_same_recs(
            &sharded.recommend(u, 5).unwrap(),
            &reference.recommend(u, 5),
            "post-recovery top-5",
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill a node *before* an ingest: its journal never sees the new epoch, so
/// recovery must detect the stale journal and re-replicate the shard from the
/// coordinator — ending at the same bits as the live replicas all the same.
#[test]
fn node_dead_across_an_ingest_recovers_by_rereplication() {
    let ds = dataset();
    let delta = probe_delta(&ds);
    let reference = fit(&ds, XMapMode::NxMapUserBased);
    reference.apply_delta(&delta).unwrap();

    let mut sharded =
        ShardedModel::with_hot_replication(fit(&ds, XMapMode::NxMapUserBased), 2, 2).unwrap();
    let dir = temp_store("rereplication");
    sharded.persist(&dir).unwrap();
    sharded.kill_node(1).unwrap();
    sharded.ingest(&delta).unwrap(); // dead node skipped: journal goes stale
    sharded.recover_node(1).unwrap();

    let map = sharded.shard_map().clone();
    for s in 0..map.n_shards() as u32 {
        let hosts = map.hosts(s, 2);
        if !hosts.contains(&1) {
            continue;
        }
        let (epoch, recovered) = sharded.slice(1, s).expect("recovered shard");
        assert_eq!(epoch, 2, "re-replication must adopt the coordinator epoch");
        for &other in hosts.iter().filter(|&&h| h != 1) {
            let (_, live) = sharded.slice(other, s).unwrap();
            assert_eq!(
                *recovered, *live,
                "shard {s}: re-replicated slice diverged from the live replica"
            );
        }
    }
    let new_user = UserId(ds.matrix.n_users() as u32);
    for &u in &[ds.overlap_users[0], new_user] {
        assert_same_recs(
            &sharded.recommend(u, 5).unwrap(),
            &reference.recommend(u, 5),
            "post-rereplication top-5",
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
