//! The X-Sim meta-path-based similarity metric (§3.3, Definitions 2–6).
//!
//! For a pair of heterogeneous items `(i, j)`:
//!
//! * each meta-path `p = i_1 ↔ … ↔ i_k` between them gets a **path similarity**
//!   `s_p = Σ_t S_{t,t+1} · s_ac(t, t+1) / Σ_t S_{t,t+1}` — the significance-weighted mean
//!   of the baseline similarities along the path (Definition 3's weighting), and a
//! * **path certainty** `c_p = Π_t Ŝ_{t,t+1}` — the product of normalised weighted
//!   significances, which automatically penalises long paths (Definition 5);
//! * **X-Sim(i, j)** is the certainty-weighted mean of the path similarities over all
//!   meta-paths between `i` and `j` (Definition 6). Items that share a direct baseline
//!   edge keep that baseline similarity (the meta-path machinery only fills in pairs
//!   that are *not* directly connected, §3.3).
//!
//! The [`XSimTable`] holds, for every source-domain item, its reachable target-domain
//! items with X-Sim values — exactly what the extender hands to the generator (§5.2).
//!
//! Two computation paths produce identical tables:
//!
//! * [`XSimTable::compute`] — the reference per-pair path: meta-paths are materialised
//!   by `xmap-graph` and every hop's statistics are re-resolved through
//!   [`SimilarityGraph::edge_between`]. This is the historical implementation, kept as
//!   the equivalence oracle and microbench baseline.
//! * [`XSimTable::compute_batched`] — the production path: source items are processed in
//!   dataflow partitions, each partition walking a **frontier expansion** directly over
//!   the CSR arena. The walk carries the running path-similarity numerator/denominator
//!   and certainty product along the DFS, accumulating per-destination sums in scratch
//!   buffers reused across the partition's source items — no path materialisation and no
//!   per-hop edge re-resolution.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use xmap_cf::{DomainId, ItemId};
use xmap_engine::{StageContext, WorkerPool};
use xmap_graph::{
    enumerate_cross_domain_paths, LayerPartition, MetaPath, MetaPathConfig, SimilarityGraph,
};

/// One heterogeneous similarity entry: a target-domain item with its X-Sim value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct XSimEntry {
    /// The reachable item in the other domain.
    pub item: ItemId,
    /// X-Sim value in `[-1, 1]`.
    pub similarity: f64,
    /// Certainty of the value in `[0, 1]`: the normalised weighted significance `Ŝ` of
    /// the direct edge, or the (capped) sum of path certainties for meta-path pairs.
    /// This is the paper's own "how much should this similarity be trusted" signal
    /// (Definitions 4–5); the generator ranks replacement candidates by
    /// [`XSimEntry::weighted_similarity`] so that a 1-co-rater similarity of 1.0 does not
    /// outrank a 20-co-rater similarity of 0.7.
    pub certainty: f64,
    /// Number of meta-paths that contributed (1 for directly connected pairs).
    pub n_paths: usize,
}

impl XSimEntry {
    /// Certainty-weighted similarity used to rank replacement candidates.
    pub fn weighted_similarity(&self) -> f64 {
        self.similarity * self.certainty
    }
}

/// Path similarity `s_p` of a meta-path (significance-weighted mean of hop similarities).
/// Returns `None` when the path contains a hop with zero significance weight everywhere
/// (no mutual like/dislike on any hop), in which case the path carries no signal.
pub fn path_similarity(graph: &SimilarityGraph, path: &MetaPath) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in path.hops() {
        let edge = graph.edge_between(a, b)?;
        let s = f64::from(edge.stats.significance);
        num += s * edge.stats.similarity;
        den += s;
    }
    if den <= 0.0 {
        None
    } else {
        Some(num / den)
    }
}

/// Path certainty `c_p` of a meta-path (product of normalised weighted significances).
pub fn path_certainty(graph: &SimilarityGraph, path: &MetaPath) -> f64 {
    let mut certainty = 1.0;
    for (a, b) in path.hops() {
        let edge = match graph.edge_between(a, b) {
            Some(e) => e,
            None => return 0.0,
        };
        certainty *= edge.normalized_significance();
    }
    certainty
}

/// Aggregates a set of meta-paths that share the same endpoints into an X-Sim value
/// (Definition 6). Returns `None` when no path carries certainty or signal.
pub fn aggregate_paths(graph: &SimilarityGraph, paths: &[&MetaPath]) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for path in paths {
        let certainty = path_certainty(graph, path);
        if certainty <= 0.0 {
            continue;
        }
        if let Some(sim) = path_similarity(graph, path) {
            num += certainty * sim;
            den += certainty;
        }
    }
    if den <= 0.0 {
        None
    } else {
        Some((num / den).clamp(-1.0, 1.0))
    }
}

/// The cross-domain X-Sim table: for every source item, its reachable target items.
///
/// `PartialEq` compares every row exactly — it is what the delta-fit equivalence gate
/// holds a spliced table ([`XSimTable::with_recomputed_rows`]) against a freshly
/// computed one.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct XSimTable {
    entries: HashMap<ItemId, Vec<XSimEntry>>,
    source_domain: Option<DomainId>,
}

/// Per-partition scratch for the batched frontier expansion: per-destination
/// accumulators indexed by dense item id, reset in `O(touched)` between source items.
struct FrontierScratch {
    /// Σ certainty · path-similarity over valid paths, per destination.
    acc_num: Vec<f64>,
    /// Σ certainty over valid paths (the Definition 6 denominator), per destination.
    acc_den: Vec<f64>,
    /// Σ certainty over *all* paths (the entry's certainty before the cap), per destination.
    acc_certainty: Vec<f64>,
    /// Number of paths reaching each destination (valid or not).
    acc_paths: Vec<u32>,
    /// Destinations touched by the current source item.
    touched: Vec<ItemId>,
    /// The current DFS path (at most one item per layer, so at most 6 entries).
    visited: Vec<ItemId>,
    /// Paths recorded so far for the current source item (the `max_paths` budget).
    recorded: usize,
}

impl FrontierScratch {
    fn new(n_items: usize) -> Self {
        FrontierScratch {
            acc_num: vec![0.0; n_items],
            acc_den: vec![0.0; n_items],
            acc_certainty: vec![0.0; n_items],
            acc_paths: vec![0; n_items],
            touched: Vec::new(),
            visited: Vec::with_capacity(6),
            recorded: 0,
        }
    }

    fn reset(&mut self) {
        for dest in self.touched.drain(..) {
            let ix = dest.index();
            self.acc_num[ix] = 0.0;
            self.acc_den[ix] = 0.0;
            self.acc_certainty[ix] = 0.0;
            self.acc_paths[ix] = 0;
        }
        self.visited.clear();
        self.recorded = 0;
    }

    fn record_path(&mut self, dest: ItemId, num: f64, den: f64, certainty: f64) {
        let ix = dest.index();
        if self.acc_paths[ix] == 0 {
            self.touched.push(dest);
        }
        self.acc_paths[ix] += 1;
        self.acc_certainty[ix] += certainty;
        if certainty > 0.0 && den > 0.0 {
            self.acc_num[ix] += certainty * (num / den);
            self.acc_den[ix] += certainty;
        }
        self.recorded += 1;
    }
}

/// DFS over the CSR arena mirroring the pruned meta-path enumeration of
/// `xmap-graph`, but carrying the running path aggregates instead of materialising
/// paths: `num`/`den` are the significance-weighted similarity sums along the current
/// path (Definition 3) and `certainty` the product of normalised significances
/// (Definition 5). Every hop reads its statistics once from the edge it traverses —
/// no `edge_between` re-resolution.
#[allow(clippy::too_many_arguments)]
fn frontier_dfs(
    graph: &SimilarityGraph,
    partition: &LayerPartition,
    source_domain: DomainId,
    config: MetaPathConfig,
    here: ItemId,
    num: f64,
    den: f64,
    certainty: f64,
    scratch: &mut FrontierScratch,
) {
    if scratch.recorded >= config.max_paths {
        return;
    }
    let here_rank = partition.path_rank(here, source_domain);
    if here_rank >= 5 {
        return; // the far NN layer is terminal
    }

    let mut taken = 0usize;
    for edge in graph.neighbors(here).by_similarity() {
        if taken >= config.per_layer_top_k || scratch.recorded >= config.max_paths {
            break;
        }
        let next = edge.to;
        if scratch.visited.contains(&next) {
            continue;
        }
        if partition.path_rank(next, source_domain) != here_rank + 1 {
            continue;
        }
        taken += 1;
        let s = f64::from(edge.stats.significance);
        let next_num = num + s * edge.stats.similarity;
        let next_den = den + s;
        let next_certainty = certainty * edge.normalized_significance();
        scratch.visited.push(next);
        if partition.domain(next) != source_domain {
            scratch.record_path(next, next_num, next_den, next_certainty);
        }
        frontier_dfs(
            graph,
            partition,
            source_domain,
            config,
            next,
            next_num,
            next_den,
            next_certainty,
            scratch,
        );
        scratch.visited.pop();
    }
}

impl XSimTable {
    /// Computes the table for every item of `source_domain` through the reference
    /// per-pair path: meta-paths are materialised and re-aggregated per destination.
    /// The per-item work is independent, so it is distributed over `pool`.
    ///
    /// [`XSimTable::compute_batched`] produces the identical table via frontier
    /// expansion and is what the pipeline's extender stage runs; this entry point is
    /// the equivalence oracle and the microbench baseline.
    pub fn compute(
        graph: &SimilarityGraph,
        partition: &LayerPartition,
        source_domain: DomainId,
        metapath: MetaPathConfig,
        pool: &WorkerPool,
    ) -> Self {
        let source_items: Vec<ItemId> = graph
            .items()
            .filter(|&i| graph.item_domain(i) == source_domain)
            .collect();

        let per_item: Vec<(ItemId, Vec<XSimEntry>)> = pool.parallel_map(&source_items, |&item| {
            (
                item,
                Self::entries_for_item(graph, partition, item, source_domain, metapath),
            )
        });

        XSimTable {
            entries: per_item
                .into_iter()
                .filter(|(_, v)| !v.is_empty())
                .collect(),
            source_domain: Some(source_domain),
        }
    }

    /// Computes the table through partition-batched frontier expansion over the CSR
    /// arena — the production extender.
    ///
    /// Source items are split into the dataflow's partitions; each partition is one
    /// pool task that reuses a [`FrontierScratch`] across its items. The recorded
    /// per-partition task cost is the same work estimate the historical pipeline
    /// attributed to each source item (`1 + degree + candidates`), summed over the
    /// partition, so the cluster simulator replays exactly this stage's task bag.
    pub fn compute_batched(
        graph: &SimilarityGraph,
        partition: &LayerPartition,
        source_domain: DomainId,
        metapath: MetaPathConfig,
        cx: &mut StageContext<'_>,
    ) -> Self {
        let source_items: Vec<ItemId> = graph
            .items()
            .filter(|&i| graph.item_domain(i) == source_domain)
            .collect();

        let per_partition = cx.map_partitions(
            source_items,
            |item| item.0,
            |_ix, items| {
                // Partitions can outnumber source items; empty ones must not pay the
                // O(n_items) scratch initialisation.
                if items.is_empty() {
                    return (Vec::new(), 0.0);
                }
                let mut scratch = FrontierScratch::new(graph.n_items());
                let mut out: Vec<(ItemId, Vec<XSimEntry>)> = Vec::new();
                let mut cost = 0.0f64;
                for &item in items {
                    let entries = Self::batched_entries_for_item(
                        graph,
                        partition,
                        item,
                        source_domain,
                        metapath,
                        &mut scratch,
                    );
                    cost += 1.0 + graph.degree(item) as f64 + entries.len() as f64;
                    if !entries.is_empty() {
                        out.push((item, entries));
                    }
                }
                (out, cost)
            },
        );

        XSimTable {
            entries: per_partition.into_iter().flatten().collect(),
            source_domain: Some(source_domain),
        }
    }

    /// Recomputes the given source-item `rows` on the (updated) graph and partition and
    /// splices them into a copy of this table; every other row is carried over
    /// untouched — the delta-fit path of the extender.
    ///
    /// Each recomputed row runs the exact frontier expansion of
    /// [`XSimTable::compute_batched`] (partition-parallel, scratch reused per
    /// partition, same per-item cost recorded on the running stage's ledger), so when
    /// `rows` covers every source item whose meta-path neighbourhood the delta touched,
    /// the result is **bit-identical** to recomputing the whole table on the updated
    /// graph. Rows that come back empty are *removed* (a full computation never stores
    /// empty rows).
    pub fn with_recomputed_rows(
        &self,
        graph: &SimilarityGraph,
        partition: &LayerPartition,
        source_domain: DomainId,
        metapath: MetaPathConfig,
        rows: Vec<ItemId>,
        cx: &mut StageContext<'_>,
    ) -> Self {
        let per_partition = cx.map_partitions(
            rows,
            |item| item.0,
            |_ix, items| {
                if items.is_empty() {
                    return (Vec::new(), 0.0);
                }
                let mut scratch = FrontierScratch::new(graph.n_items());
                let mut out: Vec<(ItemId, Vec<XSimEntry>)> = Vec::new();
                let mut cost = 0.0f64;
                for &item in items {
                    let entries = Self::batched_entries_for_item(
                        graph,
                        partition,
                        item,
                        source_domain,
                        metapath,
                        &mut scratch,
                    );
                    cost += 1.0 + graph.degree(item) as f64 + entries.len() as f64;
                    // Keep empty rows here: they erase a stale row during the splice.
                    out.push((item, entries));
                }
                (out, cost)
            },
        );

        let mut entries = self.entries.clone();
        for (item, fresh) in per_partition.into_iter().flatten() {
            if fresh.is_empty() {
                entries.remove(&item);
            } else {
                entries.insert(item, fresh);
            }
        }
        XSimTable {
            entries,
            source_domain: Some(source_domain),
        }
    }

    /// One source item of the batched path: frontier expansion into `scratch`, then
    /// entry emission. Produces exactly the entries of [`XSimTable::entries_for_item`].
    fn batched_entries_for_item(
        graph: &SimilarityGraph,
        partition: &LayerPartition,
        item: ItemId,
        source_domain: DomainId,
        metapath: MetaPathConfig,
        scratch: &mut FrontierScratch,
    ) -> Vec<XSimEntry> {
        scratch.reset();
        scratch.visited.push(item);
        frontier_dfs(
            graph,
            partition,
            source_domain,
            metapath,
            item,
            0.0,
            0.0,
            1.0,
            scratch,
        );
        scratch.visited.pop();

        // Direct heterogeneous edges keep their baseline similarity (the meta-path
        // accumulators only fill in pairs without a direct edge, §3.3).
        let mut entries: Vec<XSimEntry> = Vec::new();
        for e in graph.neighbors(item).iter() {
            if graph.item_domain(e.to) != source_domain {
                entries.push(XSimEntry {
                    item: e.to,
                    similarity: e.stats.similarity,
                    certainty: e.normalized_significance(),
                    n_paths: 1,
                });
            }
        }
        for &dest in &scratch.touched {
            if graph.edge_between(item, dest).is_some() {
                continue; // direct pairs already emitted
            }
            let ix = dest.index();
            if scratch.acc_den[ix] > 0.0 {
                entries.push(XSimEntry {
                    item: dest,
                    similarity: (scratch.acc_num[ix] / scratch.acc_den[ix]).clamp(-1.0, 1.0),
                    certainty: scratch.acc_certainty[ix].min(1.0),
                    n_paths: scratch.acc_paths[ix] as usize,
                });
            }
        }
        entries.sort_by(|a, b| {
            b.weighted_similarity()
                .partial_cmp(&a.weighted_similarity())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        entries
    }

    fn entries_for_item(
        graph: &SimilarityGraph,
        partition: &LayerPartition,
        item: ItemId,
        source_domain: DomainId,
        metapath: MetaPathConfig,
    ) -> Vec<XSimEntry> {
        // Direct heterogeneous edges keep their baseline similarity, with the edge's
        // normalised weighted significance as the certainty.
        let mut direct: BTreeMap<ItemId, (f64, f64)> = BTreeMap::new();
        for e in graph.neighbors(item).iter() {
            if graph.item_domain(e.to) != source_domain {
                direct.insert(e.to, (e.stats.similarity, e.normalized_significance()));
            }
        }

        // Meta-paths fill in the pairs that are not directly connected.
        let paths = enumerate_cross_domain_paths(graph, partition, item, source_domain, metapath);
        let mut by_destination: BTreeMap<ItemId, Vec<&MetaPath>> = BTreeMap::new();
        for p in &paths {
            by_destination.entry(p.destination()).or_default().push(p);
        }

        let mut entries: Vec<XSimEntry> = Vec::new();
        for (&dest, &(sim, certainty)) in &direct {
            entries.push(XSimEntry {
                item: dest,
                similarity: sim,
                certainty,
                n_paths: 1,
            });
        }
        for (dest, dest_paths) in by_destination {
            if direct.contains_key(&dest) {
                continue;
            }
            if let Some(similarity) = aggregate_paths(graph, &dest_paths) {
                let certainty = dest_paths
                    .iter()
                    .map(|p| path_certainty(graph, p))
                    .sum::<f64>()
                    .min(1.0);
                entries.push(XSimEntry {
                    item: dest,
                    similarity,
                    certainty,
                    n_paths: dest_paths.len(),
                });
            }
        }
        entries.sort_by(|a, b| {
            b.weighted_similarity()
                .partial_cmp(&a.weighted_similarity())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        entries
    }

    /// The source domain the table was computed for.
    pub fn source_domain(&self) -> Option<DomainId> {
        self.source_domain
    }

    /// The heterogeneous candidates of a source item, best first. Empty if the item has
    /// no cross-domain connectivity at all.
    pub fn candidates(&self, item: ItemId) -> &[XSimEntry] {
        self.entries.get(&item).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The best heterogeneous match of a source item (highest certainty-weighted X-Sim).
    pub fn best_match(&self, item: ItemId) -> Option<XSimEntry> {
        self.candidates(item).first().copied()
    }

    /// Number of source items with at least one heterogeneous candidate.
    pub fn n_connected_items(&self) -> usize {
        self.entries.len()
    }

    /// Total number of heterogeneous `(source item, target item)` pairs with an X-Sim
    /// value — the "meta-path-based" bar of Figure 1(b).
    pub fn n_heterogeneous_pairs(&self) -> usize {
        // lint: iter-order — integer sum over row lengths is order-insensitive.
        self.entries.values().map(|v| v.len()).sum()
    }

    /// Iterates over all `(source item, candidates)` pairs in ascending source-item
    /// order, so downstream consumers see a deterministic sequence.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &[XSimEntry])> + '_ {
        let mut keys: Vec<ItemId> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(move |k| (k, self.entries[&k].as_slice()))
    }
}

impl xmap_store::Codec for XSimEntry {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        self.item.enc(e);
        e.put_f64(self.similarity);
        e.put_f64(self.certainty);
        e.put_usize(self.n_paths);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(XSimEntry {
            item: ItemId::dec(d)?,
            similarity: d.take_f64()?,
            certainty: d.take_f64()?,
            n_paths: d.take_usize()?,
        })
    }
}

/// On-disk codec for the table. The hash map is encoded in **ascending source-item
/// order** so equal tables always produce identical bytes (canonical encoding —
/// the map's iteration order must not leak into checksums or snapshot diffs).
impl xmap_store::Codec for XSimTable {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        let mut keys: Vec<ItemId> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        e.put_usize(keys.len());
        for key in keys {
            key.enc(e);
            self.entries[&key].enc(e);
        }
        self.source_domain.enc(e);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        let len = d.take_len(4, "xsim table")?;
        let mut entries = HashMap::with_capacity(len);
        for _ in 0..len {
            let key = ItemId::dec(d)?;
            let row: Vec<XSimEntry> = Vec::dec(d)?;
            entries.insert(key, row);
        }
        Ok(XSimTable {
            entries,
            source_domain: Option::dec(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_dataset::toy::{items, ToyScenario};
    use xmap_graph::GraphConfig;

    fn toy_graph() -> (SimilarityGraph, LayerPartition) {
        let toy = ToyScenario::build();
        let graph = SimilarityGraph::build(
            &toy.matrix,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        let (_, partition) = LayerPartition::from_graph(&graph);
        (graph, partition)
    }

    #[test]
    fn interstellar_reaches_the_forever_war_via_meta_paths() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        // The motivating example: Interstellar has no direct similarity with The Forever
        // War, but X-Sim connects them through Inception.
        let cands = table.candidates(items::INTERSTELLAR);
        assert!(
            cands.iter().any(|e| e.item == items::THE_FOREVER_WAR),
            "Interstellar should reach The Forever War, got {cands:?}"
        );
        assert_eq!(table.source_domain(), Some(DomainId::SOURCE));
    }

    #[test]
    fn meta_paths_add_pairs_beyond_direct_edges() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        let standard = graph.n_heterogeneous_pairs();
        let metapath_based = table.n_heterogeneous_pairs();
        assert!(
            metapath_based > standard,
            "meta-paths should add heterogeneous similarities: {metapath_based} vs {standard}"
        );
    }

    #[test]
    fn direct_edges_keep_their_baseline_similarity() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        // Inception and The Forever War are directly connected through Cecilia.
        if let Some(direct_edge) = graph.edge_between(items::INCEPTION, items::THE_FOREVER_WAR) {
            let entry = table
                .candidates(items::INCEPTION)
                .iter()
                .find(|e| e.item == items::THE_FOREVER_WAR)
                .copied()
                .expect("directly connected pair must appear in the table");
            assert!((entry.similarity - direct_edge.stats.similarity).abs() < 1e-12);
            assert_eq!(entry.n_paths, 1);
        }
    }

    #[test]
    fn xsim_values_are_bounded_and_sorted() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(2),
        );
        for (_, cands) in table.iter() {
            for w in cands.windows(2) {
                assert!(w[0].weighted_similarity() >= w[1].weighted_similarity());
            }
            for e in cands {
                assert!((-1.0..=1.0).contains(&e.similarity));
                assert!((0.0..=1.0).contains(&e.certainty));
                assert!(e.weighted_similarity().abs() <= e.similarity.abs() + 1e-12);
                assert!(e.n_paths >= 1);
            }
        }
        assert!(
            table.n_connected_items() <= 3,
            "only source items can be table keys"
        );
    }

    #[test]
    fn path_certainty_penalises_longer_paths() {
        let (graph, partition) = toy_graph();
        // enumerate the paths from Interstellar; any 2-hop path must have certainty no
        // larger than the certainty of its 1-hop prefix (certainties multiply factors <= 1)
        let paths = enumerate_cross_domain_paths(
            &graph,
            &partition,
            items::INTERSTELLAR,
            DomainId::SOURCE,
            MetaPathConfig::default(),
        );
        for p in &paths {
            let c = path_certainty(&graph, p);
            assert!((0.0..=1.0).contains(&c));
            if p.n_hops() >= 2 {
                let prefix = MetaPath {
                    items: p.items[..2].to_vec(),
                };
                assert!(c <= path_certainty(&graph, &prefix) + 1e-12);
            }
        }
    }

    #[test]
    fn path_similarity_is_weighted_mean_of_hop_similarities() {
        let (graph, _) = toy_graph();
        let path = MetaPath {
            items: vec![
                items::INTERSTELLAR,
                items::INCEPTION,
                items::THE_FOREVER_WAR,
            ],
        };
        if let Some(sp) = path_similarity(&graph, &path) {
            let s1 = graph
                .edge_between(items::INTERSTELLAR, items::INCEPTION)
                .unwrap()
                .stats
                .similarity;
            let s2 = graph
                .edge_between(items::INCEPTION, items::THE_FOREVER_WAR)
                .unwrap()
                .stats
                .similarity;
            assert!(
                sp >= s1.min(s2) - 1e-9 && sp <= s1.max(s2) + 1e-9,
                "sp {sp} outside [{}, {}]",
                s1.min(s2),
                s1.max(s2)
            );
        }
    }

    #[test]
    fn missing_edges_yield_no_similarity() {
        let (graph, _) = toy_graph();
        // a fabricated path over unconnected items has no certainty and no similarity
        let bogus = MetaPath {
            items: vec![items::INTERSTELLAR, items::ENDERS_GAME],
        };
        if graph
            .edge_between(items::INTERSTELLAR, items::ENDERS_GAME)
            .is_none()
        {
            assert_eq!(path_certainty(&graph, &bogus), 0.0);
            assert!(path_similarity(&graph, &bogus).is_none());
            assert!(aggregate_paths(&graph, &[&bogus]).is_none());
        }
    }

    #[test]
    fn parallel_and_sequential_tables_agree() {
        let (graph, partition) = toy_graph();
        let seq = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        let par = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(4),
        );
        assert_eq!(seq.n_heterogeneous_pairs(), par.n_heterogeneous_pairs());
        for (item, cands) in seq.iter() {
            assert_eq!(par.candidates(item), cands);
        }
    }

    fn batched_table(
        graph: &SimilarityGraph,
        partition: &LayerPartition,
        metapath: MetaPathConfig,
        workers: usize,
        partitions: usize,
    ) -> XSimTable {
        let flow = xmap_engine::Dataflow::new(workers, partitions);
        flow.run(
            &xmap_engine::fn_stage(
                "extender",
                |g: &SimilarityGraph, cx: &mut StageContext<'_>| {
                    XSimTable::compute_batched(g, partition, DomainId::SOURCE, metapath, cx)
                },
            ),
            graph,
        )
    }

    #[test]
    fn batched_frontier_matches_reference_on_toy_graph() {
        let (graph, partition) = toy_graph();
        let reference = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        for (workers, partitions) in [(1, 1), (1, 4), (4, 8)] {
            let batched = batched_table(
                &graph,
                &partition,
                MetaPathConfig::default(),
                workers,
                partitions,
            );
            assert_eq!(batched.n_connected_items(), reference.n_connected_items());
            assert_eq!(
                batched.n_heterogeneous_pairs(),
                reference.n_heterogeneous_pairs()
            );
            for (item, cands) in reference.iter() {
                assert_eq!(
                    batched.candidates(item),
                    cands,
                    "batched extender diverged for {item} ({workers} workers, {partitions} partitions)"
                );
            }
        }
    }

    #[test]
    fn batched_frontier_matches_reference_on_synthetic_data() {
        use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};
        use xmap_graph::SimilarityGraph;
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let graph = SimilarityGraph::build(
            &ds.matrix,
            GraphConfig {
                top_k: Some(10),
                ..Default::default()
            },
        );
        let (_, partition) = LayerPartition::from_graph(&graph);
        for metapath in [
            MetaPathConfig::default(),
            MetaPathConfig {
                per_layer_top_k: 3,
                max_paths: 50,
            },
        ] {
            let reference = XSimTable::compute(
                &graph,
                &partition,
                DomainId::SOURCE,
                metapath,
                &WorkerPool::new(1),
            );
            let batched = batched_table(&graph, &partition, metapath, 2, 16);
            assert_eq!(
                batched.n_heterogeneous_pairs(),
                reference.n_heterogeneous_pairs()
            );
            for (item, cands) in reference.iter() {
                assert_eq!(batched.candidates(item), cands, "diverged for {item}");
            }
        }
    }

    #[test]
    fn unknown_item_has_no_candidates() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        assert!(table.candidates(ItemId(999)).is_empty());
        assert!(table.best_match(ItemId(999)).is_none());
    }
}
