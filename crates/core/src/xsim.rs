//! The X-Sim meta-path-based similarity metric (§3.3, Definitions 2–6).
//!
//! For a pair of heterogeneous items `(i, j)`:
//!
//! * each meta-path `p = i_1 ↔ … ↔ i_k` between them gets a **path similarity**
//!   `s_p = Σ_t S_{t,t+1} · s_ac(t, t+1) / Σ_t S_{t,t+1}` — the significance-weighted mean
//!   of the baseline similarities along the path (Definition 3's weighting), and a
//! * **path certainty** `c_p = Π_t Ŝ_{t,t+1}` — the product of normalised weighted
//!   significances, which automatically penalises long paths (Definition 5);
//! * **X-Sim(i, j)** is the certainty-weighted mean of the path similarities over all
//!   meta-paths between `i` and `j` (Definition 6). Items that share a direct baseline
//!   edge keep that baseline similarity (the meta-path machinery only fills in pairs
//!   that are *not* directly connected, §3.3).
//!
//! The [`XSimTable`] holds, for every source-domain item, its reachable target-domain
//! items with X-Sim values — exactly what the extender hands to the generator (§5.2).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xmap_cf::{DomainId, ItemId};
use xmap_engine::WorkerPool;
use xmap_graph::{enumerate_cross_domain_paths, LayerPartition, MetaPath, MetaPathConfig, SimilarityGraph};

/// One heterogeneous similarity entry: a target-domain item with its X-Sim value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct XSimEntry {
    /// The reachable item in the other domain.
    pub item: ItemId,
    /// X-Sim value in `[-1, 1]`.
    pub similarity: f64,
    /// Certainty of the value in `[0, 1]`: the normalised weighted significance `Ŝ` of
    /// the direct edge, or the (capped) sum of path certainties for meta-path pairs.
    /// This is the paper's own "how much should this similarity be trusted" signal
    /// (Definitions 4–5); the generator ranks replacement candidates by
    /// [`XSimEntry::weighted_similarity`] so that a 1-co-rater similarity of 1.0 does not
    /// outrank a 20-co-rater similarity of 0.7.
    pub certainty: f64,
    /// Number of meta-paths that contributed (1 for directly connected pairs).
    pub n_paths: usize,
}

impl XSimEntry {
    /// Certainty-weighted similarity used to rank replacement candidates.
    pub fn weighted_similarity(&self) -> f64 {
        self.similarity * self.certainty
    }
}

/// Path similarity `s_p` of a meta-path (significance-weighted mean of hop similarities).
/// Returns `None` when the path contains a hop with zero significance weight everywhere
/// (no mutual like/dislike on any hop), in which case the path carries no signal.
pub fn path_similarity(graph: &SimilarityGraph, path: &MetaPath) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in path.hops() {
        let edge = graph.edge_between(a, b).or_else(|| graph.edge_between(b, a))?;
        let s = edge.stats.significance as f64;
        num += s * edge.stats.similarity;
        den += s;
    }
    if den <= 0.0 {
        None
    } else {
        Some(num / den)
    }
}

/// Path certainty `c_p` of a meta-path (product of normalised weighted significances).
pub fn path_certainty(graph: &SimilarityGraph, path: &MetaPath) -> f64 {
    let mut certainty = 1.0;
    for (a, b) in path.hops() {
        let edge = match graph.edge_between(a, b).or_else(|| graph.edge_between(b, a)) {
            Some(e) => e,
            None => return 0.0,
        };
        certainty *= edge.normalized_significance();
    }
    certainty
}

/// Aggregates a set of meta-paths that share the same endpoints into an X-Sim value
/// (Definition 6). Returns `None` when no path carries certainty or signal.
pub fn aggregate_paths(graph: &SimilarityGraph, paths: &[&MetaPath]) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for path in paths {
        let certainty = path_certainty(graph, path);
        if certainty <= 0.0 {
            continue;
        }
        if let Some(sim) = path_similarity(graph, path) {
            num += certainty * sim;
            den += certainty;
        }
    }
    if den <= 0.0 {
        None
    } else {
        Some((num / den).clamp(-1.0, 1.0))
    }
}

/// The cross-domain X-Sim table: for every source item, its reachable target items.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct XSimTable {
    entries: HashMap<ItemId, Vec<XSimEntry>>,
    source_domain: Option<DomainId>,
}

impl XSimTable {
    /// Computes the table for every item of `source_domain` (the extender's cross-domain
    /// step). The per-item work is independent, so it is distributed over `pool`.
    pub fn compute(
        graph: &SimilarityGraph,
        partition: &LayerPartition,
        source_domain: DomainId,
        metapath: MetaPathConfig,
        pool: &WorkerPool,
    ) -> Self {
        let source_items: Vec<ItemId> = graph
            .items()
            .filter(|&i| graph.item_domain(i) == source_domain)
            .collect();

        let per_item: Vec<(ItemId, Vec<XSimEntry>)> = pool.parallel_map(&source_items, |&item| {
            (item, Self::entries_for_item(graph, partition, item, source_domain, metapath))
        });

        XSimTable {
            entries: per_item.into_iter().filter(|(_, v)| !v.is_empty()).collect(),
            source_domain: Some(source_domain),
        }
    }

    fn entries_for_item(
        graph: &SimilarityGraph,
        partition: &LayerPartition,
        item: ItemId,
        source_domain: DomainId,
        metapath: MetaPathConfig,
    ) -> Vec<XSimEntry> {
        // Direct heterogeneous edges keep their baseline similarity, with the edge's
        // normalised weighted significance as the certainty.
        let mut direct: HashMap<ItemId, (f64, f64)> = HashMap::new();
        for e in graph.edges(item) {
            if graph.item_domain(e.to) != source_domain {
                direct.insert(e.to, (e.stats.similarity, e.normalized_significance()));
            }
        }

        // Meta-paths fill in the pairs that are not directly connected.
        let paths = enumerate_cross_domain_paths(graph, partition, item, source_domain, metapath);
        let mut by_destination: HashMap<ItemId, Vec<&MetaPath>> = HashMap::new();
        for p in &paths {
            by_destination.entry(p.destination()).or_default().push(p);
        }

        let mut entries: Vec<XSimEntry> = Vec::new();
        for (&dest, &(sim, certainty)) in &direct {
            entries.push(XSimEntry {
                item: dest,
                similarity: sim,
                certainty,
                n_paths: 1,
            });
        }
        for (dest, dest_paths) in by_destination {
            if direct.contains_key(&dest) {
                continue;
            }
            if let Some(similarity) = aggregate_paths(graph, &dest_paths) {
                let certainty = dest_paths
                    .iter()
                    .map(|p| path_certainty(graph, p))
                    .sum::<f64>()
                    .min(1.0);
                entries.push(XSimEntry {
                    item: dest,
                    similarity,
                    certainty,
                    n_paths: dest_paths.len(),
                });
            }
        }
        entries.sort_by(|a, b| {
            b.weighted_similarity()
                .partial_cmp(&a.weighted_similarity())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        entries
    }

    /// The source domain the table was computed for.
    pub fn source_domain(&self) -> Option<DomainId> {
        self.source_domain
    }

    /// The heterogeneous candidates of a source item, best first. Empty if the item has
    /// no cross-domain connectivity at all.
    pub fn candidates(&self, item: ItemId) -> &[XSimEntry] {
        self.entries.get(&item).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The best heterogeneous match of a source item (highest certainty-weighted X-Sim).
    pub fn best_match(&self, item: ItemId) -> Option<XSimEntry> {
        self.candidates(item).first().copied()
    }

    /// Number of source items with at least one heterogeneous candidate.
    pub fn n_connected_items(&self) -> usize {
        self.entries.len()
    }

    /// Total number of heterogeneous `(source item, target item)` pairs with an X-Sim
    /// value — the "meta-path-based" bar of Figure 1(b).
    pub fn n_heterogeneous_pairs(&self) -> usize {
        self.entries.values().map(|v| v.len()).sum()
    }

    /// Iterates over all `(source item, candidates)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &[XSimEntry])> + '_ {
        self.entries.iter().map(|(k, v)| (*k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_dataset::toy::{items, ToyScenario};
    use xmap_graph::GraphConfig;

    fn toy_graph() -> (SimilarityGraph, LayerPartition) {
        let toy = ToyScenario::build();
        let graph = SimilarityGraph::build(&toy.matrix, GraphConfig { top_k: None, ..Default::default() });
        let (_, partition) = LayerPartition::from_graph(&graph);
        (graph, partition)
    }

    #[test]
    fn interstellar_reaches_the_forever_war_via_meta_paths() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        // The motivating example: Interstellar has no direct similarity with The Forever
        // War, but X-Sim connects them through Inception.
        let cands = table.candidates(items::INTERSTELLAR);
        assert!(
            cands.iter().any(|e| e.item == items::THE_FOREVER_WAR),
            "Interstellar should reach The Forever War, got {cands:?}"
        );
        assert_eq!(table.source_domain(), Some(DomainId::SOURCE));
    }

    #[test]
    fn meta_paths_add_pairs_beyond_direct_edges() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        let standard = graph.n_heterogeneous_pairs();
        let metapath_based = table.n_heterogeneous_pairs();
        assert!(
            metapath_based > standard,
            "meta-paths should add heterogeneous similarities: {metapath_based} vs {standard}"
        );
    }

    #[test]
    fn direct_edges_keep_their_baseline_similarity() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        // Inception and The Forever War are directly connected through Cecilia.
        if let Some(direct_edge) = graph.edge_between(items::INCEPTION, items::THE_FOREVER_WAR) {
            let entry = table
                .candidates(items::INCEPTION)
                .iter()
                .find(|e| e.item == items::THE_FOREVER_WAR)
                .copied()
                .expect("directly connected pair must appear in the table");
            assert!((entry.similarity - direct_edge.stats.similarity).abs() < 1e-12);
            assert_eq!(entry.n_paths, 1);
        }
    }

    #[test]
    fn xsim_values_are_bounded_and_sorted() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(2),
        );
        for (_, cands) in table.iter() {
            for w in cands.windows(2) {
                assert!(w[0].weighted_similarity() >= w[1].weighted_similarity());
            }
            for e in cands {
                assert!((-1.0..=1.0).contains(&e.similarity));
                assert!((0.0..=1.0).contains(&e.certainty));
                assert!(e.weighted_similarity().abs() <= e.similarity.abs() + 1e-12);
                assert!(e.n_paths >= 1);
            }
        }
        assert!(table.n_connected_items() <= 3, "only source items can be table keys");
    }

    #[test]
    fn path_certainty_penalises_longer_paths() {
        let (graph, partition) = toy_graph();
        // enumerate the paths from Interstellar; any 2-hop path must have certainty no
        // larger than the certainty of its 1-hop prefix (certainties multiply factors <= 1)
        let paths = enumerate_cross_domain_paths(
            &graph,
            &partition,
            items::INTERSTELLAR,
            DomainId::SOURCE,
            MetaPathConfig::default(),
        );
        for p in &paths {
            let c = path_certainty(&graph, p);
            assert!((0.0..=1.0).contains(&c));
            if p.n_hops() >= 2 {
                let prefix = MetaPath {
                    items: p.items[..2].to_vec(),
                };
                assert!(c <= path_certainty(&graph, &prefix) + 1e-12);
            }
        }
    }

    #[test]
    fn path_similarity_is_weighted_mean_of_hop_similarities() {
        let (graph, _) = toy_graph();
        let path = MetaPath {
            items: vec![items::INTERSTELLAR, items::INCEPTION, items::THE_FOREVER_WAR],
        };
        if let Some(sp) = path_similarity(&graph, &path) {
            let s1 = graph
                .edge_between(items::INTERSTELLAR, items::INCEPTION)
                .unwrap()
                .stats
                .similarity;
            let s2 = graph
                .edge_between(items::INCEPTION, items::THE_FOREVER_WAR)
                .unwrap()
                .stats
                .similarity;
            assert!(sp >= s1.min(s2) - 1e-9 && sp <= s1.max(s2) + 1e-9, "sp {sp} outside [{}, {}]", s1.min(s2), s1.max(s2));
        }
    }

    #[test]
    fn missing_edges_yield_no_similarity() {
        let (graph, _) = toy_graph();
        // a fabricated path over unconnected items has no certainty and no similarity
        let bogus = MetaPath {
            items: vec![items::INTERSTELLAR, items::ENDERS_GAME],
        };
        if graph.edge_between(items::INTERSTELLAR, items::ENDERS_GAME).is_none() {
            assert_eq!(path_certainty(&graph, &bogus), 0.0);
            assert!(path_similarity(&graph, &bogus).is_none());
            assert!(aggregate_paths(&graph, &[&bogus]).is_none());
        }
    }

    #[test]
    fn parallel_and_sequential_tables_agree() {
        let (graph, partition) = toy_graph();
        let seq = XSimTable::compute(&graph, &partition, DomainId::SOURCE, MetaPathConfig::default(), &WorkerPool::new(1));
        let par = XSimTable::compute(&graph, &partition, DomainId::SOURCE, MetaPathConfig::default(), &WorkerPool::new(4));
        assert_eq!(seq.n_heterogeneous_pairs(), par.n_heterogeneous_pairs());
        for (item, cands) in seq.iter() {
            assert_eq!(par.candidates(item), cands);
        }
    }

    #[test]
    fn unknown_item_has_no_candidates() {
        let (graph, partition) = toy_graph();
        let table = XSimTable::compute(&graph, &partition, DomainId::SOURCE, MetaPathConfig::default(), &WorkerPool::new(1));
        assert!(table.candidates(ItemId(999)).is_empty());
        assert!(table.best_match(ItemId(999)).is_none());
    }
}
