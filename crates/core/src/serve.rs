//! Batched recommendation serving on the `Stage`/`Dataflow` engine.
//!
//! Online top-N serving is the recommendation phase of X-Map (PNSA/PNCF for the private
//! modes, Algorithms 4–5) applied to a *batch* of AlterEgo profiles. [`RecommendStage`]
//! runs one [`ServeBatch`] through the same partition-and-replay discipline the extender
//! uses: profiles are hash-partitioned by request position, every partition is one pool
//! task whose per-profile scratch (dense rating buffers, neighbour pools) is reused
//! across the partition's profiles, and one *data-derived* task cost per partition is
//! recorded in the dataflow ledger so the cluster simulator can replay the serving
//! workload exactly like the extension workload.
//!
//! Determinism contract: partition assignment hashes the request position and every
//! profile's computation is independent (private noise is seeded per `(model seed,
//! item)`), so the stage's output is **bit-identical** to calling
//! [`ProfileRecommender::recommend_for_profile`] once per profile, at any worker count.

use crate::recommend::ProfileRecommender;
use xmap_cf::knn::Profile;
use xmap_cf::ItemId;
use xmap_engine::{Stage, StageContext};

/// A batch of top-N recommendation requests, one per AlterEgo profile.
#[derive(Clone, Debug, Default)]
pub struct ServeBatch {
    /// The profiles to serve, in request order.
    pub profiles: Vec<Profile>,
    /// How many recommendations each request receives.
    pub n: usize,
}

impl ServeBatch {
    /// Builds a batch serving `n` recommendations per profile.
    pub fn new(profiles: Vec<Profile>, n: usize) -> Self {
        ServeBatch { profiles, n }
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Stage name under which serving costs appear in the dataflow ledger.
pub const RECOMMEND_STAGE_NAME: &str = "recommend";

/// The batched recommendation stage: top-N for every profile of a [`ServeBatch`].
pub struct RecommendStage<'r> {
    recommender: &'r (dyn ProfileRecommender + Send + Sync),
}

impl<'r> RecommendStage<'r> {
    /// Wraps a fitted recommender for batched serving.
    pub fn new(recommender: &'r (dyn ProfileRecommender + Send + Sync)) -> Self {
        RecommendStage { recommender }
    }
}

impl Stage<ServeBatch> for RecommendStage<'_> {
    type Out = Vec<Vec<(ItemId, f64)>>;

    fn name(&self) -> &'static str {
        RECOMMEND_STAGE_NAME
    }

    fn run(&self, batch: ServeBatch, cx: &mut StageContext<'_>) -> Vec<Vec<(ItemId, f64)>> {
        let n = batch.n;
        cx.map_items_ordered(batch.profiles, |_ix, part| {
            // One sub-batch per partition (a hash-scattered subset of request
            // positions): `recommend_batch` reuses the recommender's per-profile
            // scratch across the partition's profiles and is bit-identical to
            // per-profile calls by contract.
            let profiles: Vec<&Profile> = part.iter().map(|(_, p)| p).collect();
            let outs = self.recommender.recommend_batch(&profiles, n);
            // Serving work scales with profile size (candidate generation fans out from
            // every profile item); "+1" keeps empty profiles from being free so the
            // simulated cluster still pays their per-request overhead.
            let cost: f64 = profiles.iter().map(|p| 1.0 + p.len() as f64).sum();
            (outs, cost)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommend::ItemBasedRecommender;
    use xmap_cf::knn::profile_from_pairs;
    use xmap_cf::{DomainId, RatingMatrix, RatingMatrixBuilder};
    use xmap_engine::Dataflow;

    fn target_matrix() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for u in 0..4u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
        }
        for u in 4..8u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
        }
        for i in 0..6u32 {
            b.set_item_domain(ItemId(i), DomainId::TARGET);
        }
        b.build().unwrap()
    }

    fn profiles() -> Vec<Profile> {
        (0..20u32)
            .map(|s| {
                profile_from_pairs([
                    (ItemId(s % 6), 5.0 - (s % 4) as f64),
                    (ItemId((s + 2) % 6), 1.0 + (s % 5) as f64),
                ])
            })
            .collect()
    }

    #[test]
    fn serve_batch_matches_per_profile_reference_at_any_worker_count() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let reference: Vec<Vec<(ItemId, f64)>> = profiles()
            .iter()
            .map(|p| rec.recommend_for_profile(p, 3))
            .collect();
        let mut reference_costs = None;
        for workers in [1usize, 2, 8] {
            let flow = Dataflow::new(workers, 8);
            let out = flow.run(&RecommendStage::new(&rec), ServeBatch::new(profiles(), 3));
            assert_eq!(out, reference, "{workers} workers changed served output");
            let costs = flow
                .stage_costs(RECOMMEND_STAGE_NAME)
                .expect("serving records task costs");
            assert_eq!(costs.len(), 8, "one task cost per partition");
            match &reference_costs {
                None => reference_costs = Some(costs),
                Some(expected) => {
                    assert_eq!(&costs, expected, "{workers} workers changed task costs")
                }
            }
        }
    }

    #[test]
    fn serve_costs_cover_every_request() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let flow = Dataflow::new(2, 4);
        let batch = ServeBatch::new(profiles(), 2);
        let expected_cost: f64 = batch.profiles.iter().map(|p| 1.0 + p.len() as f64).sum();
        assert_eq!(batch.len(), 20);
        assert!(!batch.is_empty());
        let _ = flow.run(&RecommendStage::new(&rec), batch);
        let costs = flow.stage_costs(RECOMMEND_STAGE_NAME).unwrap();
        assert!((costs.iter().sum::<f64>() - expected_cost).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_serves_nothing() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let flow = Dataflow::new(2, 4);
        let out = flow.run(&RecommendStage::new(&rec), ServeBatch::default());
        assert!(out.is_empty());
    }
}
