//! Batched recommendation serving on the `Stage`/`Dataflow` engine.
//!
//! Online top-N serving is the recommendation phase of X-Map (PNSA/PNCF for the private
//! modes, Algorithms 4–5) applied to a *batch* of AlterEgo profiles. [`RecommendStage`]
//! runs one [`ServeBatch`] through the same partition-and-replay discipline the extender
//! uses: request positions are hash-partitioned, every partition is one pool task whose
//! per-profile scratch (dense rating buffers, neighbour pools) is checked out of the
//! model's shared [`ScratchPool`] — so the warmed buffers are reused not just across a
//! partition's profiles but across *batches* — and one *data-derived* task cost per
//! partition is recorded in the dataflow ledger so the cluster simulator can replay the
//! serving workload exactly like the extension workload.
//!
//! The batch borrows its profiles (`&[Profile]`): callers serving the same request set
//! repeatedly (benchmarks, the concurrent-serve driver) no longer clone every profile
//! per batch.
//!
//! Determinism contract: partition assignment hashes the request position and every
//! profile's computation is independent (private noise is seeded per `(model seed,
//! item)`), so the stage's output is **bit-identical** to calling
//! [`ProfileRecommender::recommend_for_profile`] once per profile, at any worker count
//! and regardless of how scratch buffers were warmed by earlier batches
//! ([`crate::recommend::ProfileScratch`] invalidates by epoch bump on every load).

use crate::recommend::{ProfileRecommender, ScratchPool};
use xmap_cf::knn::Profile;
use xmap_cf::ItemId;
use xmap_engine::{Stage, StageContext};

/// A batch of top-N recommendation requests, one per AlterEgo profile.
///
/// Borrows the profile slice — building a batch is free, and repeated serving of the
/// same request set shares one allocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeBatch<'p> {
    /// The profiles to serve, in request order.
    pub profiles: &'p [Profile],
    /// How many recommendations each request receives.
    pub n: usize,
}

impl<'p> ServeBatch<'p> {
    /// Builds a batch serving `n` recommendations per profile.
    pub fn new(profiles: &'p [Profile], n: usize) -> Self {
        ServeBatch { profiles, n }
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Stage name under which serving costs appear in the dataflow ledger.
pub const RECOMMEND_STAGE_NAME: &str = "recommend";

/// The batched recommendation stage: top-N for every profile of a [`ServeBatch`].
pub struct RecommendStage<'r> {
    recommender: &'r (dyn ProfileRecommender + Send + Sync),
    scratch: &'r ScratchPool,
}

impl<'r> RecommendStage<'r> {
    /// Wraps a fitted recommender for batched serving, drawing per-partition scratch
    /// from `scratch` so dense buffers persist across batches.
    pub fn new(
        recommender: &'r (dyn ProfileRecommender + Send + Sync),
        scratch: &'r ScratchPool,
    ) -> Self {
        RecommendStage {
            recommender,
            scratch,
        }
    }
}

impl<'p> Stage<ServeBatch<'p>> for RecommendStage<'_> {
    type Out = Vec<Vec<(ItemId, f64)>>;

    fn name(&self) -> &'static str {
        RECOMMEND_STAGE_NAME
    }

    fn run(&self, batch: ServeBatch<'p>, cx: &mut StageContext<'_>) -> Vec<Vec<(ItemId, f64)>> {
        let n = batch.n;
        let all = batch.profiles;
        // Partition by request *position* (the profiles stay borrowed in place); each
        // partition is one pool task.
        let positions: Vec<usize> = (0..all.len()).collect();
        cx.map_items_ordered(positions, |_ix, part| {
            // One sub-batch per partition (a hash-scattered subset of request
            // positions). The scratch checked out here carries warmed dense buffers
            // from earlier batches; `recommend_batch_with_scratch` reuses it across
            // the partition's profiles and is bit-identical to per-profile calls by
            // contract.
            let profiles: Vec<&Profile> = part.iter().map(|&(_, pos)| &all[pos]).collect();
            let mut scratch = self.scratch.checkout();
            let outs = self
                .recommender
                .recommend_batch_with_scratch(&profiles, n, &mut scratch);
            self.scratch.give_back(scratch);
            // Serving work scales with profile size (candidate generation fans out from
            // every profile item); "+1" keeps empty profiles from being free so the
            // simulated cluster still pays their per-request overhead.
            let cost: f64 = profiles.iter().map(|p| 1.0 + p.len() as f64).sum();
            (outs, cost)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommend::ItemBasedRecommender;
    use xmap_cf::knn::profile_from_pairs;
    use xmap_cf::{DomainId, RatingMatrix, RatingMatrixBuilder};
    use xmap_engine::Dataflow;

    fn target_matrix() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for u in 0..4u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
        }
        for u in 4..8u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
        }
        for i in 0..6u32 {
            b.set_item_domain(ItemId(i), DomainId::TARGET);
        }
        b.build().unwrap()
    }

    fn profiles() -> Vec<Profile> {
        (0..20u32)
            .map(|s| {
                profile_from_pairs([
                    (ItemId(s % 6), 5.0 - (s % 4) as f64),
                    (ItemId((s + 2) % 6), 1.0 + (s % 5) as f64),
                ])
            })
            .collect()
    }

    #[test]
    fn serve_batch_matches_per_profile_reference_at_any_worker_count() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let pool = ScratchPool::new();
        let reference: Vec<Vec<(ItemId, f64)>> = profiles()
            .iter()
            .map(|p| rec.recommend_for_profile(p, 3))
            .collect();
        let requests = profiles();
        let mut reference_costs = None;
        for workers in [1usize, 2, 8] {
            let flow = Dataflow::new(workers, 8);
            let out = flow.run(
                &RecommendStage::new(&rec, &pool),
                ServeBatch::new(&requests, 3),
            );
            assert_eq!(out, reference, "{workers} workers changed served output");
            let costs = flow
                .stage_costs(RECOMMEND_STAGE_NAME)
                .expect("serving records task costs");
            assert_eq!(costs.len(), 8, "one task cost per partition");
            match &reference_costs {
                None => reference_costs = Some(costs),
                Some(expected) => {
                    assert_eq!(&costs, expected, "{workers} workers changed task costs")
                }
            }
        }
    }

    #[test]
    fn scratch_pool_reuse_across_batches_is_bit_identical() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let pool = ScratchPool::new();
        let requests = profiles();
        let flow = Dataflow::new(2, 4);
        let first = flow.run(
            &RecommendStage::new(&rec, &pool),
            ServeBatch::new(&requests, 3),
        );
        assert!(
            pool.available() > 0,
            "serving parks warmed scratches back in the pool"
        );
        // Second batch re-checks out the warmed scratches; epoch invalidation makes
        // the reuse invisible in the outputs.
        let second = flow.run(
            &RecommendStage::new(&rec, &pool),
            ServeBatch::new(&requests, 3),
        );
        assert_eq!(first, second, "warmed scratch changed served output");
    }

    #[test]
    fn serve_costs_cover_every_request() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let pool = ScratchPool::new();
        let flow = Dataflow::new(2, 4);
        let requests = profiles();
        let batch = ServeBatch::new(&requests, 2);
        let expected_cost: f64 = batch.profiles.iter().map(|p| 1.0 + p.len() as f64).sum();
        assert_eq!(batch.len(), 20);
        assert!(!batch.is_empty());
        let _ = flow.run(&RecommendStage::new(&rec, &pool), batch);
        let costs = flow.stage_costs(RECOMMEND_STAGE_NAME).unwrap();
        assert!((costs.iter().sum::<f64>() - expected_cost).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_serves_nothing() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let pool = ScratchPool::new();
        let flow = Dataflow::new(2, 4);
        let out = flow.run(&RecommendStage::new(&rec, &pool), ServeBatch::default());
        assert!(out.is_empty());
    }
}
