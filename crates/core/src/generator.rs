//! AlterEgo generation (§4.3 and the Generator component of §5.3).
//!
//! The generator performs two steps:
//!
//! 1. **Item mapping / replacement selection** — every source-domain item is mapped to a
//!    replacement item in the target domain. Non-privately this is simply the most
//!    X-Sim-similar heterogeneous item; privately it is the **PRS** exponential mechanism
//!    (Algorithm 3), which selects a replacement with probability proportional to
//!    `exp(ε · X-Sim / (2 · GS))`, `GS = 2`.
//! 2. **Mapped user profile** — the user's source-domain ratings are re-addressed to the
//!    replacement items, preserving the rating values and logical timesteps (which is how
//!    AlterEgos retain temporal behaviour across domains). If the user already has
//!    ratings in the target domain they are appended, per footnote 6 of the paper.

use crate::config::{XMapConfig, XMapMode};
use crate::xsim::XSimTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xmap_cf::knn::Profile;
use xmap_cf::{DomainId, ItemId, RatingMatrix, UserId};
use xmap_engine::StageContext;
use xmap_privacy::{exponential_mechanism, Sensitivity};

/// How a source-domain rating value is carried onto its replacement item when building an
/// AlterEgo profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RatingTransfer {
    /// Carry the rating value verbatim — exactly the item-replacement step the paper
    /// describes (§4.3, Figure 3).
    Raw,
    /// Carry the user's *deviation* from the source item's mean rating, re-centred on the
    /// replacement item's mean. An implementation refinement (ablatable, see DESIGN.md):
    /// it prevents popularity differences between the two items from being misread as a
    /// like/dislike signal by the mean-centred CF predictors downstream.
    #[default]
    MeanAdjusted,
}

/// A user's artificial profile in the target domain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlterEgo {
    /// The user the profile belongs to.
    pub user: UserId,
    /// The target-domain profile: `(item, rating, timestep)` triples. Items mapped from
    /// the source domain come first (in source-profile order), any genuine target-domain
    /// ratings of the user are appended.
    pub profile: Profile,
    /// How many entries of `profile` were mapped from the source domain (the remainder
    /// are the user's own target-domain ratings).
    pub n_mapped: usize,
}

impl AlterEgo {
    /// Whether the profile contains any information at all.
    pub fn is_empty(&self) -> bool {
        self.profile.is_empty()
    }
}

/// The item-to-item replacement table produced by the mapping step.
///
/// `PartialEq` compares the full mapping — it is what the delta-fit equivalence gate
/// holds a spliced table ([`AlterEgoGenerator::recompute_replacements_batched`])
/// against a freshly generated one.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplacementTable {
    replacements: HashMap<ItemId, ItemId>,
}

impl ReplacementTable {
    /// Builds a table from explicit `(source, replacement)` pairs. Used by the
    /// sharded router to gather the sub-table owned by each shard back into one
    /// lookup structure; `map_profile_with` only ever consults the profile's own
    /// source items, so a gathered table reproduces the full table's AlterEgos.
    pub(crate) fn from_pairs(
        pairs: impl IntoIterator<Item = (ItemId, ItemId)>,
    ) -> ReplacementTable {
        ReplacementTable {
            replacements: pairs.into_iter().collect(),
        }
    }

    /// The replacement of a source item, if it has one.
    pub fn replacement(&self, item: ItemId) -> Option<ItemId> {
        self.replacements.get(&item).copied()
    }

    /// Number of source items with a replacement.
    pub fn len(&self) -> usize {
        self.replacements.len()
    }

    /// Whether no item has a replacement.
    pub fn is_empty(&self) -> bool {
        self.replacements.is_empty()
    }

    /// Iterates `(source item, replacement)` pairs in ascending source-item order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, ItemId)> + '_ {
        let mut pairs: Vec<(ItemId, ItemId)> =
            self.replacements.iter().map(|(a, b)| (*a, *b)).collect();
        pairs.sort_unstable();
        pairs.into_iter()
    }

    /// Maps a user's source-domain profile into an AlterEgo in the target domain
    /// (the "mapped user profiles" step of §5.3), carrying rating values over verbatim
    /// exactly as the paper describes.
    ///
    /// Rating values and timesteps are carried over; when several source items map to
    /// the same replacement the most recent rating wins; the user's genuine target-domain
    /// ratings are appended and override mapped entries for the same item.
    pub fn map_profile(
        &self,
        matrix: &RatingMatrix,
        user: UserId,
        source_domain: DomainId,
        target_domain: DomainId,
    ) -> AlterEgo {
        self.map_profile_with(
            matrix,
            user,
            source_domain,
            target_domain,
            RatingTransfer::Raw,
        )
    }

    /// Like [`ReplacementTable::map_profile`] but with an explicit rating-transfer rule.
    pub fn map_profile_with(
        &self,
        matrix: &RatingMatrix,
        user: UserId,
        source_domain: DomainId,
        target_domain: DomainId,
        transfer: RatingTransfer,
    ) -> AlterEgo {
        let mut mapped: HashMap<ItemId, (f64, xmap_cf::Timestep)> = HashMap::new();
        let mut order: Vec<ItemId> = Vec::new();
        let mut own_target: Profile = Vec::new();

        for entry in matrix.user_profile(user) {
            let domain = matrix.item_domain(entry.item);
            if domain == source_domain {
                if let Some(replacement) = self.replacement(entry.item) {
                    let value = match transfer {
                        RatingTransfer::Raw => entry.value,
                        RatingTransfer::MeanAdjusted => {
                            // transfer the user's *deviation* from the source item's mean
                            // onto the replacement item's mean, so items with different
                            // popularity levels do not distort the AlterEgo
                            let deviation = entry.value - matrix.item_average(entry.item);
                            matrix
                                .scale()
                                .clamp(matrix.item_average(replacement) + deviation)
                        }
                    };
                    match mapped.get(&replacement) {
                        Some(&(_, t)) if t >= entry.timestep => {}
                        _ => {
                            if !mapped.contains_key(&replacement) {
                                order.push(replacement);
                            }
                            mapped.insert(replacement, (value, entry.timestep));
                        }
                    }
                }
            } else if domain == target_domain {
                own_target.push((entry.item, entry.value, entry.timestep));
            }
        }

        let mut profile: Profile = order
            .into_iter()
            .map(|item| {
                let (value, t) = mapped[&item];
                (item, value, t)
            })
            .collect();
        let n_mapped = profile.len();
        // Do not duplicate items the user has genuinely rated in the target domain: the
        // real rating overrides the mapped one.
        let own_items: Vec<ItemId> = own_target.iter().map(|&(i, _, _)| i).collect();
        profile.retain(|(i, _, _)| !own_items.contains(i));
        let n_mapped = n_mapped.min(profile.len());
        profile.extend(own_target);

        AlterEgo {
            user,
            profile,
            n_mapped,
        }
    }
}

/// Generates AlterEgo profiles from an [`XSimTable`].
pub struct AlterEgoGenerator<'a> {
    matrix: &'a RatingMatrix,
    xsim: &'a XSimTable,
    source_domain: DomainId,
    target_domain: DomainId,
    config: XMapConfig,
    replacements: ReplacementTable,
}

impl<'a> AlterEgoGenerator<'a> {
    /// The replacement draw for one item given its X-Sim candidate list.
    ///
    /// Replacing an item with a *dissimilar* (negatively correlated) heterogeneous
    /// item while keeping the original rating would inject anti-signal into the
    /// AlterEgo, so only positively similar candidates are eligible replacements.
    /// The candidate pool is further restricted to the top-k entries (the extender
    /// only materialises top-k lists per layer, §5.2) so that the private
    /// exponential mechanism — which flattens towards a uniform choice as ε
    /// shrinks — always selects from a pool of reasonable replacements.
    ///
    /// The private draw's RNG stream is derived from `(config.seed, item)` alone, so
    /// the draw is independent of *which* replacements were computed before it — the
    /// property that lets the engine-parallel generator partition items freely while
    /// staying bit-equal to the serial loop.
    fn replacement_for(
        item: ItemId,
        all_candidates: &[crate::xsim::XSimEntry],
        config: &XMapConfig,
    ) -> Option<ItemId> {
        let mut candidates: Vec<crate::xsim::XSimEntry> = all_candidates
            .iter()
            .filter(|c| c.similarity > 0.0)
            .copied()
            .collect();
        candidates.truncate(config.replacement_pool.max(1));
        if candidates.is_empty() {
            return None;
        }
        Some(if config.mode.is_private() {
            // PRS: sample proportionally to exp(ε · X-Sim / (2 · GS)), with the
            // certainty-weighted X-Sim as the score (still bounded in [-1, 1], so the
            // global sensitivity of 2 is unchanged).
            let scores: Vec<f64> = candidates.iter().map(|c| c.weighted_similarity()).collect();
            let mut rng = StdRng::seed_from_u64(
                config.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(item.0) + 1)),
            );
            let idx = exponential_mechanism(
                &mut rng,
                &scores,
                config.privacy.epsilon,
                Sensitivity::XSIM_GLOBAL.value(),
            )
            .expect("candidate list is non-empty and scores are finite"); // lint: panic — reviewed invariant
            candidates[idx].item
        } else {
            candidates[0].item
        })
    }

    /// Materialises the replacement table single-threaded: one
    /// [`AlterEgoGenerator::replacement_for`] draw per X-Sim source item. This is the
    /// reference the engine-parallel generator stage must match exactly.
    pub fn compute_replacements_serial(xsim: &XSimTable, config: &XMapConfig) -> ReplacementTable {
        let mut replacements = HashMap::new();
        for (item, all_candidates) in xsim.iter() {
            if let Some(replacement) = Self::replacement_for(item, all_candidates, config) {
                replacements.insert(item, replacement);
            }
        }
        ReplacementTable { replacements }
    }

    /// Materialises the replacement table partition-parallel on the dataflow engine.
    ///
    /// Source items are sorted (the X-Sim table iterates in hash order, which must not
    /// leak into partition contents), split into the dataflow's partitions by item id,
    /// and every partition draws its items' replacements as one pool task. Because each
    /// draw's RNG stream is derived from `(seed, item)` alone, the assembled table is
    /// **bit-equal** to [`AlterEgoGenerator::compute_replacements_serial`] at any worker
    /// count. One data-derived cost per partition — `Σ (1 + |candidates|)` — is
    /// recorded on the context and lands in the running stage's ledger.
    pub fn compute_replacements_batched(
        xsim: &XSimTable,
        config: &XMapConfig,
        cx: &mut StageContext<'_>,
    ) -> ReplacementTable {
        let mut items: Vec<ItemId> = xsim.iter().map(|(item, _)| item).collect();
        items.sort_unstable();
        let per_partition: Vec<Vec<(ItemId, ItemId)>> = cx.map_partitions(
            items,
            |item| item.0,
            |_ix, part| {
                let mut out: Vec<(ItemId, ItemId)> = Vec::new();
                let mut cost = 0.0f64;
                for &item in part {
                    let all_candidates = xsim.candidates(item);
                    cost += 1.0 + all_candidates.len() as f64;
                    if let Some(replacement) = Self::replacement_for(item, all_candidates, config) {
                        out.push((item, replacement));
                    }
                }
                (out, cost)
            },
        );
        ReplacementTable {
            replacements: per_partition.into_iter().flatten().collect(),
        }
    }

    /// Recomputes the replacement draws of `items` against an (updated) X-Sim table
    /// and splices them into a copy of `previous` — the delta-fit path of the
    /// generator. Items whose fresh candidate list yields no eligible replacement are
    /// *removed* (a full generation never stores them).
    ///
    /// Because every draw's RNG stream derives from `(config.seed, item)` alone, a
    /// recomputed draw over an unchanged candidate list reproduces the previous
    /// replacement bit for bit — so when `items` covers every source item whose X-Sim
    /// row the delta touched, the spliced table equals
    /// [`AlterEgoGenerator::compute_replacements_serial`] over the whole updated
    /// table. Per-partition costs (`Σ (1 + |candidates|)`, the generator's cost model)
    /// land on the running stage's ledger.
    pub fn recompute_replacements_batched(
        xsim: &XSimTable,
        config: &XMapConfig,
        items: Vec<ItemId>,
        previous: &ReplacementTable,
        cx: &mut StageContext<'_>,
    ) -> ReplacementTable {
        let per_partition: Vec<Vec<(ItemId, Option<ItemId>)>> = cx.map_partitions(
            items,
            |item| item.0,
            |_ix, part| {
                let mut out: Vec<(ItemId, Option<ItemId>)> = Vec::new();
                let mut cost = 0.0f64;
                for &item in part {
                    let all_candidates = xsim.candidates(item);
                    cost += 1.0 + all_candidates.len() as f64;
                    out.push((item, Self::replacement_for(item, all_candidates, config)));
                }
                (out, cost)
            },
        );
        let mut replacements = previous.replacements.clone();
        for (item, replacement) in per_partition.into_iter().flatten() {
            match replacement {
                Some(r) => {
                    replacements.insert(item, r);
                }
                None => {
                    replacements.remove(&item);
                }
            }
        }
        ReplacementTable { replacements }
    }

    /// Builds the generator and materialises the replacement table.
    ///
    /// For the private modes every item's replacement is drawn once with the PRS
    /// mechanism and then reused for every user — the replacement table is part of the
    /// released model, so drawing it once per item (rather than per user) spends the ε
    /// budget once, exactly as Algorithm 3 is invoked by the Generator component.
    pub fn new(
        matrix: &'a RatingMatrix,
        xsim: &'a XSimTable,
        source_domain: DomainId,
        target_domain: DomainId,
        config: XMapConfig,
    ) -> Self {
        let replacements = Self::compute_replacements_serial(xsim, &config);
        Self::with_replacements(
            matrix,
            xsim,
            source_domain,
            target_domain,
            config,
            replacements,
        )
    }

    /// Wraps an externally materialised replacement table (e.g. one computed
    /// partition-parallel by [`AlterEgoGenerator::compute_replacements_batched`]).
    pub fn with_replacements(
        matrix: &'a RatingMatrix,
        xsim: &'a XSimTable,
        source_domain: DomainId,
        target_domain: DomainId,
        config: XMapConfig,
        replacements: ReplacementTable,
    ) -> Self {
        AlterEgoGenerator {
            matrix,
            xsim,
            source_domain,
            target_domain,
            config,
            replacements,
        }
    }

    /// The materialised replacement table.
    pub fn replacements(&self) -> &ReplacementTable {
        &self.replacements
    }

    /// The X-Sim table the generator was built from.
    pub fn xsim(&self) -> &XSimTable {
        self.xsim
    }

    /// Generates the AlterEgo profile of one user.
    ///
    /// Every source-domain rating whose item has a replacement contributes one mapped
    /// entry; if several source items map to the same target item, the entry rated most
    /// recently wins (matching the "latest rating wins" semantics of the rating matrix).
    /// The user's genuine target-domain ratings are appended afterwards.
    pub fn generate(&self, user: UserId) -> AlterEgo {
        self.replacements.map_profile_with(
            self.matrix,
            user,
            self.source_domain,
            self.target_domain,
            self.config.transfer,
        )
    }

    /// Generates AlterEgos for a batch of users.
    pub fn generate_batch(&self, users: &[UserId]) -> Vec<AlterEgo> {
        users.iter().map(|&u| self.generate(u)).collect()
    }

    /// The configuration the generator runs under.
    pub fn config(&self) -> &XMapConfig {
        &self.config
    }

    /// Whether the generator applies the private replacement selection.
    pub fn is_private(&self) -> bool {
        matches!(
            self.config.mode,
            XMapMode::XMapItemBased | XMapMode::XMapUserBased
        )
    }
}

impl xmap_store::Codec for RatingTransfer {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_u8(match self {
            RatingTransfer::Raw => 0,
            RatingTransfer::MeanAdjusted => 1,
        });
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        match d.take_u8()? {
            0 => Ok(RatingTransfer::Raw),
            1 => Ok(RatingTransfer::MeanAdjusted),
            tag => Err(d.corrupt(format!("invalid RatingTransfer tag {tag}"))),
        }
    }
}

/// On-disk codec for the replacement table, encoded in **ascending source-item
/// order** for a canonical byte stream (see [`crate::xsim::XSimTable`]'s codec).
impl xmap_store::Codec for ReplacementTable {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        let mut pairs: Vec<(ItemId, ItemId)> =
            self.replacements.iter().map(|(k, v)| (*k, *v)).collect();
        pairs.sort_unstable();
        e.put_usize(pairs.len());
        for (source, replacement) in pairs {
            source.enc(e);
            replacement.enc(e);
        }
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        let len = d.take_len(8, "replacement table")?;
        let mut replacements = HashMap::with_capacity(len);
        for _ in 0..len {
            let source = ItemId::dec(d)?;
            let replacement = ItemId::dec(d)?;
            replacements.insert(source, replacement);
        }
        Ok(ReplacementTable { replacements })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrivacyConfig;
    use xmap_dataset::toy::{items, users, ToyScenario};
    use xmap_engine::WorkerPool;
    use xmap_graph::{GraphConfig, LayerPartition, MetaPathConfig, SimilarityGraph};

    fn setup(mode: XMapMode, epsilon: f64) -> (ToyScenario, XSimTable, XMapConfig) {
        let toy = ToyScenario::build();
        let graph = SimilarityGraph::build(
            &toy.matrix,
            GraphConfig {
                top_k: None,
                ..Default::default()
            },
        );
        let (_, partition) = LayerPartition::from_graph(&graph);
        let table = XSimTable::compute(
            &graph,
            &partition,
            DomainId::SOURCE,
            MetaPathConfig::default(),
            &WorkerPool::new(1),
        );
        let config = XMapConfig {
            mode,
            k: 2,
            privacy: PrivacyConfig {
                epsilon,
                ..PrivacyConfig::default()
            },
            ..Default::default()
        };
        (toy, table, config)
    }

    #[test]
    fn non_private_replacement_is_the_best_xsim_match() {
        let (toy, table, config) = setup(XMapMode::NxMapItemBased, 0.3);
        let gen = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            config,
        );
        assert!(!gen.is_private());
        for (item, replacement) in gen.replacements().iter() {
            assert_eq!(Some(replacement), table.best_match(item).map(|e| e.item));
        }
        assert!(!gen.replacements().is_empty());
    }

    #[test]
    fn alice_gets_a_book_alterego_despite_never_rating_books() {
        let (toy, table, config) = setup(XMapMode::NxMapItemBased, 0.3);
        let gen = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            config,
        );
        let alter = gen.generate(users::ALICE);
        assert!(
            !alter.is_empty(),
            "Alice's AlterEgo must contain mapped book ratings"
        );
        assert_eq!(alter.n_mapped, alter.profile.len());
        for &(item, value, _) in &alter.profile {
            assert_eq!(toy.matrix.item_domain(item), DomainId::TARGET);
            assert!((1.0..=5.0).contains(&value));
        }
    }

    #[test]
    fn mapped_profile_preserves_rating_values_and_timesteps() {
        let (toy, table, config) = setup(XMapMode::NxMapItemBased, 0.3);
        let gen = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            config,
        );
        let alter = gen.generate(users::ALICE);
        // Alice rated Interstellar 5.0 at t=0; its replacement entry must carry 5.0.
        let interstellar_replacement = gen.replacements().replacement(items::INTERSTELLAR);
        if let Some(rep) = interstellar_replacement {
            if let Some(&(_, value, t)) = alter.profile.iter().find(|&&(i, _, _)| i == rep) {
                // the replacement may also receive The Martian's rating if both map to the
                // same book; in that case the later timestep (The Martian, t=1) wins
                assert!(value == 5.0 || value == 4.0);
                assert!(t.0 <= 1);
            }
        }
    }

    #[test]
    fn own_target_ratings_are_appended_and_override_mapped_ones() {
        let (toy, table, config) = setup(XMapMode::NxMapItemBased, 0.3);
        let gen = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            config,
        );
        // Cecilia has genuinely rated The Forever War (5.0) and Dune (4.0): those real
        // ratings must appear exactly once each, overriding any mapped entry.
        let alter = gen.generate(users::CECILIA);
        let forever_war: Vec<_> = alter
            .profile
            .iter()
            .filter(|&&(i, _, _)| i == items::THE_FOREVER_WAR)
            .collect();
        assert_eq!(forever_war.len(), 1);
        assert_eq!(forever_war[0].1, 5.0);
        let dune: Vec<_> = alter
            .profile
            .iter()
            .filter(|&&(i, _, _)| i == items::DUNE)
            .collect();
        assert_eq!(dune.len(), 1);
        assert_eq!(dune[0].1, 4.0);
        assert!(alter.n_mapped <= alter.profile.len());
    }

    #[test]
    fn user_with_no_source_profile_gets_only_their_target_ratings() {
        let (toy, table, config) = setup(XMapMode::NxMapItemBased, 0.3);
        let gen = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            config,
        );
        // Eve rated only books.
        let alter = gen.generate(users::EVE);
        assert_eq!(alter.n_mapped, 0);
        assert_eq!(alter.profile.len(), 3);
        assert!(alter
            .profile
            .iter()
            .any(|&(i, _, _)| i == items::ENDERS_GAME));
    }

    #[test]
    fn private_replacements_stay_within_candidate_sets() {
        let (toy, table, config) = setup(XMapMode::XMapItemBased, 0.3);
        let gen = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            config,
        );
        assert!(gen.is_private());
        for (item, replacement) in gen.replacements().iter() {
            assert!(
                table.candidates(item).iter().any(|c| c.item == replacement),
                "private replacement must come from the candidate set"
            );
        }
    }

    #[test]
    fn private_generation_is_deterministic_per_seed() {
        let (toy, table, config) = setup(XMapMode::XMapItemBased, 0.5);
        let a = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            config,
        );
        let b = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            config,
        );
        let pa: Vec<_> = a.replacements().iter().collect();
        let pb: Vec<_> = b.replacements().iter().collect();
        let mut pa = pa;
        let mut pb = pb;
        pa.sort();
        pb.sort();
        assert_eq!(pa, pb);
    }

    #[test]
    fn high_epsilon_private_mapping_matches_non_private_mapping_often() {
        // With a very weak privacy requirement the exponential mechanism almost always
        // picks the best candidate, so PRS degrades gracefully to the NX-Map mapping
        // (the paper notes X-Map "inherently transforms to NX-Map" as ε grows, §6.3).
        let (toy, table, cfg_private) = setup(XMapMode::XMapItemBased, 100.0);
        let (_, _, cfg_plain) = setup(XMapMode::NxMapItemBased, 0.3);
        let private = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            cfg_private,
        );
        let plain = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            cfg_plain,
        );
        let mut agree = 0;
        let mut total = 0;
        for (item, rep) in plain.replacements().iter() {
            total += 1;
            if private.replacements().replacement(item) == Some(rep) {
                agree += 1;
            }
        }
        assert!(total > 0);
        assert!(
            agree * 2 >= total,
            "with ε=100 most replacements should agree ({agree}/{total})"
        );
    }

    #[test]
    fn batched_replacements_are_bit_equal_to_serial_at_1_2_and_8_workers() {
        use xmap_engine::{fn_stage, Dataflow, StageContext};
        // Both modes matter: the non-private path must pick identical best matches, the
        // private path must replay identical per-item RNG streams from any partition.
        for mode in [XMapMode::NxMapItemBased, XMapMode::XMapItemBased] {
            let (_, table, config) = setup(mode, 0.5);
            let serial = AlterEgoGenerator::compute_replacements_serial(&table, &config);
            let mut reference_costs: Option<Vec<f64>> = None;
            for workers in [1usize, 2, 8] {
                let flow = Dataflow::new(workers, 4);
                let batched = flow.run(
                    &fn_stage(
                        "generator",
                        |xsim: &XSimTable, cx: &mut StageContext<'_>| {
                            AlterEgoGenerator::compute_replacements_batched(xsim, &config, cx)
                        },
                    ),
                    &table,
                );
                let mut serial_pairs: Vec<_> = serial.iter().collect();
                let mut batched_pairs: Vec<_> = batched.iter().collect();
                serial_pairs.sort();
                batched_pairs.sort();
                assert_eq!(
                    batched_pairs, serial_pairs,
                    "{mode:?} at {workers} workers diverged from the serial generator"
                );
                let costs = flow
                    .stage_costs("generator")
                    .expect("generator records task costs");
                assert_eq!(costs.len(), 4, "one task cost per partition");
                match &reference_costs {
                    None => reference_costs = Some(costs),
                    Some(expected) => {
                        assert_eq!(&costs, expected, "{workers} workers changed costs")
                    }
                }
            }
        }
    }

    #[test]
    fn batch_generation_matches_individual_generation() {
        let (toy, table, config) = setup(XMapMode::NxMapItemBased, 0.3);
        let gen = AlterEgoGenerator::new(
            &toy.matrix,
            &table,
            DomainId::SOURCE,
            DomainId::TARGET,
            config,
        );
        let batch = gen.generate_batch(&[users::ALICE, users::BOB]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], gen.generate(users::ALICE));
        assert_eq!(batch[1], gen.generate(users::BOB));
        assert_eq!(gen.config().k, 2);
        assert_eq!(gen.xsim().source_domain(), Some(DomainId::SOURCE));
    }
}
