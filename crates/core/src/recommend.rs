//! The target-domain recommenders consuming AlterEgo profiles (§4.4).
//!
//! All four variants share the same interface: given an AlterEgo profile (an artificial
//! target-domain profile) they predict ratings for target-domain items and rank top-N
//! recommendations.
//!
//! * [`ItemBasedRecommender`] — NX-Map-ib: item-based CF (Equation 4) over the
//!   target-domain training data, with optional temporal weighting (Equation 7).
//! * [`UserBasedRecommender`] — NX-Map-ub: user-based CF (Equations 1–2) where the
//!   AlterEgo plays the role of Alice's profile.
//! * [`PrivateItemBasedRecommender`] — X-Map-ib: the item-based variant with PNSA
//!   neighbour selection and PNCF Laplace noise (Algorithms 4–5).
//! * [`PrivateUserBasedRecommender`] — X-Map-ub: the user-based variant with the same
//!   mechanisms adapted to user–user similarities (global sensitivity 2, see DESIGN.md).

use crate::private::{
    pair_sensitivity, pncf_noisy_similarity, private_neighbor_selection, ScoredCandidate,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use xmap_cf::knn::{profile_average, Profile};
use xmap_cf::topk::top_k;
use xmap_cf::{ItemId, ItemKnn, ItemKnnConfig, RatingMatrix, Timestep, UserKnn, UserKnnConfig};

/// Common interface of the four target-domain recommenders.
pub trait ProfileRecommender {
    /// Predicted rating of `item` for the given (AlterEgo) profile.
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64;

    /// Top-N recommendations for the profile, excluding the profile's own items.
    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)>;

    /// Label matching the paper's figure legends.
    fn label(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Non-private item-based (NX-Map-ib)
// ---------------------------------------------------------------------------

/// Item-based CF over the target domain, owned (no borrows into the training matrix).
pub struct ItemBasedRecommender {
    target: RatingMatrix,
    /// Top-k similar target items per item, indexed by item id.
    neighbors: Vec<Vec<(ItemId, f64)>>,
    temporal_alpha: f64,
}

impl ItemBasedRecommender {
    /// Fits the recommender on the target-domain training matrix.
    pub fn fit(target: RatingMatrix, k: usize, temporal_alpha: f64) -> crate::Result<Self> {
        let knn = ItemKnn::fit(
            &target,
            ItemKnnConfig {
                k,
                temporal_alpha,
                ..Default::default()
            },
        )?;
        let neighbors: Vec<Vec<(ItemId, f64)>> = (0..target.n_items() as u32)
            .map(|i| {
                knn.neighbors(ItemId(i))
                    .iter()
                    .map(|n| (n.item, n.similarity))
                    .collect()
            })
            .collect();
        drop(knn);
        Ok(ItemBasedRecommender {
            target,
            neighbors,
            temporal_alpha,
        })
    }

    /// The target-domain training matrix.
    pub fn target(&self) -> &RatingMatrix {
        &self.target
    }

    /// The precomputed neighbours of an item.
    pub fn neighbors(&self, item: ItemId) -> &[(ItemId, f64)] {
        self.neighbors
            .get(item.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    fn predict_impl(&self, profile: &Profile, item: ItemId) -> f64 {
        predict_item_based(
            &self.target,
            self.neighbors(item),
            profile,
            item,
            self.temporal_alpha,
            |_, s| s,
        )
    }
}

impl ProfileRecommender for ItemBasedRecommender {
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        self.predict_impl(profile, item)
    }

    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        recommend_from_neighbors(
            profile,
            n,
            |i| self.neighbors(i),
            |p, i| self.predict_impl(p, i),
        )
    }

    fn label(&self) -> &'static str {
        "NX-MAP-IB"
    }
}

// ---------------------------------------------------------------------------
// Non-private user-based (NX-Map-ub)
// ---------------------------------------------------------------------------

/// User-based CF over the target domain where the query profile is the AlterEgo.
pub struct UserBasedRecommender {
    target: RatingMatrix,
    k: usize,
}

impl UserBasedRecommender {
    /// Creates the recommender over the target-domain training matrix.
    pub fn fit(target: RatingMatrix, k: usize) -> crate::Result<Self> {
        if k == 0 {
            return Err(crate::XMapError::InvalidConfig(
                "k must be at least 1".into(),
            ));
        }
        Ok(UserBasedRecommender { target, k })
    }

    /// The target-domain training matrix.
    pub fn target(&self) -> &RatingMatrix {
        &self.target
    }

    fn knn(&self) -> UserKnn<'_> {
        UserKnn::new(
            &self.target,
            UserKnnConfig {
                k: self.k,
                min_similarity: 0.0,
            },
        )
        .expect("k validated at construction")
    }
}

impl ProfileRecommender for UserBasedRecommender {
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        self.knn().predict_for_profile(profile, item)
    }

    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        self.knn().recommend_for_profile(profile, n)
    }

    fn label(&self) -> &'static str {
        "NX-MAP-UB"
    }
}

// ---------------------------------------------------------------------------
// Private item-based (X-Map-ib)
// ---------------------------------------------------------------------------

/// Item-based CF with PNSA neighbour selection and PNCF Laplace noise.
pub struct PrivateItemBasedRecommender {
    target: RatingMatrix,
    /// Candidate neighbours (with sensitivities) per item, larger than k so PNSA has a
    /// meaningful pool to select from.
    candidates: Vec<Vec<ScoredCandidate>>,
    k: usize,
    epsilon_prime: f64,
    rho: f64,
    temporal_alpha: f64,
    seed: u64,
}

impl PrivateItemBasedRecommender {
    /// Fits the recommender: the candidate pool per item is the `k + k/4` most similar
    /// items (so the exponential mechanism can also pick sub-optimal neighbours, which is
    /// where the selection privacy comes from), each annotated with its similarity-based
    /// sensitivity. The pool is kept close to `k` because on small catalogues a very wide
    /// pool makes the ε′-constrained selection close to uniform over the catalogue — a
    /// scale artefact the paper's 400K-item catalogue does not exhibit (see DESIGN.md).
    pub fn fit(
        target: RatingMatrix,
        k: usize,
        epsilon_prime: f64,
        rho: f64,
        temporal_alpha: f64,
        seed: u64,
    ) -> crate::Result<Self> {
        let pool_size = (k + k / 4).max(4);
        let knn = ItemKnn::fit(
            &target,
            ItemKnnConfig {
                k: pool_size,
                temporal_alpha,
                ..Default::default()
            },
        )?;
        let candidates: Vec<Vec<ScoredCandidate>> = (0..target.n_items() as u32)
            .map(|i| {
                knn.neighbors(ItemId(i))
                    .iter()
                    .map(|n| ScoredCandidate {
                        item: n.item,
                        similarity: n.similarity,
                        sensitivity: pair_sensitivity(&target, ItemId(i), n.item),
                    })
                    .collect()
            })
            .collect();
        drop(knn);
        Ok(PrivateItemBasedRecommender {
            target,
            candidates,
            k,
            epsilon_prime,
            rho,
            temporal_alpha,
            seed,
        })
    }

    /// The target-domain training matrix.
    pub fn target(&self) -> &RatingMatrix {
        &self.target
    }

    /// The candidate pool of an item (before private selection).
    pub fn candidates(&self, item: ItemId) -> &[ScoredCandidate] {
        self.candidates
            .get(item.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    fn predict_impl(&self, profile: &Profile, item: ItemId) -> f64 {
        // Deterministic per (seed, item): repeated queries for the same item release the
        // same randomised output rather than averaging the noise away.
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (0x5851_f42d_4c95_7f2du64.wrapping_mul(u64::from(item.0) + 1)),
        );
        let selected = private_neighbor_selection(
            &mut rng,
            self.candidates(item),
            self.k,
            self.epsilon_prime,
            self.rho,
            self.target.n_items().max(self.k + 1),
        );
        let neighbor_sims: Vec<(ItemId, f64)> = selected
            .iter()
            .map(|c| {
                // Clamping the noisy similarity back into the metric's public range is
                // post-processing and therefore privacy-free; it bounds the damage of
                // large Laplace draws on sparsely supported pairs.
                let noisy = pncf_noisy_similarity(
                    &mut rng,
                    c.similarity,
                    c.sensitivity,
                    self.epsilon_prime,
                )
                .clamp(-1.0, 1.0);
                (c.item, noisy)
            })
            .collect();
        predict_item_based(
            &self.target,
            &neighbor_sims,
            profile,
            item,
            self.temporal_alpha,
            |_, s| s,
        )
    }
}

impl ProfileRecommender for PrivateItemBasedRecommender {
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        self.predict_impl(profile, item)
    }

    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        recommend_from_neighbors(
            profile,
            n,
            |i| {
                // candidate pools drive the candidate generation; selection happens inside
                // the prediction for each candidate item
                self.candidates
                    .get(i.index())
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                self.candidates(i)
            },
            |p, i| self.predict_impl(p, i),
        )
    }

    fn label(&self) -> &'static str {
        "X-MAP-IB"
    }
}

// ---------------------------------------------------------------------------
// Private user-based (X-Map-ub)
// ---------------------------------------------------------------------------

/// User-based CF with private neighbour selection and noisy similarities.
///
/// The paper formulates PNSA/PNCF in item terms; for the user-based variant we apply the
/// same mechanisms to user–user similarities with the metric's global sensitivity
/// (range `[-1, 1]`, so `GS = 2`) — see the substitution notes in DESIGN.md.
pub struct PrivateUserBasedRecommender {
    target: RatingMatrix,
    k: usize,
    epsilon_prime: f64,
    rho: f64,
    seed: u64,
}

impl PrivateUserBasedRecommender {
    /// Creates the recommender.
    pub fn fit(
        target: RatingMatrix,
        k: usize,
        epsilon_prime: f64,
        rho: f64,
        seed: u64,
    ) -> crate::Result<Self> {
        if k == 0 {
            return Err(crate::XMapError::InvalidConfig(
                "k must be at least 1".into(),
            ));
        }
        Ok(PrivateUserBasedRecommender {
            target,
            k,
            epsilon_prime,
            rho,
            seed,
        })
    }

    /// The target-domain training matrix.
    pub fn target(&self) -> &RatingMatrix {
        &self.target
    }

    fn private_neighbors(&self, profile: &Profile, salt: u64) -> Vec<(xmap_cf::UserId, f64)> {
        const USER_SIM_GLOBAL_SENSITIVITY: f64 = 2.0;
        let knn = UserKnn::new(
            &self.target,
            UserKnnConfig {
                // gather a slightly larger pool than k so the exponential mechanism has
                // room without collapsing to a uniform choice over the whole user base
                k: (self.k + self.k / 4).max(4),
                min_similarity: 0.0,
            },
        )
        .expect("k validated at construction");
        let pool = knn.neighbors_of_profile(profile);
        let candidates: Vec<ScoredCandidate> = pool
            .iter()
            .enumerate()
            .map(|(idx, &(_, sim))| ScoredCandidate {
                // encode the pool position in the item id slot; resolved back below
                item: ItemId(idx as u32),
                similarity: sim,
                sensitivity: USER_SIM_GLOBAL_SENSITIVITY,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ salt);
        let selected = private_neighbor_selection(
            &mut rng,
            &candidates,
            self.k,
            self.epsilon_prime,
            self.rho,
            self.target.n_users().max(self.k + 1),
        );
        selected
            .into_iter()
            .map(|c| {
                let (user, sim) = pool[c.item.index()];
                // post-processing clamp into the similarity range (privacy-free)
                let noisy = pncf_noisy_similarity(&mut rng, sim, c.sensitivity, self.epsilon_prime)
                    .clamp(-1.0, 1.0);
                (user, noisy)
            })
            .collect()
    }

    fn predict_impl(&self, profile: &Profile, item: ItemId) -> f64 {
        let neighbors = self.private_neighbors(profile, 0x9e37_79b9u64 ^ u64::from(item.0));
        let avg = profile_average(profile).unwrap_or_else(|| self.target.global_average());
        let mut num = 0.0;
        let mut den = 0.0;
        for &(b, sim) in &neighbors {
            if let Some(r) = self.target.rating(b, item) {
                num += sim * (r - self.target.user_average(b));
                den += sim.abs();
            }
        }
        let raw = if den < 1e-12 { avg } else { avg + num / den };
        self.target.scale().clamp(raw)
    }
}

impl ProfileRecommender for PrivateUserBasedRecommender {
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        self.predict_impl(profile, item)
    }

    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        // candidate items: anything rated by the (private) neighbourhood of the profile
        let neighbors = self.private_neighbors(profile, 0xfeed_beefu64);
        let owned: Vec<ItemId> = profile.iter().map(|&(i, _, _)| i).collect();
        let mut candidates: Vec<ItemId> = Vec::new();
        for &(u, _) in &neighbors {
            for e in self.target.user_profile(u) {
                candidates.push(e.item);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let scored = candidates
            .into_iter()
            .filter(|i| !owned.contains(i))
            .map(|i| (self.predict_impl(profile, i), i));
        top_k(n, scored).into_iter().map(|(s, i)| (i, s)).collect()
    }

    fn label(&self) -> &'static str {
        "X-MAP-UB"
    }
}

// ---------------------------------------------------------------------------
// Shared prediction helpers
// ---------------------------------------------------------------------------

/// Equation 4 / 7 prediction shared by the item-based recommenders: given neighbour
/// `(item, similarity)` pairs of `item`, combine the profile's ratings of those
/// neighbours. `transform` lets callers post-process each similarity (identity for the
/// non-private path; PNCF noise is already applied by the caller in the private path).
fn predict_item_based(
    target: &RatingMatrix,
    neighbor_sims: &[(ItemId, f64)],
    profile: &Profile,
    item: ItemId,
    temporal_alpha: f64,
    transform: impl Fn(ItemId, f64) -> f64,
) -> f64 {
    let item_avg = target.item_average(item);
    let now: Timestep = profile
        .iter()
        .map(|&(_, _, t)| t)
        .max()
        .unwrap_or(Timestep(0));
    let ratings: HashMap<ItemId, (f64, Timestep)> =
        profile.iter().map(|&(i, v, t)| (i, (v, t))).collect();
    let mut num = 0.0;
    let mut den = 0.0;
    for &(j, sim) in neighbor_sims {
        if let Some(&(r, t)) = ratings.get(&j) {
            let weight = if temporal_alpha > 0.0 {
                (-temporal_alpha * now.elapsed_since(t) as f64).exp()
            } else {
                1.0
            };
            let s = transform(j, sim);
            num += s * (r - target.item_average(j)) * weight;
            den += s.abs() * weight;
        }
    }
    let raw = if den < 1e-12 {
        item_avg
    } else {
        item_avg + num / den
    };
    target.scale().clamp(raw)
}

/// Shared top-N ranking: candidates are the neighbours of the profile's items.
fn recommend_from_neighbors<'a, C: 'a + NeighborLike>(
    profile: &Profile,
    n: usize,
    neighbors_of: impl Fn(ItemId) -> &'a [C],
    predict: impl Fn(&Profile, ItemId) -> f64,
) -> Vec<(ItemId, f64)> {
    let owned: Vec<ItemId> = profile.iter().map(|&(i, _, _)| i).collect();
    let mut candidates: Vec<ItemId> = Vec::new();
    for &(i, _, _) in profile {
        for c in neighbors_of(i) {
            candidates.push(c.item_id());
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    let scored = candidates
        .into_iter()
        .filter(|i| !owned.contains(i))
        .map(|i| (predict(profile, i), i));
    top_k(n, scored).into_iter().map(|(s, i)| (i, s)).collect()
}

/// Anything that names a neighbouring item.
trait NeighborLike {
    fn item_id(&self) -> ItemId;
}

impl NeighborLike for (ItemId, f64) {
    fn item_id(&self) -> ItemId {
        self.0
    }
}

impl NeighborLike for ScoredCandidate {
    fn item_id(&self) -> ItemId {
        self.item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_cf::knn::profile_from_pairs;
    use xmap_cf::{DomainId, RatingMatrixBuilder};

    /// Target-domain matrix with two item clusters (0-2 liked together, 3-5 liked
    /// together by the other half of the users).
    fn target_matrix() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for u in 0..4u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
        }
        for u in 4..8u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
        }
        for i in 0..6u32 {
            b.set_item_domain(ItemId(i), DomainId::TARGET);
        }
        b.build().unwrap()
    }

    fn cluster_profile() -> Profile {
        profile_from_pairs([(ItemId(0), 5.0), (ItemId(1), 4.0)])
    }

    #[test]
    fn item_based_follows_the_profile_cluster() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let p = cluster_profile();
        let liked = rec.predict_for_profile(&p, ItemId(2));
        let disliked = rec.predict_for_profile(&p, ItemId(4));
        assert!(liked > disliked, "{liked} vs {disliked}");
        let recs = rec.recommend_for_profile(&p, 3);
        assert_eq!(recs[0].0, ItemId(2));
        assert!(recs.iter().all(|(i, _)| *i != ItemId(0) && *i != ItemId(1)));
        assert_eq!(rec.label(), "NX-MAP-IB");
        assert!(!rec.neighbors(ItemId(0)).is_empty());
        assert_eq!(rec.target().n_items(), 6);
    }

    #[test]
    fn user_based_follows_the_profile_cluster() {
        let rec = UserBasedRecommender::fit(target_matrix(), 3).unwrap();
        let p = cluster_profile();
        let liked = rec.predict_for_profile(&p, ItemId(2));
        let disliked = rec.predict_for_profile(&p, ItemId(4));
        assert!(liked > disliked, "{liked} vs {disliked}");
        let recs = rec.recommend_for_profile(&p, 2);
        assert_eq!(recs[0].0, ItemId(2));
        assert_eq!(rec.label(), "NX-MAP-UB");
        assert!(UserBasedRecommender::fit(target_matrix(), 0).is_err());
    }

    #[test]
    fn private_item_based_is_noisier_but_still_directionally_correct() {
        let rec = PrivateItemBasedRecommender::fit(target_matrix(), 3, 5.0, 0.05, 0.0, 7).unwrap();
        let p = cluster_profile();
        let liked = rec.predict_for_profile(&p, ItemId(2));
        let disliked = rec.predict_for_profile(&p, ItemId(4));
        // with a generous ε′ the ordering should survive the noise
        assert!(liked > disliked, "{liked} vs {disliked}");
        assert_eq!(rec.label(), "X-MAP-IB");
        assert!(!rec.candidates(ItemId(0)).is_empty());
        assert_eq!(rec.target().n_users(), 8);
        let recs = rec.recommend_for_profile(&p, 3);
        assert!(!recs.is_empty());
        for (i, _) in recs {
            assert!(i != ItemId(0) && i != ItemId(1));
        }
    }

    #[test]
    fn private_predictions_are_deterministic_per_seed_and_vary_across_seeds() {
        let p = cluster_profile();
        let a = PrivateItemBasedRecommender::fit(target_matrix(), 3, 0.5, 0.05, 0.0, 7).unwrap();
        let b = PrivateItemBasedRecommender::fit(target_matrix(), 3, 0.5, 0.05, 0.0, 7).unwrap();
        assert_eq!(
            a.predict_for_profile(&p, ItemId(2)),
            b.predict_for_profile(&p, ItemId(2))
        );
        let c = PrivateItemBasedRecommender::fit(target_matrix(), 3, 0.5, 0.05, 0.0, 1234).unwrap();
        // different seeds usually give different noise; check over several items
        let differs = (0..6u32)
            .any(|i| a.predict_for_profile(&p, ItemId(i)) != c.predict_for_profile(&p, ItemId(i)));
        assert!(
            differs,
            "different seeds should perturb at least one prediction"
        );
    }

    #[test]
    fn stronger_privacy_degrades_item_based_accuracy_on_average() {
        let target = target_matrix();
        let p = cluster_profile();
        // ground truth: item 2 should be ~5, item 4 should be ~1
        let truth = [(ItemId(2), 5.0), (ItemId(4), 1.0)];
        let error_for = |eps: f64, seed: u64| {
            let rec =
                PrivateItemBasedRecommender::fit(target.clone(), 3, eps, 0.05, 0.0, seed).unwrap();
            truth
                .iter()
                .map(|&(i, t)| (rec.predict_for_profile(&p, i) - t).abs())
                .sum::<f64>()
                / truth.len() as f64
        };
        let mut strict = 0.0;
        let mut loose = 0.0;
        for seed in 0..30u64 {
            strict += error_for(0.05, seed);
            loose += error_for(10.0, seed);
        }
        assert!(
            strict >= loose,
            "stronger privacy (smaller ε′) should not beat weaker privacy on average: {strict} vs {loose}"
        );
    }

    #[test]
    fn private_user_based_runs_and_respects_scale() {
        let rec = PrivateUserBasedRecommender::fit(target_matrix(), 3, 2.0, 0.05, 11).unwrap();
        let p = cluster_profile();
        for i in 0..6u32 {
            let v = rec.predict_for_profile(&p, ItemId(i));
            assert!((1.0..=5.0).contains(&v));
        }
        let recs = rec.recommend_for_profile(&p, 4);
        assert!(!recs.is_empty());
        for (i, _) in &recs {
            assert!(*i != ItemId(0) && *i != ItemId(1));
        }
        assert_eq!(rec.label(), "X-MAP-UB");
        assert_eq!(rec.target().n_users(), 8);
        assert!(PrivateUserBasedRecommender::fit(target_matrix(), 0, 2.0, 0.05, 1).is_err());
    }

    #[test]
    fn temporal_alpha_changes_item_based_predictions() {
        let flat = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let decayed = ItemBasedRecommender::fit(target_matrix(), 5, 0.3).unwrap();
        // profile: old high rating on item 0, recent low rating on item 1
        let profile: Profile = vec![
            (ItemId(0), 5.0, Timestep(0)),
            (ItemId(1), 1.0, Timestep(50)),
        ];
        let p_flat = flat.predict_for_profile(&profile, ItemId(2));
        let p_decay = decayed.predict_for_profile(&profile, ItemId(2));
        assert!(
            p_decay <= p_flat + 1e-9,
            "decay must favour the recent low rating: {p_decay} vs {p_flat}"
        );
    }

    #[test]
    fn empty_profile_falls_back_to_item_average() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let empty: Profile = Vec::new();
        let pred = rec.predict_for_profile(&empty, ItemId(3));
        assert!((pred - rec.target().item_average(ItemId(3))).abs() < 1e-9);
        assert!(rec.recommend_for_profile(&empty, 3).is_empty());
        let urec = UserBasedRecommender::fit(target_matrix(), 3).unwrap();
        let upred = urec.predict_for_profile(&empty, ItemId(3));
        assert!((1.0..=5.0).contains(&upred));
    }

    #[test]
    fn predictions_ignore_unknown_items_gracefully() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let p = cluster_profile();
        let v = rec.predict_for_profile(&p, ItemId(999));
        assert!((1.0..=5.0).contains(&v));
        assert!(rec.neighbors(ItemId(999)).is_empty());
    }
}
