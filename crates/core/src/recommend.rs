//! The target-domain recommenders consuming AlterEgo profiles (§4.4).
//!
//! All four variants share the same interface: given an AlterEgo profile (an artificial
//! target-domain profile) they predict ratings for target-domain items and rank top-N
//! recommendations.
//!
//! * [`ItemBasedRecommender`] — NX-Map-ib: item-based CF (Equation 4) over the
//!   target-domain training data, with optional temporal weighting (Equation 7).
//! * [`UserBasedRecommender`] — NX-Map-ub: user-based CF (Equations 1–2) where the
//!   AlterEgo plays the role of Alice's profile.
//! * [`PrivateItemBasedRecommender`] — X-Map-ib: the item-based variant with PNSA
//!   neighbour selection and PNCF Laplace noise (Algorithms 4–5).
//! * [`PrivateUserBasedRecommender`] — X-Map-ub: the user-based variant with the same
//!   mechanisms adapted to user–user similarities (global sensitivity 2, see DESIGN.md).

use crate::private::{
    pair_sensitivity, pncf_noisy_similarity, private_neighbor_selection, ScoredCandidate,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xmap_cf::knn::{profile_average, ItemNeighbor, Profile};
use xmap_cf::topk::top_k;
use xmap_cf::{
    ItemId, ItemKnn, ItemKnnConfig, RatingMatrix, Timestep, UserId, UserKnn, UserKnnConfig,
};
use xmap_privacy::PrivacyBudget;

/// Common interface of the four target-domain recommenders.
pub trait ProfileRecommender {
    /// Predicted rating of `item` for the given (AlterEgo) profile.
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64;

    /// Top-N recommendations for the profile, excluding the profile's own items.
    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)>;

    /// Top-N recommendations for a batch of profiles, one result per profile in input
    /// order. Takes profile references so serving partitions can hand their requests
    /// over without copying profile contents.
    ///
    /// The contract is **bit-identity** with [`ProfileRecommender::recommend_for_profile`]
    /// called once per profile — overrides exist purely to reuse per-profile scratch
    /// (dense rating buffers, neighbour pools) across the batch, never to change
    /// results. The batched serving stage relies on this to stay equivalent to the
    /// per-profile reference at any worker count.
    fn recommend_batch(&self, profiles: &[&Profile], n: usize) -> Vec<Vec<(ItemId, f64)>> {
        profiles
            .iter()
            .map(|p| self.recommend_for_profile(p, n))
            .collect()
    }

    /// Like [`ProfileRecommender::recommend_batch`], but folding the batch through a
    /// caller-owned [`ProfileScratch`] instead of the implicit thread-local one.
    ///
    /// The serving stage checks scratch out of the model's [`ScratchPool`] so the
    /// dense buffers survive *across* batches (worker threads are scoped per batch,
    /// which kills thread-local scratch with them). Same bit-identity contract as
    /// `recommend_batch`: epoch invalidation in [`ProfileScratch`] makes buffer reuse
    /// invisible in the outputs. The default ignores the scratch — recommenders that
    /// keep no dense per-profile state have nothing to reuse.
    fn recommend_batch_with_scratch(
        &self,
        profiles: &[&Profile],
        n: usize,
        _scratch: &mut ProfileScratch,
    ) -> Vec<Vec<(ItemId, f64)>> {
        self.recommend_batch(profiles, n)
    }

    /// Label matching the paper's figure legends.
    fn label(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Dense profile scratch
// ---------------------------------------------------------------------------

/// Reusable dense profile lookup, replacing the per-prediction `HashMap` of the
/// item-based hot path.
///
/// Entries are keyed by item *index* and invalidated wholesale by bumping an epoch
/// counter, so loading a profile is `O(|profile|)` regardless of how many profiles the
/// buffer served before. One scratch is reused across all candidate predictions of a
/// profile, and — in the batched serving path — across all profiles of a partition.
#[derive(Debug, Default)]
pub struct ProfileScratch {
    /// Epoch marker per item slot; a slot is live iff its marker equals `current`.
    epoch: Vec<u32>,
    value: Vec<f64>,
    time: Vec<Timestep>,
    current: u32,
    /// The loaded profile's most recent timestep (the temporal "now" of Equation 7).
    now: Timestep,
}

impl ProfileScratch {
    /// An empty scratch; buffers grow on first load.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a profile, invalidating whatever was loaded before. Later duplicate items
    /// overwrite earlier ones, matching `HashMap::from_iter` semantics.
    ///
    /// `n_items` bounds the dense buffers to the recommender's catalogue: profile
    /// entries with out-of-catalogue ids are skipped — they can never match a neighbour
    /// (neighbour pools only hold catalogue items), and sizing buffers by a raw,
    /// possibly corrupted id would allocate unboundedly. `now` still considers the full
    /// profile, matching the previous `HashMap` path bit for bit.
    pub(crate) fn load(&mut self, profile: &Profile, n_items: usize) {
        self.current = self.current.wrapping_add(1);
        if self.current == 0 {
            // epoch counter wrapped: clear the markers so stale slots cannot alias
            self.epoch.iter_mut().for_each(|e| *e = 0);
            self.current = 1;
        }
        self.now = profile
            .iter()
            .map(|&(_, _, t)| t)
            .max()
            .unwrap_or(Timestep(0));
        for &(i, v, t) in profile {
            let ix = i.index();
            if ix >= n_items {
                continue;
            }
            if ix >= self.epoch.len() {
                self.epoch.resize(ix + 1, 0);
                self.value.resize(ix + 1, 0.0);
                self.time.resize(ix + 1, Timestep(0));
            }
            self.epoch[ix] = self.current;
            self.value[ix] = v;
            self.time[ix] = t;
        }
    }

    /// The loaded profile's rating of `item`, if any.
    fn get(&self, item: ItemId) -> Option<(f64, Timestep)> {
        let ix = item.index();
        if ix < self.epoch.len() && self.epoch[ix] == self.current {
            Some((self.value[ix], self.time[ix]))
        } else {
            None
        }
    }
}

thread_local! {
    /// Per-thread scratch backing the single-call entry points, so evaluation loops
    /// that predict one rating at a time amortise the dense buffers exactly like the
    /// batched path does. Epoch invalidation makes reuse across unrelated profiles safe.
    static THREAD_SCRATCH: std::cell::RefCell<ProfileScratch> =
        std::cell::RefCell::new(ProfileScratch::new());
}

/// Runs `f` with the calling thread's reusable [`ProfileScratch`].
fn with_thread_scratch<R>(f: impl FnOnce(&mut ProfileScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// A model-owned pool of [`ProfileScratch`] buffers for batched serving.
///
/// The worker pool scopes its threads to each batch, so thread-local scratch dies
/// when a batch completes; this pool keeps the warmed dense buffers alive *across*
/// batches instead. Serving partitions check a scratch out, fold their profiles
/// through it ([`ProfileRecommender::recommend_batch_with_scratch`]) and hand it
/// back. Reuse is bit-invisible: [`ProfileScratch`] invalidates by epoch bump on
/// every load, so a recycled buffer answers exactly like a fresh one.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: std::sync::Mutex<Vec<ProfileScratch>>,
}

impl ScratchPool {
    /// An empty pool; scratches are created on demand and retained on give-back.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a scratch out of the pool, creating a fresh one if none is available.
    pub fn checkout(&self) -> ProfileScratch {
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch to the pool for the next batch to reuse.
    pub fn give_back(&self, scratch: ProfileScratch) {
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(scratch);
    }

    /// How many warmed scratches are currently parked in the pool.
    pub fn available(&self) -> usize {
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

// ---------------------------------------------------------------------------
// Non-private item-based (NX-Map-ib)
// ---------------------------------------------------------------------------

/// Item-based CF over the target domain, owned (no borrows into the training matrix).
pub struct ItemBasedRecommender {
    target: RatingMatrix,
    /// Top-k similar target items per item, indexed by item id — the fitted `ItemKnn`
    /// pools, handed over without copying.
    neighbors: Vec<Vec<ItemNeighbor>>,
    temporal_alpha: f64,
}

impl ItemBasedRecommender {
    /// Fits the recommender on the target-domain training matrix.
    pub fn fit(target: RatingMatrix, k: usize, temporal_alpha: f64) -> crate::Result<Self> {
        let neighbors = ItemKnn::fit(
            &target,
            ItemKnnConfig {
                k,
                temporal_alpha,
                ..Default::default()
            },
        )?
        .into_neighbors();
        Self::from_pools(target, k, temporal_alpha, neighbors)
    }

    /// Builds the recommender from externally fitted neighbour pools — pools the
    /// engine-parallel recommender stage computed partition-parallel via
    /// [`ItemKnn::candidate_sets`] + [`ItemKnn::neighbors_from_candidates`]. Equivalent
    /// to [`ItemBasedRecommender::fit`] when the pools are `ItemKnn::fit`'s (which the
    /// parallel build guarantees bit for bit).
    ///
    /// [`ItemKnn::candidate_sets`]: xmap_cf::ItemKnn::candidate_sets
    /// [`ItemKnn::neighbors_from_candidates`]: xmap_cf::ItemKnn::neighbors_from_candidates
    pub fn from_pools(
        target: RatingMatrix,
        k: usize,
        temporal_alpha: f64,
        pools: Vec<Vec<ItemNeighbor>>,
    ) -> crate::Result<Self> {
        // `ItemKnn::from_pools` validates the (k, α) configuration and hands the pools
        // back untouched.
        let neighbors = ItemKnn::from_pools(
            &target,
            ItemKnnConfig {
                k,
                temporal_alpha,
                ..Default::default()
            },
            pools,
        )?
        .into_neighbors();
        Ok(ItemBasedRecommender {
            target,
            neighbors,
            temporal_alpha,
        })
    }

    /// The target-domain training matrix.
    pub fn target(&self) -> &RatingMatrix {
        &self.target
    }

    /// The precomputed neighbours of an item.
    pub fn neighbors(&self, item: ItemId) -> &[ItemNeighbor] {
        self.neighbors
            .get(item.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub(crate) fn predict_with_scratch(&self, scratch: &ProfileScratch, item: ItemId) -> f64 {
        predict_item_based(
            &self.target,
            self.neighbors(item),
            scratch,
            item,
            self.temporal_alpha,
        )
    }

    fn recommend_with_scratch(
        &self,
        scratch: &mut ProfileScratch,
        profile: &Profile,
        n: usize,
    ) -> Vec<(ItemId, f64)> {
        scratch.load(profile, self.target.n_items());
        recommend_from_neighbors(
            profile,
            n,
            |i| self.neighbors(i),
            |i| self.predict_with_scratch(scratch, i),
        )
    }
}

impl ProfileRecommender for ItemBasedRecommender {
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        with_thread_scratch(|scratch| {
            scratch.load(profile, self.target.n_items());
            self.predict_with_scratch(scratch, item)
        })
    }

    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        with_thread_scratch(|scratch| self.recommend_with_scratch(scratch, profile, n))
    }

    fn recommend_batch(&self, profiles: &[&Profile], n: usize) -> Vec<Vec<(ItemId, f64)>> {
        with_thread_scratch(|scratch| self.recommend_batch_with_scratch(profiles, n, scratch))
    }

    fn recommend_batch_with_scratch(
        &self,
        profiles: &[&Profile],
        n: usize,
        scratch: &mut ProfileScratch,
    ) -> Vec<Vec<(ItemId, f64)>> {
        profiles
            .iter()
            .map(|p| self.recommend_with_scratch(scratch, p, n))
            .collect()
    }

    fn label(&self) -> &'static str {
        "NX-MAP-IB"
    }
}

// ---------------------------------------------------------------------------
// Non-private user-based (NX-Map-ub)
// ---------------------------------------------------------------------------

/// User-based CF over the target domain where the query profile is the AlterEgo.
pub struct UserBasedRecommender {
    target: RatingMatrix,
    k: usize,
}

impl UserBasedRecommender {
    /// Creates the recommender over the target-domain training matrix.
    pub fn fit(target: RatingMatrix, k: usize) -> crate::Result<Self> {
        if k == 0 {
            return Err(crate::XMapError::InvalidConfig(
                "k must be at least 1".into(),
            ));
        }
        Ok(UserBasedRecommender { target, k })
    }

    /// The target-domain training matrix.
    pub fn target(&self) -> &RatingMatrix {
        &self.target
    }

    pub(crate) fn knn(&self) -> UserKnn<'_> {
        UserKnn::new(
            &self.target,
            UserKnnConfig {
                k: self.k,
                min_similarity: 0.0,
            },
        )
        .expect("k validated at construction") // lint: panic — reviewed invariant
    }
}

impl ProfileRecommender for UserBasedRecommender {
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        self.knn().predict_for_profile(profile, item)
    }

    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        self.knn().recommend_for_profile(profile, n)
    }

    fn label(&self) -> &'static str {
        "NX-MAP-UB"
    }
}

// ---------------------------------------------------------------------------
// Private item-based (X-Map-ib)
// ---------------------------------------------------------------------------

/// Item-based CF with PNSA neighbour selection and PNCF Laplace noise.
pub struct PrivateItemBasedRecommender {
    target: RatingMatrix,
    /// Candidate neighbours (with sensitivities) per item, larger than k so PNSA has a
    /// meaningful pool to select from.
    candidates: Vec<Vec<ScoredCandidate>>,
    k: usize,
    epsilon_prime: f64,
    rho: f64,
    temporal_alpha: f64,
    seed: u64,
}

impl PrivateItemBasedRecommender {
    /// Fits the recommender: the candidate pool per item is the `k + k/4` most similar
    /// items (so the exponential mechanism can also pick sub-optimal neighbours, which is
    /// where the selection privacy comes from), each annotated with its similarity-based
    /// sensitivity — the `pair_sensitivity` table is precomputed here, next to the pools,
    /// so no prediction ever touches the rating matrix for sensitivities. The pool is
    /// kept close to `k` because on small catalogues a very wide pool makes the
    /// ε′-constrained selection close to uniform over the catalogue — a scale artefact
    /// the paper's 400K-item catalogue does not exhibit (see DESIGN.md).
    ///
    /// The fit debits the recommendation-phase budget: ε′/2 for PNSA and ε′/2 for PNCF
    /// (sequential composition, §4.4), atomically — an exhausted `budget` fails the fit
    /// instead of silently releasing noised answers that no accountant vouches for.
    pub fn fit(
        target: RatingMatrix,
        k: usize,
        epsilon_prime: f64,
        rho: f64,
        temporal_alpha: f64,
        seed: u64,
        budget: &mut PrivacyBudget,
    ) -> crate::Result<Self> {
        Self::debit_budget(epsilon_prime, budget)?;
        let pools = ItemKnn::fit(
            &target,
            ItemKnnConfig {
                k: Self::pool_size(k),
                temporal_alpha,
                ..Default::default()
            },
        )?
        .into_neighbors();
        Self::from_pools(target, k, epsilon_prime, rho, temporal_alpha, seed, pools)
    }

    /// The recommendation-phase budget debit: ε′/2 for PNSA and ε′/2 for PNCF
    /// (sequential composition, §4.4), atomically. The single place the split and the
    /// ledger labels live — both [`fit`] and the engine-parallel recommender stage
    /// debit through here.
    ///
    /// [`fit`]: PrivateItemBasedRecommender::fit
    pub(crate) fn debit_budget(
        epsilon_prime: f64,
        budget: &mut PrivacyBudget,
    ) -> crate::Result<()> {
        let half = epsilon_prime / 2.0;
        budget.spend_all(&[("PNSA", half), ("PNCF", half)])?;
        Ok(())
    }

    /// The candidate-pool width PNSA selects from for a given `k` (slightly wider than
    /// `k`, see [`PrivateItemBasedRecommender::fit`]). The engine-parallel recommender
    /// stage fits its pools at exactly this width before handing them to
    /// `from_pools`.
    pub fn pool_size(k: usize) -> usize {
        (k + k / 4).max(4)
    }

    /// Builds the recommender from externally fitted neighbour pools of width
    /// [`PrivateItemBasedRecommender::pool_size`], annotating each candidate with its
    /// similarity-based sensitivity. Crate-private because it performs no budget
    /// debit itself: the engine-parallel recommender stage debits once through
    /// [`PrivateItemBasedRecommender::debit_budget`] *before* fanning the pool fit
    /// out, exactly like [`fit`] — a public no-debit constructor would let callers
    /// bypass the ε′ accounting.
    ///
    /// [`fit`]: PrivateItemBasedRecommender::fit
    pub(crate) fn from_pools(
        target: RatingMatrix,
        k: usize,
        epsilon_prime: f64,
        rho: f64,
        temporal_alpha: f64,
        seed: u64,
        pools: Vec<Vec<ItemNeighbor>>,
    ) -> crate::Result<Self> {
        let pools = ItemKnn::from_pools(
            &target,
            ItemKnnConfig {
                k: Self::pool_size(k),
                temporal_alpha,
                ..Default::default()
            },
            pools,
        )?
        .into_neighbors();
        let candidates: Vec<Vec<ScoredCandidate>> = pools
            .into_iter()
            .enumerate()
            .map(|(i, pool)| {
                pool.into_iter()
                    .map(|n| ScoredCandidate {
                        item: n.item,
                        similarity: n.similarity,
                        sensitivity: pair_sensitivity(&target, ItemId(i as u32), n.item),
                    })
                    .collect()
            })
            .collect();
        Ok(PrivateItemBasedRecommender {
            target,
            candidates,
            k,
            epsilon_prime,
            rho,
            temporal_alpha,
            seed,
        })
    }

    /// The target-domain training matrix.
    pub fn target(&self) -> &RatingMatrix {
        &self.target
    }

    /// The candidate pool of an item (before private selection).
    pub fn candidates(&self, item: ItemId) -> &[ScoredCandidate] {
        self.candidates
            .get(item.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub(crate) fn predict_with_scratch(&self, scratch: &ProfileScratch, item: ItemId) -> f64 {
        // Deterministic per (seed, item): repeated queries for the same item release the
        // same randomised output rather than averaging the noise away.
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (0x5851_f42d_4c95_7f2du64.wrapping_mul(u64::from(item.0) + 1)),
        );
        let selected = private_neighbor_selection(
            &mut rng,
            self.candidates(item),
            self.k,
            self.epsilon_prime,
            self.rho,
            self.target.n_items().max(self.k + 1),
        );
        let neighbor_sims: Vec<(ItemId, f64)> = selected
            .iter()
            .map(|c| {
                // Clamping the noisy similarity back into the metric's public range is
                // post-processing and therefore privacy-free; it bounds the damage of
                // large Laplace draws on sparsely supported pairs.
                let noisy = pncf_noisy_similarity(
                    &mut rng,
                    c.similarity,
                    c.sensitivity,
                    self.epsilon_prime,
                )
                .clamp(-1.0, 1.0);
                (c.item, noisy)
            })
            .collect();
        predict_item_based(
            &self.target,
            &neighbor_sims,
            scratch,
            item,
            self.temporal_alpha,
        )
    }

    fn recommend_with_scratch(
        &self,
        scratch: &mut ProfileScratch,
        profile: &Profile,
        n: usize,
    ) -> Vec<(ItemId, f64)> {
        scratch.load(profile, self.target.n_items());
        // candidate pools drive the candidate generation; private selection happens
        // inside the prediction of each candidate item
        recommend_from_neighbors(
            profile,
            n,
            |i| self.candidates(i),
            |i| self.predict_with_scratch(scratch, i),
        )
    }
}

impl ProfileRecommender for PrivateItemBasedRecommender {
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        with_thread_scratch(|scratch| {
            scratch.load(profile, self.target.n_items());
            self.predict_with_scratch(scratch, item)
        })
    }

    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        with_thread_scratch(|scratch| self.recommend_with_scratch(scratch, profile, n))
    }

    fn recommend_batch(&self, profiles: &[&Profile], n: usize) -> Vec<Vec<(ItemId, f64)>> {
        with_thread_scratch(|scratch| self.recommend_batch_with_scratch(profiles, n, scratch))
    }

    fn recommend_batch_with_scratch(
        &self,
        profiles: &[&Profile],
        n: usize,
        scratch: &mut ProfileScratch,
    ) -> Vec<Vec<(ItemId, f64)>> {
        profiles
            .iter()
            .map(|p| self.recommend_with_scratch(scratch, p, n))
            .collect()
    }

    fn label(&self) -> &'static str {
        "X-MAP-IB"
    }
}

// ---------------------------------------------------------------------------
// Private user-based (X-Map-ub)
// ---------------------------------------------------------------------------

/// User-based CF with private neighbour selection and noisy similarities.
///
/// The paper formulates PNSA/PNCF in item terms; for the user-based variant we apply the
/// same mechanisms to user–user similarities with the metric's global sensitivity
/// (range `[-1, 1]`, so `GS = 2`) — see the substitution notes in DESIGN.md.
pub struct PrivateUserBasedRecommender {
    target: RatingMatrix,
    /// Neighbour-pool configuration, fixed at fit time: the pool is slightly larger than
    /// `k` so the exponential mechanism has room without collapsing to a uniform choice
    /// over the whole user base.
    pool_config: UserKnnConfig,
    k: usize,
    epsilon_prime: f64,
    rho: f64,
    seed: u64,
}

impl PrivateUserBasedRecommender {
    /// Creates the recommender, fixing the neighbour-pool configuration once.
    ///
    /// The fit debits the recommendation-phase budget: ε′/2 for PNSA and ε′/2 for PNCF
    /// (sequential composition, §4.4), atomically — an exhausted `budget` fails the fit
    /// instead of silently releasing noised answers that no accountant vouches for.
    pub fn fit(
        target: RatingMatrix,
        k: usize,
        epsilon_prime: f64,
        rho: f64,
        seed: u64,
        budget: &mut PrivacyBudget,
    ) -> crate::Result<Self> {
        if k == 0 {
            return Err(crate::XMapError::InvalidConfig(
                "k must be at least 1".into(),
            ));
        }
        let half = epsilon_prime / 2.0;
        budget.spend_all(&[("PNSA", half), ("PNCF", half)])?;
        Ok(PrivateUserBasedRecommender {
            target,
            pool_config: UserKnnConfig {
                k: (k + k / 4).max(4),
                min_similarity: 0.0,
            },
            k,
            epsilon_prime,
            rho,
            seed,
        })
    }

    /// The target-domain training matrix.
    pub fn target(&self) -> &RatingMatrix {
        &self.target
    }

    pub(crate) fn knn(&self) -> UserKnn<'_> {
        // lint: panic — reviewed invariant
        UserKnn::new(&self.target, self.pool_config).expect("pool k validated at construction")
    }

    /// The (non-private) candidate neighbour pool of a profile: one full scan of the
    /// training matrix. This is the expensive step that used to run once *per
    /// prediction*; it depends only on the profile, so the serving paths compute it once
    /// per profile and reuse it across every candidate item.
    pub(crate) fn neighbor_pool(&self, profile: &Profile) -> Vec<(UserId, f64)> {
        self.knn().neighbors_of_profile(profile)
    }

    /// PNSA selection + PNCF noise over a precomputed pool. The RNG is seeded from
    /// `(seed, salt)` only, so for a fixed profile the released neighbourhood of a given
    /// salt is identical whether the pool was rebuilt or reused.
    pub(crate) fn private_neighbors_from_pool(
        &self,
        pool: &[(UserId, f64)],
        salt: u64,
    ) -> Vec<(UserId, f64)> {
        const USER_SIM_GLOBAL_SENSITIVITY: f64 = 2.0;
        let candidates: Vec<ScoredCandidate> = pool
            .iter()
            .enumerate()
            .map(|(idx, &(_, sim))| ScoredCandidate {
                // encode the pool position in the item id slot; resolved back below
                item: ItemId(idx as u32),
                similarity: sim,
                sensitivity: USER_SIM_GLOBAL_SENSITIVITY,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ salt);
        let selected = private_neighbor_selection(
            &mut rng,
            &candidates,
            self.k,
            self.epsilon_prime,
            self.rho,
            self.target.n_users().max(self.k + 1),
        );
        selected
            .into_iter()
            .map(|c| {
                let (user, sim) = pool[c.item.index()];
                // post-processing clamp into the similarity range (privacy-free)
                let noisy = pncf_noisy_similarity(&mut rng, sim, c.sensitivity, self.epsilon_prime)
                    .clamp(-1.0, 1.0);
                (user, noisy)
            })
            .collect()
    }

    /// Equation 2 over a privately selected neighbourhood of the given pool.
    pub(crate) fn predict_from_pool(
        &self,
        pool: &[(UserId, f64)],
        profile_avg: f64,
        item: ItemId,
    ) -> f64 {
        let neighbors = self.private_neighbors_from_pool(pool, 0x9e37_79b9u64 ^ u64::from(item.0));
        let mut num = 0.0;
        let mut den = 0.0;
        for &(b, sim) in &neighbors {
            if let Some(r) = self.target.rating(b, item) {
                num += sim * (r - self.target.user_average(b));
                den += sim.abs();
            }
        }
        let raw = if den < 1e-12 {
            profile_avg
        } else {
            profile_avg + num / den
        };
        self.target.scale().clamp(raw)
    }

    pub(crate) fn profile_avg(&self, profile: &Profile) -> f64 {
        profile_average(profile).unwrap_or_else(|| self.target.global_average())
    }

    /// Candidate items of a recommendation request: everything rated by the (private)
    /// neighbourhood, minus the profile's own items. Shared by the pooled path and the
    /// rescan oracle so the two can only diverge in *how* candidates are scored.
    pub(crate) fn candidate_items(
        &self,
        profile: &Profile,
        neighbors: &[(UserId, f64)],
    ) -> Vec<ItemId> {
        let owned: Vec<ItemId> = profile.iter().map(|&(i, _, _)| i).collect();
        let mut candidates: Vec<ItemId> = Vec::new();
        for &(u, _) in neighbors {
            for e in self.target.user_profile(u) {
                candidates.push(e.item);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|i| !owned.contains(i));
        candidates
    }

    /// The historical per-call path, kept as the equivalence oracle and throughput-bench
    /// baseline: every prediction rebuilds the neighbour pool with a full matrix scan,
    /// making top-N serving quadratic in the candidate count. Release outputs are
    /// bit-identical to [`ProfileRecommender::recommend_for_profile`], just slower.
    #[doc(hidden)]
    pub fn recommend_for_profile_rescan(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        let neighbors =
            self.private_neighbors_from_pool(&self.neighbor_pool(profile), 0xfeed_beefu64);
        let scored = self
            .candidate_items(profile, &neighbors)
            .into_iter()
            // the quadratic defect: a fresh `neighbor_pool` scan for every candidate
            .map(|i| {
                (
                    self.predict_from_pool(
                        &self.neighbor_pool(profile),
                        self.profile_avg(profile),
                        i,
                    ),
                    i,
                )
            });
        top_k(n, scored).into_iter().map(|(s, i)| (i, s)).collect()
    }
}

impl ProfileRecommender for PrivateUserBasedRecommender {
    fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        // a single prediction needs the pool exactly once — nothing to reuse here
        self.predict_from_pool(
            &self.neighbor_pool(profile),
            self.profile_avg(profile),
            item,
        )
    }

    fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        // The pool depends only on the profile: compute it once and reuse it for the
        // candidate generation *and* every candidate prediction (the per-item PNSA/PNCF
        // draws stay per-item-seeded, so outputs match the rescan path bit for bit).
        let pool = self.neighbor_pool(profile);
        let profile_avg = self.profile_avg(profile);
        let neighbors = self.private_neighbors_from_pool(&pool, 0xfeed_beefu64);
        let scored = self
            .candidate_items(profile, &neighbors)
            .into_iter()
            .map(|i| (self.predict_from_pool(&pool, profile_avg, i), i));
        top_k(n, scored).into_iter().map(|(s, i)| (i, s)).collect()
    }

    fn label(&self) -> &'static str {
        "X-MAP-UB"
    }
}

// ---------------------------------------------------------------------------
// Shared prediction helpers
// ---------------------------------------------------------------------------

/// Equation 4 / 7 prediction shared by the item-based recommenders: given neighbour
/// `(item, similarity)` pairs of `item`, combine the loaded profile's ratings of those
/// neighbours. The profile is consulted through a pre-loaded [`ProfileScratch`] so
/// batched serving pays the profile indexing once per profile, not once per prediction.
fn predict_item_based<N: NeighborLike>(
    target: &RatingMatrix,
    neighbor_sims: &[N],
    scratch: &ProfileScratch,
    item: ItemId,
    temporal_alpha: f64,
) -> f64 {
    let item_avg = target.item_average(item);
    let now = scratch.now;
    let mut num = 0.0;
    let mut den = 0.0;
    for neighbor in neighbor_sims {
        let (j, sim) = (neighbor.item_id(), neighbor.similarity());
        if let Some((r, t)) = scratch.get(j) {
            let weight = if temporal_alpha > 0.0 {
                (-temporal_alpha * now.elapsed_since(t) as f64).exp()
            } else {
                1.0
            };
            num += sim * (r - target.item_average(j)) * weight;
            den += sim.abs() * weight;
        }
    }
    let raw = if den < 1e-12 {
        item_avg
    } else {
        item_avg + num / den
    };
    target.scale().clamp(raw)
}

/// Shared top-N ranking: candidates are the neighbours of the profile's items.
fn recommend_from_neighbors<'a, C: 'a + NeighborLike>(
    profile: &Profile,
    n: usize,
    neighbors_of: impl Fn(ItemId) -> &'a [C],
    predict: impl Fn(ItemId) -> f64,
) -> Vec<(ItemId, f64)> {
    let owned: Vec<ItemId> = profile.iter().map(|&(i, _, _)| i).collect();
    let mut candidates: Vec<ItemId> = Vec::new();
    for &(i, _, _) in profile {
        for c in neighbors_of(i) {
            candidates.push(c.item_id());
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    let scored = candidates
        .into_iter()
        .filter(|i| !owned.contains(i))
        .map(|i| (predict(i), i));
    top_k(n, scored).into_iter().map(|(s, i)| (i, s)).collect()
}

/// Anything that names a neighbouring item with a similarity.
trait NeighborLike {
    fn item_id(&self) -> ItemId;
    fn similarity(&self) -> f64;
}

impl NeighborLike for (ItemId, f64) {
    fn item_id(&self) -> ItemId {
        self.0
    }

    fn similarity(&self) -> f64 {
        self.1
    }
}

impl NeighborLike for ItemNeighbor {
    fn item_id(&self) -> ItemId {
        self.item
    }

    fn similarity(&self) -> f64 {
        self.similarity
    }
}

impl NeighborLike for ScoredCandidate {
    fn item_id(&self) -> ItemId {
        self.item
    }

    fn similarity(&self) -> f64 {
        self.similarity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_cf::knn::profile_from_pairs;
    use xmap_cf::{DomainId, RatingMatrixBuilder};

    /// Target-domain matrix with two item clusters (0-2 liked together, 3-5 liked
    /// together by the other half of the users).
    fn target_matrix() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for u in 0..4u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
        }
        for u in 4..8u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
        }
        for i in 0..6u32 {
            b.set_item_domain(ItemId(i), DomainId::TARGET);
        }
        b.build().unwrap()
    }

    fn cluster_profile() -> Profile {
        profile_from_pairs([(ItemId(0), 5.0), (ItemId(1), 4.0)])
    }

    #[test]
    fn item_based_follows_the_profile_cluster() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let p = cluster_profile();
        let liked = rec.predict_for_profile(&p, ItemId(2));
        let disliked = rec.predict_for_profile(&p, ItemId(4));
        assert!(liked > disliked, "{liked} vs {disliked}");
        let recs = rec.recommend_for_profile(&p, 3);
        assert_eq!(recs[0].0, ItemId(2));
        assert!(recs.iter().all(|(i, _)| *i != ItemId(0) && *i != ItemId(1)));
        assert_eq!(rec.label(), "NX-MAP-IB");
        assert!(!rec.neighbors(ItemId(0)).is_empty());
        assert_eq!(rec.target().n_items(), 6);
    }

    #[test]
    fn user_based_follows_the_profile_cluster() {
        let rec = UserBasedRecommender::fit(target_matrix(), 3).unwrap();
        let p = cluster_profile();
        let liked = rec.predict_for_profile(&p, ItemId(2));
        let disliked = rec.predict_for_profile(&p, ItemId(4));
        assert!(liked > disliked, "{liked} vs {disliked}");
        let recs = rec.recommend_for_profile(&p, 2);
        assert_eq!(recs[0].0, ItemId(2));
        assert_eq!(rec.label(), "NX-MAP-UB");
        assert!(UserBasedRecommender::fit(target_matrix(), 0).is_err());
    }

    /// A recommendation-phase budget that exactly covers one ε′ expenditure.
    fn budget_for(epsilon_prime: f64) -> PrivacyBudget {
        PrivacyBudget::new(epsilon_prime)
    }

    #[test]
    fn private_item_based_is_noisier_but_still_directionally_correct() {
        let rec = PrivateItemBasedRecommender::fit(
            target_matrix(),
            3,
            5.0,
            0.05,
            0.0,
            7,
            &mut budget_for(5.0),
        )
        .unwrap();
        let p = cluster_profile();
        let liked = rec.predict_for_profile(&p, ItemId(2));
        let disliked = rec.predict_for_profile(&p, ItemId(4));
        // with a generous ε′ the ordering should survive the noise
        assert!(liked > disliked, "{liked} vs {disliked}");
        assert_eq!(rec.label(), "X-MAP-IB");
        assert!(!rec.candidates(ItemId(0)).is_empty());
        assert_eq!(rec.target().n_users(), 8);
        let recs = rec.recommend_for_profile(&p, 3);
        assert!(!recs.is_empty());
        for (i, _) in recs {
            assert!(i != ItemId(0) && i != ItemId(1));
        }
    }

    #[test]
    fn private_predictions_are_deterministic_per_seed_and_vary_across_seeds() {
        let p = cluster_profile();
        let a = PrivateItemBasedRecommender::fit(
            target_matrix(),
            3,
            0.5,
            0.05,
            0.0,
            7,
            &mut budget_for(0.5),
        )
        .unwrap();
        let b = PrivateItemBasedRecommender::fit(
            target_matrix(),
            3,
            0.5,
            0.05,
            0.0,
            7,
            &mut budget_for(0.5),
        )
        .unwrap();
        assert_eq!(
            a.predict_for_profile(&p, ItemId(2)),
            b.predict_for_profile(&p, ItemId(2))
        );
        let c = PrivateItemBasedRecommender::fit(
            target_matrix(),
            3,
            0.5,
            0.05,
            0.0,
            1234,
            &mut budget_for(0.5),
        )
        .unwrap();
        // different seeds usually give different noise; check over several items
        let differs = (0..6u32)
            .any(|i| a.predict_for_profile(&p, ItemId(i)) != c.predict_for_profile(&p, ItemId(i)));
        assert!(
            differs,
            "different seeds should perturb at least one prediction"
        );
    }

    #[test]
    fn stronger_privacy_degrades_item_based_accuracy_on_average() {
        let target = target_matrix();
        let p = cluster_profile();
        // ground truth: item 2 should be ~5, item 4 should be ~1
        let truth = [(ItemId(2), 5.0), (ItemId(4), 1.0)];
        let error_for = |eps: f64, seed: u64| {
            let rec = PrivateItemBasedRecommender::fit(
                target.clone(),
                3,
                eps,
                0.05,
                0.0,
                seed,
                &mut budget_for(eps),
            )
            .unwrap();
            truth
                .iter()
                .map(|&(i, t)| (rec.predict_for_profile(&p, i) - t).abs())
                .sum::<f64>()
                / truth.len() as f64
        };
        let mut strict = 0.0;
        let mut loose = 0.0;
        for seed in 0..30u64 {
            strict += error_for(0.05, seed);
            loose += error_for(10.0, seed);
        }
        assert!(
            strict >= loose,
            "stronger privacy (smaller ε′) should not beat weaker privacy on average: {strict} vs {loose}"
        );
    }

    #[test]
    fn private_user_based_runs_and_respects_scale() {
        let rec = PrivateUserBasedRecommender::fit(
            target_matrix(),
            3,
            2.0,
            0.05,
            11,
            &mut budget_for(2.0),
        )
        .unwrap();
        let p = cluster_profile();
        for i in 0..6u32 {
            let v = rec.predict_for_profile(&p, ItemId(i));
            assert!((1.0..=5.0).contains(&v));
        }
        let recs = rec.recommend_for_profile(&p, 4);
        assert!(!recs.is_empty());
        for (i, _) in &recs {
            assert!(*i != ItemId(0) && *i != ItemId(1));
        }
        assert_eq!(rec.label(), "X-MAP-UB");
        assert_eq!(rec.target().n_users(), 8);
        assert!(PrivateUserBasedRecommender::fit(
            target_matrix(),
            0,
            2.0,
            0.05,
            1,
            &mut budget_for(2.0)
        )
        .is_err());
    }

    #[test]
    fn private_user_based_pooled_recommendations_match_the_rescan_reference() {
        // Regression for the quadratic serving path: hoisting the neighbour-pool scan
        // out of the per-candidate loop must not change a single released value.
        let rec = PrivateUserBasedRecommender::fit(
            target_matrix(),
            3,
            2.0,
            0.05,
            11,
            &mut budget_for(2.0),
        )
        .unwrap();
        for profile in [
            cluster_profile(),
            profile_from_pairs([(ItemId(3), 5.0), (ItemId(4), 4.0)]),
            profile_from_pairs([(ItemId(0), 2.0)]),
            Vec::new(),
        ] {
            assert_eq!(
                rec.recommend_for_profile(&profile, 4),
                rec.recommend_for_profile_rescan(&profile, 4),
                "pooled and rescan paths diverged for {profile:?}"
            );
        }
    }

    #[test]
    fn recommend_batch_is_bit_identical_to_per_profile_calls() {
        let profiles: Vec<Profile> = vec![
            cluster_profile(),
            profile_from_pairs([(ItemId(3), 5.0), (ItemId(4), 4.0)]),
            profile_from_pairs([(ItemId(0), 1.0), (ItemId(5), 5.0)]),
            Vec::new(),
            profile_from_pairs([(ItemId(2), 3.0)]),
        ];
        let recommenders: Vec<Box<dyn ProfileRecommender>> = vec![
            Box::new(ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap()),
            Box::new(ItemBasedRecommender::fit(target_matrix(), 5, 0.3).unwrap()),
            Box::new(UserBasedRecommender::fit(target_matrix(), 3).unwrap()),
            Box::new(
                PrivateItemBasedRecommender::fit(
                    target_matrix(),
                    3,
                    5.0,
                    0.05,
                    0.0,
                    7,
                    &mut budget_for(5.0),
                )
                .unwrap(),
            ),
            Box::new(
                PrivateUserBasedRecommender::fit(
                    target_matrix(),
                    3,
                    2.0,
                    0.05,
                    11,
                    &mut budget_for(2.0),
                )
                .unwrap(),
            ),
        ];
        let profile_refs: Vec<&Profile> = profiles.iter().collect();
        for rec in &recommenders {
            let batched = rec.recommend_batch(&profile_refs, 4);
            let reference: Vec<Vec<(ItemId, f64)>> = profiles
                .iter()
                .map(|p| rec.recommend_for_profile(p, 4))
                .collect();
            assert_eq!(batched, reference, "{} batch diverged", rec.label());
        }
    }

    #[test]
    fn private_fits_record_pnsa_and_pncf_in_the_ledger() {
        let mut budget = PrivacyBudget::new(1.0);
        PrivateItemBasedRecommender::fit(target_matrix(), 3, 0.8, 0.05, 0.0, 7, &mut budget)
            .unwrap();
        let mechanisms: Vec<&str> = budget
            .ledger()
            .iter()
            .map(|e| e.mechanism.as_str())
            .collect();
        assert_eq!(mechanisms, vec!["PNSA", "PNCF"]);
        assert!((budget.spent() - 0.8).abs() < 1e-12);
        assert!((budget.ledger()[0].epsilon - 0.4).abs() < 1e-12);
    }

    #[test]
    fn exhausted_budget_fails_the_private_fits() {
        let mut drained = PrivacyBudget::new(0.8);
        drained.spend("PRS", 0.7).unwrap();
        let err = match PrivateItemBasedRecommender::fit(
            target_matrix(),
            3,
            0.8,
            0.05,
            0.0,
            7,
            &mut drained,
        ) {
            Err(e) => e,
            Ok(_) => panic!("fit must fail on an exhausted budget"),
        };
        assert!(matches!(err, crate::XMapError::Privacy(_)), "{err}");
        // the failed fit must not have recorded anything
        assert_eq!(drained.ledger().len(), 1);

        let err = match PrivateUserBasedRecommender::fit(
            target_matrix(),
            3,
            0.8,
            0.05,
            7,
            &mut drained,
        ) {
            Err(e) => e,
            Ok(_) => panic!("fit must fail on an exhausted budget"),
        };
        assert!(matches!(err, crate::XMapError::Privacy(_)), "{err}");
    }

    #[test]
    fn temporal_alpha_changes_item_based_predictions() {
        let flat = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let decayed = ItemBasedRecommender::fit(target_matrix(), 5, 0.3).unwrap();
        // profile: old high rating on item 0, recent low rating on item 1
        let profile: Profile = vec![
            (ItemId(0), 5.0, Timestep(0)),
            (ItemId(1), 1.0, Timestep(50)),
        ];
        let p_flat = flat.predict_for_profile(&profile, ItemId(2));
        let p_decay = decayed.predict_for_profile(&profile, ItemId(2));
        assert!(
            p_decay <= p_flat + 1e-9,
            "decay must favour the recent low rating: {p_decay} vs {p_flat}"
        );
    }

    #[test]
    fn empty_profile_falls_back_to_item_average() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let empty: Profile = Vec::new();
        let pred = rec.predict_for_profile(&empty, ItemId(3));
        assert!((pred - rec.target().item_average(ItemId(3))).abs() < 1e-9);
        assert!(rec.recommend_for_profile(&empty, 3).is_empty());
        let urec = UserBasedRecommender::fit(target_matrix(), 3).unwrap();
        let upred = urec.predict_for_profile(&empty, ItemId(3));
        assert!((1.0..=5.0).contains(&upred));
    }

    #[test]
    fn predictions_ignore_unknown_items_gracefully() {
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let p = cluster_profile();
        let v = rec.predict_for_profile(&p, ItemId(999));
        assert!((1.0..=5.0).contains(&v));
        assert!(rec.neighbors(ItemId(999)).is_empty());
    }

    #[test]
    fn out_of_catalogue_profile_entries_are_skipped_not_allocated() {
        // The dense scratch must bound its buffers to the catalogue: a corrupted or
        // foreign-domain id like u32::MAX in the *profile* must neither abort on a
        // gigantic allocation nor change predictions (it can never match a neighbour).
        let rec = ItemBasedRecommender::fit(target_matrix(), 5, 0.0).unwrap();
        let clean = cluster_profile();
        let mut poisoned = clean.clone();
        poisoned.push((ItemId(u32::MAX), 5.0, Timestep(0)));
        assert_eq!(
            rec.predict_for_profile(&poisoned, ItemId(2)),
            rec.predict_for_profile(&clean, ItemId(2))
        );
        // the foreign id is still excluded from its own recommendations like any owned item
        let recs = rec.recommend_for_profile(&poisoned, 3);
        assert_eq!(recs, rec.recommend_for_profile(&clean, 3));
    }
}
