//! # xmap-core — the X-Map heterogeneous recommender
//!
//! This crate implements the primary contribution of *"Heterogeneous Recommendations:
//! What You Might Like To Read After Watching Interstellar"* (Guerraoui, Kermarrec, Lin,
//! Patra — VLDB 2017):
//!
//! * the **X-Sim** meta-path-based inter-item similarity (Definitions 2–6, [`xsim`]),
//! * **AlterEgo** generation — mapping a user's source-domain profile into an artificial
//!   target-domain profile, either non-privately (most-similar replacement) or with the
//!   ε-differentially-private **PRS** exponential mechanism ([`generator`]),
//! * the private recommendation machinery **PNSA** / **PNCF** (Algorithms 4 and 5,
//!   [`private`]),
//! * the four user-facing recommender variants — `NX-Map-ub`, `NX-Map-ib`, `X-Map-ub`,
//!   `X-Map-ib` ([`recommend`]), and
//! * the end-to-end four-component pipeline (baseliner → extender → generator →
//!   recommender, Figure 4) that ties everything together and exposes the measured
//!   per-stage costs used by the scalability experiment ([`pipeline`]), including the
//!   engine-parallel evaluation entry points (`XMapModel::evaluate_batch` / `sweep`,
//!   running `xmap-eval`'s `EvalStage` on the model's dataflow).
//!
//! ## Quick start
//!
//! ```
//! use xmap_core::{XMapConfig, XMapMode, XMapModel};
//! use xmap_dataset::toy::{items, users, ToyScenario};
//! use xmap_cf::DomainId;
//!
//! let toy = ToyScenario::build();
//! let config = XMapConfig {
//!     mode: XMapMode::NxMapItemBased,
//!     k: 2,
//!     ..XMapConfig::default()
//! };
//! let model = XMapModel::fit(&toy.matrix, DomainId::SOURCE, DomainId::TARGET, config).unwrap();
//! // Alice never rated a book, but her AlterEgo gives her book predictions.
//! let recs = model.recommend(users::ALICE, 2);
//! assert!(!recs.is_empty());
//! let _predicted = model.predict(users::ALICE, items::THE_FOREVER_WAR);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod delta;
pub mod generator;
pub mod persist;
pub mod pipeline;
pub mod private;
pub mod recommend;
pub mod serve;
pub mod shard;
pub mod xsim;

pub use config::{PrivacyConfig, XMapConfig, XMapMode};
pub use delta::{
    DeltaReport, IngestAccumulators, RatingDelta, ServedRead, DELTA_STAGE_NAME, INGEST_MRV_SHARDS,
};
pub use generator::{AlterEgo, AlterEgoGenerator, RatingTransfer, ReplacementTable};
pub use persist::{JOURNAL_FILE, SNAPSHOT_FILE};
pub use pipeline::{BaselinerStage, ModelEpoch, PipelineStats, XMapModel};
pub use recommend::{ProfileRecommender, ProfileScratch, ScratchPool};
pub use serve::{RecommendStage, ServeBatch};
pub use shard::{ShardId, ShardMap, ShardSlice, ShardedModel};
pub use xsim::{XSimEntry, XSimTable};

/// Errors produced by the X-Map pipeline.
#[derive(Debug)]
pub enum XMapError {
    /// A configuration value is invalid.
    InvalidConfig(String),
    /// The underlying CF substrate reported an error.
    Cf(xmap_cf::CfError),
    /// The training data does not contain the requested domains or users.
    Data(String),
    /// A differentially private mechanism asked for more ε than the budget has left.
    Privacy(xmap_privacy::BudgetError),
    /// An operating-system I/O failure in the persistence layer, with the path and
    /// the operation that failed.
    Io {
        /// The file (or directory) the operation touched.
        path: std::path::PathBuf,
        /// What the store was doing when the failure happened.
        context: String,
    },
    /// Bytes on disk are not a valid snapshot/journal (checksum mismatch,
    /// truncation, unknown format version, out-of-range field) — or a replayed
    /// journal does not line up with its snapshot.
    Corrupt {
        /// Byte offset of the damage within the offending file.
        offset: u64,
        /// What was wrong at that offset.
        detail: String,
    },
}

impl std::fmt::Display for XMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XMapError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            XMapError::Cf(e) => write!(f, "collaborative filtering error: {e}"),
            XMapError::Data(msg) => write!(f, "data error: {msg}"),
            XMapError::Privacy(e) => write!(f, "privacy budget exhausted: {e}"),
            XMapError::Io { path, context } => {
                write!(f, "io error at {}: {context}", path.display())
            }
            XMapError::Corrupt { offset, detail } => {
                write!(f, "corrupt store data at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for XMapError {}

impl From<xmap_cf::CfError> for XMapError {
    fn from(e: xmap_cf::CfError) -> Self {
        XMapError::Cf(e)
    }
}

impl From<xmap_privacy::BudgetError> for XMapError {
    fn from(e: xmap_privacy::BudgetError) -> Self {
        XMapError::Privacy(e)
    }
}

impl From<xmap_store::StoreError> for XMapError {
    fn from(e: xmap_store::StoreError) -> Self {
        match e {
            xmap_store::StoreError::Io {
                path,
                context,
                source,
            } => XMapError::Io {
                path,
                context: format!("{context}: {source}"),
            },
            xmap_store::StoreError::Corrupt { offset, detail } => {
                XMapError::Corrupt { offset, detail }
            }
        }
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, XMapError>;
