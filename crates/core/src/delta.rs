//! Incremental model maintenance (delta fit) on the Dataflow engine.
//!
//! A deployed X-Map model keeps absorbing new ratings; refitting on the full trace for
//! every batch would make update cost scale with history rather than with the update.
//! [`XMapModel::apply_delta`] instead re-derives **only the state a delta actually
//! affects**, and proves the shortcut exact: the resulting model is **bit-identical to
//! a full refit on the updated matrix** (enforced by `tests/incremental_equivalence.rs`
//! in all four modes at 1/2/8 workers).
//!
//! The recompute-not-accumulate rule (see DESIGN.md) governs every layer:
//!
//! 1. the [`RatingMatrix`] absorbs the delta through the incremental builder path
//!    (`RatingMatrix::apply_delta` — row merges and copied averages, no re-sort);
//! 2. the similarity graph re-*scores* exactly the affected co-rated pairs (every pair
//!    touching an item a delta user rated — adjusted cosine reads all raters' user
//!    averages) and merges them with the cached statistics of every other pair
//!    (`SimilarityGraph::apply_updates`);
//! 3. the X-Sim table recomputes only the source rows whose meta-path neighbourhood
//!    (≤ 5 hops) touches a changed graph row or layer rank;
//! 4. the generator re-draws replacements only for those rows (per-item RNG streams
//!    make the unchanged draws bit-equal by construction), and
//! 5. the item-based kNN pools are re-scored only for target items with an affected
//!    target-domain pair.
//!
//! All partitioned work runs as one [`DeltaStage`] on the model's own dataflow, so the
//! per-partition data-derived costs land in a `"delta"` ledger
//! ([`XMapModel::delta_task_costs`]) the `update_throughput` bench replays on the
//! cluster simulator — identical at any worker count, and scaling with the delta's
//! co-rating neighbourhood rather than the trace.

use crate::config::XMapMode;
use crate::generator::AlterEgoGenerator;
use crate::pipeline::{recommender_from_pools, XMapModel};
use crate::recommend::{
    PrivateItemBasedRecommender, PrivateUserBasedRecommender, UserBasedRecommender,
};
use crate::{Result, XMapError};
use std::collections::VecDeque;
use std::sync::Mutex;
use xmap_cf::knn::{CandidateScratch, ItemKnn, ItemKnnConfig, ItemNeighbor};
use xmap_cf::similarity::item_similarity_stats;
use xmap_cf::{DomainId, ItemId, Rating, RatingMatrix, SimilarityStats, Timestep, UserId};
use xmap_engine::{Stage, StageContext};
use xmap_graph::{BridgeIndex, LayerPartition, SimilarityGraph};
use xmap_privacy::PrivacyBudget;

/// Ledger key of the delta stage.
pub const DELTA_STAGE_NAME: &str = "delta";

/// A batch of rating-trace updates: new or updated ratings (possibly introducing new
/// users) plus domain declarations for new items.
#[derive(Clone, Debug, Default)]
pub struct RatingDelta {
    ratings: Vec<Rating>,
    item_domains: Vec<(ItemId, DomainId)>,
}

impl RatingDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rating event (a new cell, an update of an existing one, or a rating by a
    /// brand-new user). Duplicate `(user, item)` events follow the rating matrix's
    /// semantics: the latest timestep wins, ties won by the later push.
    pub fn push(&mut self, rating: Rating) -> &mut Self {
        self.ratings.push(rating);
        self
    }

    /// Adds a rating by raw ids with an explicit timestep.
    pub fn push_timed(&mut self, user: u32, item: u32, value: f64, t: u32) -> &mut Self {
        self.push(Rating::at(UserId(user), ItemId(item), value, Timestep(t)))
    }

    /// Declares the domain of a (typically new) item. Redeclaring an existing item with
    /// its current domain is a no-op; declaring a *different* domain is rejected by
    /// [`XMapModel::apply_delta`] — domain migration is not an incremental operation.
    pub fn declare_item(&mut self, item: ItemId, domain: DomainId) -> &mut Self {
        self.item_domains.push((item, domain));
        self
    }

    /// The rating events of the delta, in push order.
    pub fn ratings(&self) -> &[Rating] {
        &self.ratings
    }

    /// The item-domain declarations of the delta, in push order.
    pub fn item_domains(&self) -> &[(ItemId, DomainId)] {
        &self.item_domains
    }

    /// Number of rating events.
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// Whether the delta carries no rating events.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// The distinct users touched by the delta, sorted ascending.
    pub fn affected_users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.ratings.iter().map(|r| r.user).collect();
        users.sort_unstable();
        users.dedup();
        users
    }
}

/// What a delta fit recomputed — the shape of the incremental work, for reporting and
/// for the `update_throughput` bench's cost-scaling assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Rating events applied.
    pub n_delta_ratings: usize,
    /// Distinct users touched by the delta.
    pub n_affected_users: usize,
    /// Items whose similarity statistics could have moved (the delta users' profiles).
    pub n_dirty_items: usize,
    /// Co-rated pairs re-scored for the similarity graph.
    pub n_rescored_pairs: usize,
    /// X-Sim source rows recomputed.
    pub n_xsim_rows: usize,
    /// Replacement draws re-run.
    pub n_replacement_draws: usize,
    /// Item-kNN pools re-fitted (0 for the user-based modes).
    pub n_pool_refits: usize,
}

/// Source-domain items whose X-Sim row could differ between the old and updated graph:
/// every source item within 5 hops (the maximum meta-path length — layer ranks run
/// 0..=5) of an item whose adjacency row, layer rank or domain changed, measured over
/// the *union* of the old and new adjacencies (a delta can remove paths as well as add
/// them). Conservative supersets are fine — recomputation is exact — but anything
/// smaller than the true dependency set would break bit-identity with a full refit.
fn affected_xsim_rows(
    old_graph: &SimilarityGraph,
    old_partition: &LayerPartition,
    new_graph: &SimilarityGraph,
    new_partition: &LayerPartition,
    source: DomainId,
) -> Vec<ItemId> {
    let n_items = old_graph.n_items().max(new_graph.n_items());
    let mut distance = vec![u8::MAX; n_items];
    let mut queue: VecDeque<ItemId> = VecDeque::new();
    for (ix, slot) in distance.iter_mut().enumerate() {
        let item = ItemId(ix as u32);
        let old_row = old_graph.neighbors(item);
        let new_row = new_graph.neighbors(item);
        let row_changed = old_row.len() != new_row.len()
            || old_row.ids() != new_row.ids()
            || (0..old_row.len()).any(|s| old_row.get(s).stats != new_row.get(s).stats);
        let rank_changed = old_partition.path_rank(item, source)
            != new_partition.path_rank(item, source)
            || old_partition.domain(item) != new_partition.domain(item);
        if row_changed || rank_changed {
            *slot = 0;
            queue.push_back(item);
        }
    }
    const MAX_HOPS: u8 = 5;
    while let Some(item) = queue.pop_front() {
        let d = distance[item.index()];
        if d == MAX_HOPS {
            continue;
        }
        for &to in old_graph
            .neighbors(item)
            .ids()
            .iter()
            .chain(new_graph.neighbors(item).ids())
        {
            if distance[to.index()] > d + 1 {
                distance[to.index()] = d + 1;
                queue.push_back(to);
            }
        }
    }
    (0..n_items)
        .filter(|&ix| distance[ix] <= MAX_HOPS)
        .map(|ix| ItemId(ix as u32))
        .filter(|&i| new_graph.item_domain(i) == source)
        .collect()
}

/// Target items whose kNN pool must be re-scored: the endpoints of every affected
/// co-rated pair *within the target-domain matrix*. An item with no affected pair
/// keeps its pool bit for bit (candidate set, candidate statistics and its raters'
/// averages are all untouched).
fn affected_pool_items(target_matrix: &RatingMatrix, affected_users: &[UserId]) -> Vec<ItemId> {
    let dirty = SimilarityGraph::dirty_items(target_matrix, affected_users);
    let keys = SimilarityGraph::affected_pair_keys(target_matrix, &dirty);
    let mut items: Vec<ItemId> = Vec::with_capacity(keys.len() * 2);
    for &key in &keys {
        let (lo, hi) = SimilarityGraph::pair_of_key(key);
        items.push(lo);
        items.push(hi);
    }
    items.sort_unstable();
    items.dedup();
    items
}

/// Everything a delta fit rebuilds, handed back to [`XMapModel::apply_delta`].
struct DeltaParts {
    graph: SimilarityGraph,
    bridges: BridgeIndex,
    partition: LayerPartition,
    xsim: crate::xsim::XSimTable,
    replacements: crate::generator::ReplacementTable,
    recommender: Box<dyn crate::recommend::ProfileRecommender + Send + Sync>,
    item_pools: Option<Vec<Vec<ItemNeighbor>>>,
    n_target_ratings: usize,
    report: DeltaReport,
}

/// The delta stage: all affected-item work of an incremental fit, run as one stage so
/// every partitioned map's data-derived costs accumulate in the `"delta"` ledger.
struct DeltaStage<'a> {
    model: &'a XMapModel,
    updated: &'a RatingMatrix,
    affected_users: &'a [UserId],
    budget: Option<&'a Mutex<PrivacyBudget>>,
}

impl Stage<()> for DeltaStage<'_> {
    type Out = Result<DeltaParts>;

    fn name(&self) -> &'static str {
        DELTA_STAGE_NAME
    }

    fn run(&self, _input: (), cx: &mut StageContext<'_>) -> Result<DeltaParts> {
        let model = self.model;
        let updated = self.updated;
        let config = model.config;
        let mut report = DeltaReport {
            n_affected_users: self.affected_users.len(),
            ..DeltaReport::default()
        };

        // --- 1. Similarity graph: re-score exactly the affected pair keys,
        // partition-parallel (the baseliner's partitioning and cost model), then merge
        // with the cached statistics of every unaffected stored pair. ---
        let dirty = SimilarityGraph::dirty_items(updated, self.affected_users);
        let keys = SimilarityGraph::affected_pair_keys(updated, &dirty);
        report.n_dirty_items = dirty.len();
        report.n_rescored_pairs = keys.len();
        let graph_config = model.graph.config();
        let positions: Vec<usize> = (0..keys.len()).collect();
        let fresh: Vec<SimilarityStats> = cx.map_items_ordered(positions, |_ix, part| {
            let outs: Vec<SimilarityStats> = part
                .iter()
                .map(|&(_, key_ix)| {
                    let (lo, hi) = SimilarityGraph::pair_of_key(keys[key_ix]);
                    item_similarity_stats(updated, lo, hi, graph_config.metric)
                })
                .collect();
            let cost: f64 = part
                .iter()
                .map(|&(_, key_ix)| {
                    let (lo, hi) = SimilarityGraph::pair_of_key(keys[key_ix]);
                    1.0 + (updated.item_degree(lo) + updated.item_degree(hi)) as f64
                })
                .sum();
            (outs, cost)
        });
        let graph = model.graph.apply_updates(updated, &keys, fresh);

        // --- 2. Bridges and layers: cheap linear recomputes over the new arena; the
        // old partition is retained on the model, so rank changes are a comparison,
        // not a rebuild. ---
        let bridges = BridgeIndex::from_graph(&graph);
        let partition = LayerPartition::compute(&graph, &bridges);

        // --- 3. X-Sim: recompute only the source rows within meta-path reach of a
        // change, partition-parallel with the extender's scratch reuse and cost model. ---
        let rows = affected_xsim_rows(
            &model.graph,
            &model.partition,
            &graph,
            &partition,
            model.source_domain,
        );
        report.n_xsim_rows = rows.len();
        let xsim = model.xsim.with_recomputed_rows(
            &graph,
            &partition,
            model.source_domain,
            config.metapath,
            rows.clone(),
            cx,
        );

        // --- 4. Generator: PRS debit, then re-draw replacements for the recomputed
        // rows only (per-item RNG streams keep unchanged rows bit-equal). ---
        if let Some(b) = self.budget {
            b.lock()
                .expect("privacy budget mutex poisoned")
                .spend("PRS", config.privacy.epsilon)
                .map_err(XMapError::Privacy)?;
        }
        report.n_replacement_draws = rows.len();
        let replacements = AlterEgoGenerator::recompute_replacements_batched(
            &xsim,
            &config,
            rows,
            &model.replacements,
            cx,
        );

        // --- 5. Recommender: splice the item-kNN pools (item-based modes) or refit the
        // stateless user-based recommender on the new target matrix. ---
        let target_matrix = updated
            .filter(|r| updated.item_domain(r.item) == model.target_domain)
            .map_err(|_| XMapError::Data("target domain has no ratings".to_string()))?;
        let n_target_ratings = target_matrix.n_ratings();
        if n_target_ratings == 0 {
            return Err(XMapError::Data("target domain has no ratings".to_string()));
        }
        let (recommender, item_pools) = match config.mode {
            XMapMode::NxMapItemBased | XMapMode::XMapItemBased => {
                if config.mode == XMapMode::XMapItemBased {
                    // The delta re-releases the recommendation artifacts, so the fresh
                    // accountant debits ε′ exactly like a refit — before the pool work.
                    PrivateItemBasedRecommender::debit_budget(
                        config.privacy.epsilon_prime,
                        &mut self
                            .budget
                            .expect("private modes carry a privacy budget")
                            .lock()
                            .expect("privacy budget mutex poisoned"),
                    )?;
                }
                let pool_k = match config.mode {
                    XMapMode::XMapItemBased => PrivateItemBasedRecommender::pool_size(config.k),
                    _ => config.k,
                };
                let knn_config = ItemKnnConfig {
                    k: pool_k,
                    temporal_alpha: config.temporal_alpha,
                    ..Default::default()
                };
                let pool_items = affected_pool_items(&target_matrix, self.affected_users);
                report.n_pool_refits = pool_items.len();
                let fresh_pools: Vec<(ItemId, Vec<ItemNeighbor>)> =
                    cx.map_items_ordered(pool_items, |_ix, part| {
                        // One epoch-marked seen buffer per partition, reused across its
                        // items — the same dedup-during-collection discipline as
                        // `ItemKnn::candidate_sets`.
                        let mut scratch = CandidateScratch::new();
                        let mut outs = Vec::with_capacity(part.len());
                        let mut cost = 0.0f64;
                        for &(_, item) in part {
                            let cands = scratch.candidate_set(&target_matrix, item);
                            let deg_i = target_matrix.item_degree(item) as f64;
                            cost += 1.0
                                + cands
                                    .iter()
                                    .map(|&j| deg_i + target_matrix.item_degree(j) as f64)
                                    .sum::<f64>();
                            let pool = ItemKnn::neighbors_from_candidates(
                                &target_matrix,
                                item,
                                &cands,
                                &knn_config,
                            );
                            outs.push((item, pool));
                        }
                        (outs, cost)
                    });
                let mut pools = model
                    .item_pools
                    .clone()
                    .expect("item-based models retain their kNN pools");
                pools.resize(target_matrix.n_items(), Vec::new());
                for (item, pool) in fresh_pools {
                    pools[item.index()] = pool;
                }
                recommender_from_pools(&config, target_matrix, pools)?
            }
            XMapMode::NxMapUserBased => (
                Box::new(UserBasedRecommender::fit(target_matrix, config.k)?)
                    as Box<dyn crate::recommend::ProfileRecommender + Send + Sync>,
                None,
            ),
            XMapMode::XMapUserBased => (
                Box::new(PrivateUserBasedRecommender::fit(
                    target_matrix,
                    config.k,
                    config.privacy.epsilon_prime,
                    config.privacy.rho,
                    config.seed,
                    &mut self
                        .budget
                        .expect("private modes carry a privacy budget")
                        .lock()
                        .expect("privacy budget mutex poisoned"),
                )?) as Box<dyn crate::recommend::ProfileRecommender + Send + Sync>,
                None,
            ),
        };

        Ok(DeltaParts {
            graph,
            bridges,
            partition,
            xsim,
            replacements,
            recommender,
            item_pools,
            n_target_ratings,
            report,
        })
    }
}

impl XMapModel {
    /// Absorbs a batch of new/updated ratings into the fitted model **incrementally**:
    /// only the state the delta affects is recomputed (see the module docs for the
    /// five layers), yet the resulting model — graph bits, replacement table, kNN
    /// pools, predictions, privacy ledger — is **bit-identical to a full
    /// [`crate::XMapPipeline::fit`] on the updated matrix**.
    ///
    /// The affected-item work runs as one `"delta"` stage on the model's own dataflow;
    /// its per-partition data-derived task costs ([`XMapModel::delta_task_costs`]) are
    /// identical at any worker count and scale with the delta's co-rating
    /// neighbourhood, not the trace. For the private modes the delta re-releases every
    /// artifact, so a **fresh** privacy accountant is charged exactly like a refit
    /// (ε for PRS, ε′ for PNSA + PNCF) and replaces the previous ledger.
    ///
    /// Errors leave the model untouched: domain redeclarations of existing items are
    /// rejected (`XMapError::Data`), non-finite ratings propagate from the matrix
    /// layer, and an exhausted privacy budget aborts before anything is released.
    pub fn apply_delta(&mut self, delta: &RatingDelta) -> Result<DeltaReport> {
        for &(item, domain) in delta.item_domains() {
            if item.index() < self.full.n_items() && self.full.item_domain(item) != domain {
                return Err(XMapError::Data(format!(
                    "delta redeclares item {item} from {:?} to {domain:?}; domain migration \
                     requires a full refit",
                    self.full.item_domain(item)
                )));
            }
        }
        let updated = self
            .full
            .apply_delta(delta.ratings(), delta.item_domains())?;
        let affected_users = delta.affected_users();

        // A fresh accountant for the re-released artifacts, sized exactly like a refit.
        let budget = self
            .config
            .mode
            .is_private()
            .then(|| Mutex::new(PrivacyBudget::new(self.config.privacy.total())));

        let parts = self.flow.run(
            &DeltaStage {
                model: self,
                updated: &updated,
                affected_users: &affected_users,
                budget: budget.as_ref(),
            },
            (),
        )?;
        let mut report = parts.report;
        report.n_delta_ratings = delta.len();

        self.full = updated;
        self.graph = parts.graph;
        self.xsim = parts.xsim;
        self.replacements = parts.replacements;
        self.recommender = parts.recommender;
        self.item_pools = parts.item_pools;
        self.budget = budget.map(|m| m.into_inner().expect("privacy budget mutex poisoned"));
        // Refresh the model-shape statistics; the fit-stage task bags keep describing
        // the original fit (the delta's own bag lives in the `delta` ledger).
        self.stats.n_standard_hetero_pairs = self.graph.n_heterogeneous_pairs();
        self.stats.n_xsim_hetero_pairs = self.xsim.n_heterogeneous_pairs();
        self.stats.n_bridge_items = parts.bridges.n_bridges();
        self.stats.layer_counts = parts.partition.cell_counts();
        self.partition = parts.partition;
        self.stats.stage_durations = self.flow.reports();
        self.stats.n_target_ratings = parts.n_target_ratings;
        Ok(report)
    }

    /// Per-partition task costs of the most recent [`XMapModel::apply_delta`] (the
    /// `delta` stage's ledger entry) — the incremental-fit analogue of
    /// [`XMapModel::fit_task_costs`], for the cluster simulator. Data-derived, so
    /// identical at any worker count; grows with the delta's affected neighbourhood,
    /// not the trace.
    pub fn delta_task_costs(&self) -> Option<Vec<f64>> {
        self.flow.stage_costs(DELTA_STAGE_NAME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XMapConfig;
    use crate::pipeline::XMapPipeline;
    use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};

    fn dataset() -> CrossDomainDataset {
        CrossDomainDataset::generate(CrossDomainConfig::small())
    }

    fn config(mode: XMapMode) -> XMapConfig {
        XMapConfig {
            mode,
            k: 8,
            ..Default::default()
        }
    }

    /// The delta model must hold the same released artifacts as a full refit on the
    /// updated matrix: matrix bits, graph bits, X-Sim rows, replacement table and
    /// probe predictions. (The 1/2/8-worker, all-modes version of this lives in
    /// `tests/incremental_equivalence.rs`.)
    fn assert_matches_refit(model: &XMapModel, refit: &XMapModel, ds: &CrossDomainDataset) {
        assert_eq!(model.full, refit.full, "updated matrices diverged");
        assert_eq!(model.graph, refit.graph, "graph arenas diverged");
        assert_eq!(model.xsim, refit.xsim, "X-Sim tables diverged");
        assert_eq!(
            model.replacements, refit.replacements,
            "replacement tables diverged"
        );
        assert_eq!(model.item_pools, refit.item_pools, "kNN pools diverged");
        for &u in ds.overlap_users.iter().take(5) {
            for &i in ds.target_items().iter().take(8) {
                assert_eq!(
                    model.predict(u, i).to_bits(),
                    refit.predict(u, i).to_bits(),
                    "prediction diverged for {u}/{i}"
                );
            }
        }
    }

    #[test]
    fn empty_delta_equals_a_refit_on_the_same_matrix() {
        let ds = dataset();
        let mut model = XMapPipeline::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let report = model.apply_delta(&RatingDelta::new()).unwrap();
        assert_eq!(report.n_delta_ratings, 0);
        assert_eq!(report.n_rescored_pairs, 0);
        assert_eq!(report.n_xsim_rows, 0);
        assert_eq!(report.n_pool_refits, 0);
        let refit = XMapPipeline::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_matches_refit(&model, &refit, &ds);
        assert!(model.delta_task_costs().is_some());
    }

    #[test]
    fn delta_with_a_brand_new_user_and_item_equals_a_refit() {
        let ds = dataset();
        let mut model = XMapPipeline::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let new_user = ds.matrix.n_users() as u32;
        let new_item = ds.matrix.n_items() as u32;
        let existing_source = ds.source_items()[0];
        let existing_target = ds.target_items()[0];
        let mut delta = RatingDelta::new();
        delta
            .declare_item(ItemId(new_item), DomainId::TARGET)
            .push_timed(new_user, existing_source.0, 5.0, 50)
            .push_timed(new_user, existing_target.0, 4.0, 51)
            .push_timed(new_user, new_item, 3.0, 52)
            .push_timed(ds.overlap_users[0].0, new_item, 5.0, 53);
        let report = model.apply_delta(&delta).unwrap();
        assert_eq!(report.n_delta_ratings, 4);
        assert_eq!(report.n_affected_users, 2);
        assert!(report.n_rescored_pairs > 0);
        let updated = ds
            .matrix
            .apply_delta(delta.ratings(), delta.item_domains())
            .unwrap();
        let refit = XMapPipeline::fit(
            &updated,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_matches_refit(&model, &refit, &ds);
        // the new user must be servable straight away
        let pred = model.predict(UserId(new_user), existing_target);
        assert_eq!(
            pred.to_bits(),
            refit.predict(UserId(new_user), existing_target).to_bits()
        );
    }

    #[test]
    fn repeated_deltas_to_the_same_cell_equal_a_refit() {
        let ds = dataset();
        let mut model = XMapPipeline::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let user = ds.overlap_users[0];
        let item = ds.target_items()[0];
        // one batch carrying several updates of the same cell...
        let mut delta = RatingDelta::new();
        delta
            .push_timed(user.0, item.0, 1.0, 90)
            .push_timed(user.0, item.0, 2.0, 91)
            .push_timed(user.0, item.0, 5.0, 91);
        model.apply_delta(&delta).unwrap();
        // ... followed by a second incremental batch touching it again
        let mut second = RatingDelta::new();
        second.push_timed(user.0, item.0, 3.0, 92);
        model.apply_delta(&second).unwrap();
        assert_eq!(model.full.rating(user, item), Some(3.0));
        let updated = ds
            .matrix
            .apply_delta(delta.ratings(), &[])
            .unwrap()
            .apply_delta(second.ratings(), &[])
            .unwrap();
        let refit = XMapPipeline::fit(
            &updated,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_matches_refit(&model, &refit, &ds);
    }

    #[test]
    fn domain_redeclaration_of_an_existing_item_is_rejected_without_side_effects() {
        let ds = dataset();
        let mut model = XMapPipeline::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let n_before = model.full.n_ratings();
        let source_item = ds.source_items()[0];
        let mut delta = RatingDelta::new();
        delta
            .declare_item(source_item, DomainId::TARGET)
            .push_timed(0, source_item.0, 5.0, 99);
        let err = model.apply_delta(&delta).unwrap_err();
        assert!(matches!(err, XMapError::Data(_)));
        assert!(err.to_string().contains("full refit"));
        assert_eq!(model.full.n_ratings(), n_before, "model must be untouched");
        // redeclaring with the *current* domain is a no-op and succeeds
        let mut ok = RatingDelta::new();
        ok.declare_item(source_item, DomainId::SOURCE);
        assert!(model.apply_delta(&ok).is_ok());
    }

    #[test]
    fn private_delta_recharges_a_fresh_budget_like_a_refit() {
        let ds = dataset();
        let cfg = config(XMapMode::XMapItemBased);
        let mut model =
            XMapPipeline::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, cfg).unwrap();
        let mut delta = RatingDelta::new();
        delta.push_timed(ds.overlap_users[0].0, ds.target_items()[0].0, 5.0, 77);
        model.apply_delta(&delta).unwrap();
        let budget = model
            .privacy_budget()
            .expect("private modes carry a budget");
        let mechanisms: Vec<&str> = budget
            .ledger()
            .iter()
            .map(|e| e.mechanism.as_str())
            .collect();
        assert_eq!(mechanisms, vec!["PRS", "PNSA", "PNCF"]);
        assert!((budget.spent() - cfg.privacy.total()).abs() < 1e-12);
    }

    #[test]
    fn rating_delta_accessors() {
        let mut d = RatingDelta::new();
        assert!(d.is_empty());
        d.push_timed(3, 1, 4.0, 2).push_timed(1, 2, 5.0, 3);
        d.push_timed(3, 4, 2.0, 4);
        d.declare_item(ItemId(9), DomainId::TARGET);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.affected_users(), vec![UserId(1), UserId(3)]);
        assert_eq!(d.ratings().len(), 3);
        assert_eq!(d.item_domains(), &[(ItemId(9), DomainId::TARGET)]);
    }
}
