//! Incremental model maintenance (delta fit) on the Dataflow engine, with
//! build-aside-then-publish epoch semantics.
//!
//! A deployed X-Map model keeps absorbing new ratings; refitting on the full trace for
//! every batch would make update cost scale with history rather than with the update.
//! [`XMapModel::apply_delta`] instead re-derives **only the state a delta actually
//! affects**, and proves the shortcut exact: the resulting model is **bit-identical to
//! a full refit on the updated matrix** (enforced by `tests/incremental_equivalence.rs`
//! in all four modes at 1/2/8 workers).
//!
//! The recompute-not-accumulate rule (see DESIGN.md) governs every layer:
//!
//! 1. the [`RatingMatrix`] absorbs the delta through the incremental builder path
//!    (`RatingMatrix::apply_delta` — row merges and copied averages, no re-sort);
//! 2. the similarity graph re-*scores* exactly the affected co-rated pairs (every pair
//!    touching an item a delta user rated — adjusted cosine reads all raters' user
//!    averages) and merges them with the cached statistics of every other pair
//!    (`SimilarityGraph::apply_updates`);
//! 3. the X-Sim table recomputes only the source rows whose meta-path neighbourhood
//!    (≤ 5 hops) touches a changed graph row or layer rank;
//! 4. the generator re-draws replacements only for those rows (per-item RNG streams
//!    make the unchanged draws bit-equal by construction), and
//! 5. the item-based kNN pools are re-scored only for target items with an affected
//!    target-domain pair.
//!
//! ## Build aside, swap, drain, retire
//!
//! `apply_delta` is `&self`: it never mutates the served model in place. It takes an
//! epoch snapshot as its base, constructs every updated piece *aside*, wraps them into
//! the next [`ModelEpoch`] — pieces the delta did not touch are **shared** with the
//! base epoch through their `Arc`s (the whole graph arena when no pair was re-scored,
//! the X-Sim/replacement tables when no row was within meta-path reach, the recommender
//! when the target-domain training matrix is unchanged) — and publishes the epoch with
//! one pointer swap on the model's `EpochHandle`. Readers serving from the previous
//! epoch finish undisturbed; the old epoch is retired once its last snapshot drops.
//! Writers serialize on the model's ingest lock.
//!
//! ## MRV-split ingest accumulators
//!
//! The write-side hotspot accumulators of an ingest — per-user rating sums (a prolific
//! user's average) and per-item touch counts (a head-of-power-law item absorbing most
//! co-rating updates) — are maintained MRV-style (`xmap_cf::mrv`): each hot key's
//! updates are routed to [`INGEST_MRV_SHARDS`] position-routed shards, the `(key,
//! shard)` cells fold partition-parallel on the dataflow, and the partials merge in
//! `(key, shard)` order — so commutative updates don't serialize on one cell, yet the
//! published bits equal the serial routed fold exactly. The merged per-user keys *are*
//! the delta's affected-user set, and the merged statistics are published as
//! [`IngestAccumulators`].
//!
//! All partitioned work runs as one [`DeltaStage`] on the model's own dataflow, so the
//! per-partition data-derived costs land in a `"delta"` ledger
//! ([`XMapModel::delta_task_costs`]) the `update_throughput` bench replays on the
//! cluster simulator — identical at any worker count, and scaling with the delta's
//! co-rating neighbourhood rather than the trace.

use crate::config::XMapMode;
use crate::generator::AlterEgoGenerator;
use crate::pipeline::{recommender_from_pools, ModelEpoch, XMapModel};
use crate::recommend::{
    PrivateItemBasedRecommender, PrivateUserBasedRecommender, ProfileRecommender,
    UserBasedRecommender,
};
use crate::{Result, XMapError};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use xmap_cf::knn::{CandidateScratch, ItemKnn, ItemKnnConfig, ItemNeighbor, Profile};
use xmap_cf::mrv::{self, MrvCell, MrvShard};
use xmap_cf::similarity::item_similarity_stats;
use xmap_cf::{DomainId, ItemId, Rating, RatingMatrix, SimilarityStats, Timestep, UserId};
use xmap_engine::{
    ConcurrentIngest, ConcurrentRead, ConcurrentReport, ConcurrentStage, Stage, StageContext,
    CONCURRENT_INGEST_STAGE, CONCURRENT_READ_STAGE,
};
use xmap_graph::{BridgeIndex, LayerPartition, SimilarityGraph};
use xmap_privacy::PrivacyBudget;

/// Ledger key of the delta stage.
pub const DELTA_STAGE_NAME: &str = "delta";

/// Shard fan-out of the ingest-side MRV accumulators: each hot key's updates are split
/// across this many position-routed shards (see `xmap_cf::mrv`). The fan-out is part of
/// the routing function, so it must stay fixed for the accumulators to be reproducible.
pub const INGEST_MRV_SHARDS: usize = 8;

/// A batch of rating-trace updates: new or updated ratings (possibly introducing new
/// users) plus domain declarations for new items.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RatingDelta {
    ratings: Vec<Rating>,
    item_domains: Vec<(ItemId, DomainId)>,
}

impl RatingDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rating event (a new cell, an update of an existing one, or a rating by a
    /// brand-new user). Duplicate `(user, item)` events follow the rating matrix's
    /// semantics: the latest timestep wins, ties won by the later push.
    pub fn push(&mut self, rating: Rating) -> &mut Self {
        self.ratings.push(rating);
        self
    }

    /// Adds a rating by raw ids with an explicit timestep.
    pub fn push_timed(&mut self, user: u32, item: u32, value: f64, t: u32) -> &mut Self {
        self.push(Rating::at(UserId(user), ItemId(item), value, Timestep(t)))
    }

    /// Declares the domain of a (typically new) item. Redeclaring an existing item with
    /// its current domain is a no-op; declaring a *different* domain is rejected by
    /// [`XMapModel::apply_delta`] — domain migration is not an incremental operation.
    pub fn declare_item(&mut self, item: ItemId, domain: DomainId) -> &mut Self {
        self.item_domains.push((item, domain));
        self
    }

    /// The rating events of the delta, in push order.
    pub fn ratings(&self) -> &[Rating] {
        &self.ratings
    }

    /// The item-domain declarations of the delta, in push order.
    pub fn item_domains(&self) -> &[(ItemId, DomainId)] {
        &self.item_domains
    }

    /// Number of rating events.
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// Whether the delta carries no rating events.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// The distinct users touched by the delta, sorted ascending.
    pub fn affected_users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.ratings.iter().map(|r| r.user).collect();
        users.sort_unstable();
        users.dedup();
        users
    }
}

/// On-disk codec for a delta — the journal's record payload: the rating events and
/// item-domain declarations verbatim, in push order (replay must see exactly the
/// batch `apply_delta` saw).
impl xmap_store::Codec for RatingDelta {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        self.ratings.enc(e);
        self.item_domains.enc(e);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(RatingDelta {
            ratings: Vec::dec(d)?,
            item_domains: Vec::dec(d)?,
        })
    }
}

/// What a delta fit recomputed — the shape of the incremental work, for reporting and
/// for the `update_throughput` bench's cost-scaling assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// The epoch this delta published (monotonic; the fit itself is epoch 1).
    pub epoch: u64,
    /// Rating events applied.
    pub n_delta_ratings: usize,
    /// Distinct users touched by the delta.
    pub n_affected_users: usize,
    /// Items whose similarity statistics could have moved (the delta users' profiles).
    pub n_dirty_items: usize,
    /// Co-rated pairs re-scored for the similarity graph.
    pub n_rescored_pairs: usize,
    /// X-Sim source rows recomputed.
    pub n_xsim_rows: usize,
    /// Replacement draws re-run.
    pub n_replacement_draws: usize,
    /// Item-kNN pools re-fitted (0 for the user-based modes).
    pub n_pool_refits: usize,
    /// Byte offset of this delta's record in the attached journal, or `None` when
    /// the model has no store attached. Written *before* the epoch was published
    /// (write-ahead), so a crash after `apply_delta` returns can always replay it.
    pub journal_offset: Option<u64>,
}

/// The MRV-merged write-side accumulators of one delta ingest, published alongside the
/// epoch (see [`XMapModel::ingest_accumulators`]).
///
/// Both vectors come out of the deterministic `(key, shard)` merge of `xmap_cf::mrv`,
/// so they are bit-equal to `mrv::serial_keyed_reference` over the delta's event stream
/// at any worker count.
#[derive(Clone, Debug, PartialEq)]
pub struct IngestAccumulators {
    /// How many position-routed shards each hot key's updates were split across.
    pub n_shards: usize,
    /// Per-user `(sum, count)` of the delta's rating values, sorted by user. The keys
    /// of this vector are the delta's affected-user set.
    pub user_stats: Vec<(UserId, MrvShard)>,
    /// Per-item update counts of the delta, sorted by item.
    pub item_touches: Vec<(ItemId, u64)>,
}

/// One read answered by [`XMapModel::serve_concurrent`]: the recommendations plus the
/// epoch of the snapshot that produced them — the boundary against which the serialized
/// reference must be bit-equal.
#[derive(Clone, Debug, PartialEq)]
pub struct ServedRead {
    /// The epoch the read's snapshot observed.
    pub epoch: u64,
    /// The top-N recommendations served from that epoch.
    pub recommendations: Vec<(ItemId, f64)>,
}

/// Source-domain items whose X-Sim row could differ between the old and updated graph:
/// every source item within 5 hops (the maximum meta-path length — layer ranks run
/// 0..=5) of an item whose adjacency row, layer rank or domain changed, measured over
/// the *union* of the old and new adjacencies (a delta can remove paths as well as add
/// them). Conservative supersets are fine — recomputation is exact — but anything
/// smaller than the true dependency set would break bit-identity with a full refit.
fn affected_xsim_rows(
    old_graph: &SimilarityGraph,
    old_partition: &LayerPartition,
    new_graph: &SimilarityGraph,
    new_partition: &LayerPartition,
    source: DomainId,
) -> Vec<ItemId> {
    let n_items = old_graph.n_items().max(new_graph.n_items());
    let mut distance = vec![u8::MAX; n_items];
    let mut queue: VecDeque<ItemId> = VecDeque::new();
    for (ix, slot) in distance.iter_mut().enumerate() {
        let item = ItemId(ix as u32);
        let old_row = old_graph.neighbors(item);
        let new_row = new_graph.neighbors(item);
        let row_changed = old_row.len() != new_row.len()
            || old_row.ids() != new_row.ids()
            || (0..old_row.len()).any(|s| old_row.get(s).stats != new_row.get(s).stats);
        let rank_changed = old_partition.path_rank(item, source)
            != new_partition.path_rank(item, source)
            || old_partition.domain(item) != new_partition.domain(item);
        if row_changed || rank_changed {
            *slot = 0;
            queue.push_back(item);
        }
    }
    const MAX_HOPS: u8 = 5;
    while let Some(item) = queue.pop_front() {
        let d = distance[item.index()];
        if d == MAX_HOPS {
            continue;
        }
        for &to in old_graph
            .neighbors(item)
            .ids()
            .iter()
            .chain(new_graph.neighbors(item).ids())
        {
            if distance[to.index()] > d + 1 {
                distance[to.index()] = d + 1;
                queue.push_back(to);
            }
        }
    }
    (0..n_items)
        .filter(|&ix| distance[ix] <= MAX_HOPS)
        .map(|ix| ItemId(ix as u32))
        .filter(|&i| new_graph.item_domain(i) == source)
        .collect()
}

/// Target items whose kNN pool must be re-scored: the endpoints of every affected
/// co-rated pair *within the target-domain matrix*. An item with no affected pair
/// keeps its pool bit for bit (candidate set, candidate statistics and its raters'
/// averages are all untouched).
fn affected_pool_items(target_matrix: &RatingMatrix, affected_users: &[UserId]) -> Vec<ItemId> {
    let dirty = SimilarityGraph::dirty_items(target_matrix, affected_users);
    let keys = SimilarityGraph::affected_pair_keys(target_matrix, &dirty);
    let mut items: Vec<ItemId> = Vec::with_capacity(keys.len() * 2);
    for &key in &keys {
        let (lo, hi) = SimilarityGraph::pair_of_key(key);
        items.push(lo);
        items.push(hi);
    }
    items.sort_unstable();
    items.dedup();
    items
}

/// Folds the routed `(key, shard)` cells of one MRV accumulation partition-parallel
/// (one data-derived cost per partition: `Σ |values|` — a fold's work is the values it
/// folds) and merges the partials in the deterministic `(key, shard)` order. Bit-equal
/// to `mrv::serial_keyed_reference` at any worker count because the outputs come back
/// in routing order.
fn fold_routed_cells<K>(cells: Vec<MrvCell<K>>, cx: &mut StageContext<'_>) -> Vec<(K, MrvShard)>
where
    K: Copy + Ord + Send + Sync,
{
    let folded: Vec<(K, MrvShard)> = cx.map_items_ordered(cells, |_ix, part| {
        let outs: Vec<(K, MrvShard)> = part.iter().map(|(_, c)| (c.key, c.fold())).collect();
        let cost: f64 = part.iter().map(|(_, c)| c.values.len() as f64).sum();
        (outs, cost)
    });
    mrv::merge_cells(folded)
}

/// Everything a delta fit rebuilds, handed back to [`XMapModel::apply_delta`]. Each
/// A refitted recommender plus, for the item-based modes, its freshly spliced kNN
/// pools (`None` for the user-based modes, which keep no pools).
type RecommenderRefit = (
    Box<dyn ProfileRecommender + Send + Sync>,
    Option<Vec<Vec<ItemNeighbor>>>,
);

/// `None` means "bit-identical to the base epoch — share its `Arc`, don't copy".
struct DeltaParts {
    /// The re-scored graph with its bridges and layer partition; `None` when no pair
    /// was re-scored and no item was added.
    graph: Option<(SimilarityGraph, BridgeIndex, LayerPartition)>,
    /// `None` when no source row was within meta-path reach of a change.
    xsim: Option<crate::xsim::XSimTable>,
    /// `None` exactly when `xsim` is (replacements re-draw per recomputed row).
    replacements: Option<crate::generator::ReplacementTable>,
    /// The refitted recommender and (item-based modes) spliced pools; `None` when the
    /// target-domain training matrix is unchanged by the delta.
    recommender: Option<RecommenderRefit>,
    /// `None` when the target matrix (and so its rating count) is unchanged.
    n_target_ratings: Option<usize>,
    accumulators: IngestAccumulators,
    report: DeltaReport,
}

/// The delta stage: all affected-item work of an incremental fit, run as one stage so
/// every partitioned map's data-derived costs accumulate in the `"delta"` ledger.
struct DeltaStage<'a> {
    base: &'a ModelEpoch,
    updated: &'a RatingMatrix,
    delta: &'a RatingDelta,
    budget: Option<&'a Mutex<PrivacyBudget>>,
}

impl Stage<()> for DeltaStage<'_> {
    type Out = Result<DeltaParts>;

    fn name(&self) -> &'static str {
        DELTA_STAGE_NAME
    }

    fn run(&self, _input: (), cx: &mut StageContext<'_>) -> Result<DeltaParts> {
        let base = self.base;
        let updated = self.updated;
        let delta = self.delta;
        let config = base.config;
        let mut report = DeltaReport::default();

        // --- 0. MRV ingest accumulators: route the delta's rating events to
        // (key, shard) cells by per-key occurrence position, fold the cells
        // partition-parallel, merge in (key, shard) order. The merged user keys are
        // the affected-user set every later step consumes. ---
        let user_cells = mrv::route_events(
            delta.ratings().iter().map(|r| (r.user, r.value)),
            INGEST_MRV_SHARDS,
        );
        let item_cells = mrv::route_events(
            delta.ratings().iter().map(|r| (r.item, 1.0)),
            INGEST_MRV_SHARDS,
        );
        let user_stats = fold_routed_cells(user_cells, cx);
        let item_stats = fold_routed_cells(item_cells, cx);
        let affected_users: Vec<UserId> = user_stats.iter().map(|&(u, _)| u).collect();
        report.n_affected_users = affected_users.len();
        let accumulators = IngestAccumulators {
            n_shards: INGEST_MRV_SHARDS,
            user_stats,
            item_touches: item_stats.iter().map(|&(i, s)| (i, s.count)).collect(),
        };

        // --- 1. Similarity graph: re-score exactly the affected pair keys,
        // partition-parallel (the baseliner's partitioning and cost model), then merge
        // with the cached statistics of every unaffected stored pair. If nothing is
        // affected and no item was added, the whole arena is shared with the base
        // epoch instead of copied. ---
        let dirty = SimilarityGraph::dirty_items(updated, &affected_users);
        let keys = SimilarityGraph::affected_pair_keys(updated, &dirty);
        report.n_dirty_items = dirty.len();
        report.n_rescored_pairs = keys.len();
        let share_graph = keys.is_empty() && updated.n_items() == base.full.n_items();
        let rebuilt_graph: Option<(SimilarityGraph, BridgeIndex, LayerPartition)> = if share_graph {
            None
        } else {
            let graph_config = base.graph.config();
            let positions: Vec<usize> = (0..keys.len()).collect();
            let fresh: Vec<SimilarityStats> = cx.map_items_ordered(positions, |_ix, part| {
                let outs: Vec<SimilarityStats> = part
                    .iter()
                    .map(|&(_, key_ix)| {
                        let (lo, hi) = SimilarityGraph::pair_of_key(keys[key_ix]);
                        item_similarity_stats(updated, lo, hi, graph_config.metric)
                    })
                    .collect();
                let cost: f64 = part
                    .iter()
                    .map(|&(_, key_ix)| {
                        let (lo, hi) = SimilarityGraph::pair_of_key(keys[key_ix]);
                        1.0 + (updated.item_degree(lo) + updated.item_degree(hi)) as f64
                    })
                    .sum();
                (outs, cost)
            });
            let graph = base.graph.apply_updates(updated, &keys, fresh);
            // Bridges and layers: cheap linear recomputes over the new arena; the old
            // partition is retained on the epoch, so rank changes are a comparison,
            // not a rebuild.
            let bridges = BridgeIndex::from_graph(&graph);
            let partition = LayerPartition::compute(&graph, &bridges);
            Some((graph, bridges, partition))
        };
        let (new_graph, new_partition): (&SimilarityGraph, &LayerPartition) = match &rebuilt_graph {
            Some((g, _, p)) => (g, p),
            None => (&base.graph, &base.partition),
        };

        // --- 2. X-Sim: recompute only the source rows within meta-path reach of a
        // change, partition-parallel with the extender's scratch reuse and cost model.
        // An untouched graph reaches nothing, so the table is shared outright. ---
        let rows = if share_graph {
            Vec::new()
        } else {
            affected_xsim_rows(
                &base.graph,
                &base.partition,
                new_graph,
                new_partition,
                base.source_domain,
            )
        };
        report.n_xsim_rows = rows.len();
        let rebuilt_xsim = if rows.is_empty() {
            None
        } else {
            Some(base.xsim.with_recomputed_rows(
                new_graph,
                new_partition,
                base.source_domain,
                config.metapath,
                rows.clone(),
                cx,
            ))
        };
        let new_xsim = rebuilt_xsim.as_ref().unwrap_or(&base.xsim);

        // --- 3. Generator: PRS debit, then re-draw replacements for the recomputed
        // rows only (per-item RNG streams keep unchanged rows bit-equal — with no
        // recomputed row the old table already *is* the refit table, so it is shared).
        // The ε debit is unconditional: the delta re-releases the table either way. ---
        if let Some(b) = self.budget {
            b.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .spend("PRS", config.privacy.epsilon)
                .map_err(XMapError::Privacy)?;
        }
        report.n_replacement_draws = rows.len();
        let rebuilt_replacements = if rows.is_empty() {
            None
        } else {
            Some(AlterEgoGenerator::recompute_replacements_batched(
                new_xsim,
                &config,
                rows,
                &base.replacements,
                cx,
            ))
        };

        // --- 4. Recommender: when the delta leaves the target-domain training matrix
        // untouched (no target rating events, no new users or items) the fitted
        // recommender and its pools are bit-equal to a refit's, so both are shared.
        // Otherwise splice the item-kNN pools (item-based modes) or refit the
        // stateless user-based recommender on the new target matrix. The ε′ debit is
        // unconditional for the private modes — shared artifacts are still re-released
        // under the fresh accountant. ---
        let share_recommender = updated.n_users() == base.full.n_users()
            && updated.n_items() == base.full.n_items()
            && delta
                .ratings()
                .iter()
                .all(|r| updated.item_domain(r.item) != base.target_domain);
        let (rebuilt_recommender, n_target_ratings) = if share_recommender {
            if config.mode.is_private() {
                // Same ledger entries as the fit paths: ε′/2 for PNSA, ε′/2 for PNCF.
                PrivateItemBasedRecommender::debit_budget(
                    config.privacy.epsilon_prime,
                    &mut self
                        .budget
                        .expect("private modes carry a privacy budget") // lint: panic — reviewed invariant
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                )?;
            }
            (None, None)
        } else {
            let target_matrix = updated
                .filter(|r| updated.item_domain(r.item) == base.target_domain)
                .map_err(|_| XMapError::Data("target domain has no ratings".to_string()))?;
            let n_target_ratings = target_matrix.n_ratings();
            if n_target_ratings == 0 {
                return Err(XMapError::Data("target domain has no ratings".to_string()));
            }
            let fitted = match config.mode {
                XMapMode::NxMapItemBased | XMapMode::XMapItemBased => {
                    if config.mode == XMapMode::XMapItemBased {
                        // The delta re-releases the recommendation artifacts, so the
                        // fresh accountant debits ε′ exactly like a refit — before the
                        // pool work.
                        PrivateItemBasedRecommender::debit_budget(
                            config.privacy.epsilon_prime,
                            &mut self
                                .budget
                                .expect("private modes carry a privacy budget") // lint: panic — reviewed invariant
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner),
                        )?;
                    }
                    let pool_k = match config.mode {
                        XMapMode::XMapItemBased => PrivateItemBasedRecommender::pool_size(config.k),
                        _ => config.k,
                    };
                    let knn_config = ItemKnnConfig {
                        k: pool_k,
                        temporal_alpha: config.temporal_alpha,
                        ..Default::default()
                    };
                    let pool_items = affected_pool_items(&target_matrix, &affected_users);
                    report.n_pool_refits = pool_items.len();
                    let fresh_pools: Vec<(ItemId, Vec<ItemNeighbor>)> =
                        cx.map_items_ordered(pool_items, |_ix, part| {
                            // One epoch-marked seen buffer per partition, reused across
                            // its items — the same dedup-during-collection discipline as
                            // `ItemKnn::candidate_sets`.
                            let mut scratch = CandidateScratch::new();
                            let mut outs = Vec::with_capacity(part.len());
                            let mut cost = 0.0f64;
                            for &(_, item) in part {
                                let cands = scratch.candidate_set(&target_matrix, item);
                                let deg_i = target_matrix.item_degree(item) as f64;
                                cost += 1.0
                                    + cands
                                        .iter()
                                        .map(|&j| deg_i + target_matrix.item_degree(j) as f64)
                                        .sum::<f64>();
                                let pool = ItemKnn::neighbors_from_candidates(
                                    &target_matrix,
                                    item,
                                    &cands,
                                    &knn_config,
                                );
                                outs.push((item, pool));
                            }
                            (outs, cost)
                        });
                    let mut pools = base
                        .item_pools
                        .as_ref()
                        .expect("item-based models retain their kNN pools") // lint: panic — reviewed invariant
                        .as_ref()
                        .clone();
                    pools.resize(target_matrix.n_items(), Vec::new());
                    for (item, pool) in fresh_pools {
                        pools[item.index()] = pool;
                    }
                    recommender_from_pools(&config, target_matrix, pools)?
                }
                XMapMode::NxMapUserBased => (
                    Box::new(UserBasedRecommender::fit(target_matrix, config.k)?)
                        as Box<dyn ProfileRecommender + Send + Sync>,
                    None,
                ),
                XMapMode::XMapUserBased => (
                    Box::new(PrivateUserBasedRecommender::fit(
                        target_matrix,
                        config.k,
                        config.privacy.epsilon_prime,
                        config.privacy.rho,
                        config.seed,
                        &mut self
                            .budget
                            .expect("private modes carry a privacy budget") // lint: panic — reviewed invariant
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                    )?) as Box<dyn ProfileRecommender + Send + Sync>,
                    None,
                ),
            };
            (Some(fitted), Some(n_target_ratings))
        };

        Ok(DeltaParts {
            graph: rebuilt_graph,
            xsim: rebuilt_xsim,
            replacements: rebuilt_replacements,
            recommender: rebuilt_recommender,
            n_target_ratings,
            accumulators,
            report,
        })
    }
}

impl XMapModel {
    /// Absorbs a batch of new/updated ratings into the fitted model **incrementally**
    /// and **without blocking readers**: only the state the delta affects is recomputed
    /// (see the module docs for the layers), the next [`ModelEpoch`] is built aside —
    /// sharing every untouched piece with the base epoch — and published with a single
    /// pointer swap. The resulting model — graph bits, replacement table, kNN pools,
    /// predictions, privacy ledger — is **bit-identical to a full
    /// [`crate::XMapModel::fit`] on the updated matrix**. The published epoch is
    /// stamped into [`DeltaReport::epoch`].
    ///
    /// Readers that snapshotted the previous epoch keep serving it undisturbed; the old
    /// epoch is retired once its last snapshot drops. Concurrent `apply_delta` calls
    /// serialize on the model's ingest lock.
    ///
    /// The affected-item work runs as one `"delta"` stage on the model's own dataflow;
    /// its per-partition data-derived task costs ([`XMapModel::delta_task_costs`]) are
    /// identical at any worker count and scale with the delta's co-rating
    /// neighbourhood, not the trace. For the private modes the delta re-releases every
    /// artifact, so a **fresh** privacy accountant is charged exactly like a refit
    /// (ε for PRS, ε′ for PNSA + PNCF) and replaces the previous ledger.
    ///
    /// Errors leave the model untouched (no epoch is published): domain redeclarations
    /// of existing items are rejected (`XMapError::Data`), non-finite ratings propagate
    /// from the matrix layer, and an exhausted privacy budget aborts before anything is
    /// released.
    pub fn apply_delta(&self, delta: &RatingDelta) -> Result<DeltaReport> {
        let _ingest = self
            .ingest_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (_, base) = self.handle.load();
        for &(item, domain) in delta.item_domains() {
            if item.index() < base.full.n_items() && base.full.item_domain(item) != domain {
                return Err(XMapError::Data(format!(
                    "delta redeclares item {item} from {:?} to {domain:?}; domain migration \
                     requires a full refit",
                    base.full.item_domain(item)
                )));
            }
        }
        let updated = Arc::new(
            base.full
                .apply_delta(delta.ratings(), delta.item_domains())?,
        );

        // A fresh accountant for the re-released artifacts, sized exactly like a refit.
        let budget = self
            .config
            .mode
            .is_private()
            .then(|| Mutex::new(PrivacyBudget::new(self.config.privacy.total())));

        let parts = self.flow.run(
            &DeltaStage {
                base: &base,
                updated: &updated,
                delta,
                budget: budget.as_ref(),
            },
            (),
        )?;
        let DeltaParts {
            graph: rebuilt_graph,
            xsim: rebuilt_xsim,
            replacements: rebuilt_replacements,
            recommender: rebuilt_recommender,
            n_target_ratings,
            accumulators,
            report: stage_report,
        } = parts;
        let mut report = stage_report;
        report.n_delta_ratings = delta.len();

        // Model-shape statistics of the rebuilt pieces, captured before the pieces move
        // into the next epoch (shared pieces leave the stats untouched — they are the
        // base epoch's, unchanged by construction).
        let graph_shape = rebuilt_graph
            .as_ref()
            .map(|(g, b, p)| (g.n_heterogeneous_pairs(), b.n_bridges(), p.cell_counts()));
        let xsim_pairs = rebuilt_xsim.as_ref().map(|x| x.n_heterogeneous_pairs());

        // --- Build the next epoch aside: every piece the delta rebuilt gets a fresh
        // Arc; every untouched piece shares the base epoch's. ---
        let (graph, partition) = match rebuilt_graph {
            Some((g, _bridges, p)) => (Arc::new(g), Arc::new(p)),
            None => (Arc::clone(&base.graph), Arc::clone(&base.partition)),
        };
        let (recommender, item_pools) = match rebuilt_recommender {
            Some((rec, pools)) => (
                Arc::from(rec) as Arc<dyn ProfileRecommender + Send + Sync>,
                pools.map(Arc::new),
            ),
            None => (Arc::clone(&base.recommender), base.item_pools.clone()),
        };
        let next = ModelEpoch {
            config: self.config,
            source_domain: self.source_domain,
            target_domain: self.target_domain,
            full: Arc::clone(&updated),
            graph,
            partition,
            replacements: rebuilt_replacements
                .map(Arc::new)
                .unwrap_or_else(|| Arc::clone(&base.replacements)),
            xsim: rebuilt_xsim
                .map(Arc::new)
                .unwrap_or_else(|| Arc::clone(&base.xsim)),
            recommender,
            item_pools,
            budget: budget.map(|m| {
                Arc::new(
                    m.into_inner()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                )
            }),
        };

        // --- Write-ahead journal: with a store attached, the delta record must be
        // durable (appended + fsynced) *before* the epoch it produces becomes
        // visible. An append failure aborts with nothing published, so the model —
        // in memory and on disk — is left exactly as it was. Still under the ingest
        // lock, so journal order is publish order. ---
        let mut journal_offset = None;
        {
            let mut store = self
                .store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(store) = store.as_mut() {
                let next_epoch = self.handle.epoch() + 1;
                journal_offset = Some(store.append(next_epoch, delta)?);
            }
        }

        // --- Publish: one pointer swap; readers on the base epoch drain and the base
        // retires with its last snapshot. ---
        report.epoch = self.handle.publish(Arc::new(next));
        report.journal_offset = journal_offset;

        // Refresh the mutable-side bookkeeping (still under the ingest lock). The
        // fit-stage task bags keep describing the original fit — the delta's own bag
        // lives in the `delta` ledger.
        {
            let mut stats = self
                .stats
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some((n_standard, n_bridges, layer_counts)) = graph_shape {
                stats.n_standard_hetero_pairs = n_standard;
                stats.n_bridge_items = n_bridges;
                stats.layer_counts = layer_counts;
            }
            if let Some(n_pairs) = xsim_pairs {
                stats.n_xsim_hetero_pairs = n_pairs;
            }
            if let Some(n) = n_target_ratings {
                stats.n_target_ratings = n;
            }
            stats.stage_durations = self.flow.reports();
        }
        *self
            .ingest_stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(accumulators);
        Ok(report)
    }

    /// Per-partition task costs of the most recent [`XMapModel::apply_delta`] (the
    /// `delta` stage's ledger entry) — the incremental-fit analogue of
    /// [`XMapModel::fit_task_costs`], for the cluster simulator. Data-derived, so
    /// identical at any worker count; grows with the delta's affected neighbourhood,
    /// not the trace.
    pub fn delta_task_costs(&self) -> Option<Vec<f64>> {
        self.flow.stage_costs(DELTA_STAGE_NAME)
    }

    /// Per-read data-derived costs of the most recent
    /// [`XMapModel::serve_concurrent`] (the `concurrent-read` ledger), for replaying
    /// the serving side of an interleaved schedule on the cluster simulator.
    pub fn concurrent_read_task_costs(&self) -> Option<Vec<f64>> {
        self.flow.stage_costs(CONCURRENT_READ_STAGE)
    }

    /// Per-delta data-derived costs of the most recent
    /// [`XMapModel::serve_concurrent`]'s ingest worker (the `concurrent-ingest`
    /// ledger). `None` when the last run carried no deltas.
    pub fn concurrent_ingest_task_costs(&self) -> Option<Vec<f64>> {
        self.flow.stage_costs(CONCURRENT_INGEST_STAGE)
    }

    /// Serves `profiles` from a pool of `readers` snapshot readers **while** applying
    /// `deltas` one after another from an ingest worker — the serve-while-updating
    /// driver ([`ConcurrentStage`]).
    ///
    /// Every read takes a wait-free epoch snapshot, answers entirely from it, and
    /// reports which epoch it observed ([`ServedRead::epoch`]); the report records
    /// per-read and per-ingest latencies plus the epoch sequence. The contract (gated
    /// by `tests/concurrent_serve.rs` and the `concurrent_serve` bench): each read is
    /// **bit-identical** to serving the same profile against the serialized schedule at
    /// its observed epoch boundary — interleaving changes *which* epoch a read sees,
    /// never the bits an epoch answers with.
    ///
    /// Read/ingest cost bags land in the `concurrent-read` / `concurrent-ingest`
    /// ledgers of the model's dataflow. The first ingest error aborts with that error
    /// after the stage drains (reads are not lost; remaining deltas are still
    /// attempted).
    pub fn serve_concurrent(
        &self,
        profiles: &[Profile],
        n: usize,
        readers: usize,
        deltas: &[RatingDelta],
    ) -> Result<(Vec<ServedRead>, ConcurrentReport)> {
        let error: Mutex<Option<XMapError>> = Mutex::new(None);
        let stage = ConcurrentStage::new(readers);
        let (reads, report) = stage.run(
            &self.flow,
            profiles,
            |_ix, profile: &Profile| {
                let (epoch, snap) = self.snapshot();
                let recommendations = snap.recommend_for_profile(profile, n);
                ConcurrentRead {
                    epoch,
                    output: ServedRead {
                        epoch,
                        recommendations,
                    },
                    cost: 1.0 + profile.len() as f64,
                }
            },
            deltas.len(),
            |ix| match self.apply_delta(&deltas[ix]) {
                Ok(delta_report) => ConcurrentIngest {
                    epoch: delta_report.epoch,
                    cost: 1.0 + deltas[ix].len() as f64,
                },
                Err(e) => {
                    let mut slot = error
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    ConcurrentIngest {
                        epoch: self.epoch(),
                        cost: 1.0,
                    }
                }
            },
        );
        if let Some(e) = error
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            return Err(e);
        }
        Ok((reads, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XMapConfig;
    use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};

    fn dataset() -> CrossDomainDataset {
        CrossDomainDataset::generate(CrossDomainConfig::small())
    }

    fn config(mode: XMapMode) -> XMapConfig {
        XMapConfig {
            mode,
            k: 8,
            ..Default::default()
        }
    }

    /// The delta model must hold the same released artifacts as a full refit on the
    /// updated matrix: matrix bits, graph bits, X-Sim rows, replacement table and
    /// probe predictions. (The 1/2/8-worker, all-modes version of this lives in
    /// `tests/incremental_equivalence.rs`.)
    fn assert_matches_refit(model: &XMapModel, refit: &XMapModel, ds: &CrossDomainDataset) {
        let (_, m) = model.snapshot();
        let (_, r) = refit.snapshot();
        assert_eq!(m.full, r.full, "updated matrices diverged");
        assert_eq!(m.graph, r.graph, "graph arenas diverged");
        assert_eq!(m.xsim, r.xsim, "X-Sim tables diverged");
        assert_eq!(
            m.replacements, r.replacements,
            "replacement tables diverged"
        );
        assert_eq!(m.item_pools, r.item_pools, "kNN pools diverged");
        for &u in ds.overlap_users.iter().take(5) {
            for &i in ds.target_items().iter().take(8) {
                assert_eq!(
                    model.predict(u, i).to_bits(),
                    refit.predict(u, i).to_bits(),
                    "prediction diverged for {u}/{i}"
                );
            }
        }
    }

    #[test]
    fn empty_delta_equals_a_refit_on_the_same_matrix() {
        let ds = dataset();
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let (_, base) = model.snapshot();
        let report = model.apply_delta(&RatingDelta::new()).unwrap();
        assert_eq!(report.n_delta_ratings, 0);
        assert_eq!(report.n_rescored_pairs, 0);
        assert_eq!(report.n_xsim_rows, 0);
        assert_eq!(report.n_pool_refits, 0);
        assert_eq!(report.epoch, 2, "the delta must publish the next epoch");
        let refit = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_matches_refit(&model, &refit, &ds);
        assert!(model.delta_task_costs().is_some());
        // An untouched delta shares every piece with the base epoch — pointers, not
        // copies.
        let (_, next) = model.snapshot();
        assert!(
            Arc::ptr_eq(&base.graph, &next.graph),
            "graph must be shared"
        );
        assert!(Arc::ptr_eq(&base.xsim, &next.xsim), "xsim must be shared");
        assert!(
            Arc::ptr_eq(&base.replacements, &next.replacements),
            "replacements must be shared"
        );
        assert!(
            Arc::ptr_eq(&base.recommender, &next.recommender),
            "recommender must be shared"
        );
    }

    #[test]
    fn delta_with_a_brand_new_user_and_item_equals_a_refit() {
        let ds = dataset();
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let new_user = ds.matrix.n_users() as u32;
        let new_item = ds.matrix.n_items() as u32;
        let existing_source = ds.source_items()[0];
        let existing_target = ds.target_items()[0];
        let mut delta = RatingDelta::new();
        delta
            .declare_item(ItemId(new_item), DomainId::TARGET)
            .push_timed(new_user, existing_source.0, 5.0, 50)
            .push_timed(new_user, existing_target.0, 4.0, 51)
            .push_timed(new_user, new_item, 3.0, 52)
            .push_timed(ds.overlap_users[0].0, new_item, 5.0, 53);
        let report = model.apply_delta(&delta).unwrap();
        assert_eq!(report.n_delta_ratings, 4);
        assert_eq!(report.n_affected_users, 2);
        assert!(report.n_rescored_pairs > 0);
        assert_eq!(report.epoch, model.epoch());
        let updated = ds
            .matrix
            .apply_delta(delta.ratings(), delta.item_domains())
            .unwrap();
        let refit = XMapModel::fit(
            &updated,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_matches_refit(&model, &refit, &ds);
        // the new user must be servable straight away
        let pred = model.predict(UserId(new_user), existing_target);
        assert_eq!(
            pred.to_bits(),
            refit.predict(UserId(new_user), existing_target).to_bits()
        );
    }

    #[test]
    fn repeated_deltas_to_the_same_cell_equal_a_refit() {
        let ds = dataset();
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let user = ds.overlap_users[0];
        let item = ds.target_items()[0];
        // one batch carrying several updates of the same cell...
        let mut delta = RatingDelta::new();
        delta
            .push_timed(user.0, item.0, 1.0, 90)
            .push_timed(user.0, item.0, 2.0, 91)
            .push_timed(user.0, item.0, 5.0, 91);
        model.apply_delta(&delta).unwrap();
        // ... followed by a second incremental batch touching it again
        let mut second = RatingDelta::new();
        second.push_timed(user.0, item.0, 3.0, 92);
        model.apply_delta(&second).unwrap();
        assert_eq!(model.matrix().rating(user, item), Some(3.0));
        let updated = ds
            .matrix
            .apply_delta(delta.ratings(), &[])
            .unwrap()
            .apply_delta(second.ratings(), &[])
            .unwrap();
        let refit = XMapModel::fit(
            &updated,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_matches_refit(&model, &refit, &ds);
    }

    #[test]
    fn sequential_deltas_bump_the_epoch_monotonically() {
        let ds = dataset();
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_eq!(model.epoch(), 1);
        let user = ds.overlap_users[0];
        let item = ds.target_items()[0];
        let (_, epoch_one) = model.snapshot();
        let before = epoch_one.recommend(user, 3);
        for step in 0..3u32 {
            let mut delta = RatingDelta::new();
            delta.push_timed(user.0, item.0, 1.0 + step as f64, 100 + step);
            let report = model.apply_delta(&delta).unwrap();
            assert_eq!(report.epoch, 2 + step as u64);
            assert_eq!(model.epoch(), report.epoch);
        }
        // The pre-delta snapshot still answers from its own epoch, bit for bit —
        // publication never mutates a live snapshot.
        assert_eq!(epoch_one.recommend(user, 3), before);
    }

    #[test]
    fn source_only_delta_shares_the_recommender_but_rebuilds_the_graph() {
        let ds = dataset();
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let (_, base) = model.snapshot();
        let user = ds.overlap_users[0];
        let source_item = ds.source_items()[0];
        let mut delta = RatingDelta::new();
        delta.push_timed(user.0, source_item.0, 2.0, 80);
        let report = model.apply_delta(&delta).unwrap();
        assert!(report.n_rescored_pairs > 0, "source pairs must re-score");
        assert_eq!(report.n_pool_refits, 0, "no target pool may be touched");
        let (_, next) = model.snapshot();
        assert!(
            Arc::ptr_eq(&base.recommender, &next.recommender),
            "a source-only delta leaves the target recommender shared"
        );
        assert!(
            !Arc::ptr_eq(&base.graph, &next.graph),
            "the graph must be rebuilt"
        );
        // ... and sharing is still bit-identical to a refit.
        let updated = ds.matrix.apply_delta(delta.ratings(), &[]).unwrap();
        let refit = XMapModel::fit(
            &updated,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_matches_refit(&model, &refit, &ds);
    }

    #[test]
    fn ingest_accumulators_match_the_serial_mrv_reference() {
        let ds = dataset();
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert!(model.ingest_accumulators().is_none(), "no ingest ran yet");
        let hot_user = ds.overlap_users[0];
        let other_user = ds.overlap_users[1];
        let hot_item = ds.target_items()[0];
        let mut delta = RatingDelta::new();
        // A hot user and a hot item absorbing several updates each, to exercise the
        // multi-shard path.
        for step in 0..12u32 {
            delta.push_timed(
                hot_user.0,
                ds.target_items()[(step % 3) as usize].0,
                1.0 + (step % 5) as f64,
                200 + step,
            );
            delta.push_timed(
                other_user.0,
                hot_item.0,
                5.0 - (step % 4) as f64,
                200 + step,
            );
        }
        model.apply_delta(&delta).unwrap();
        let acc = model
            .ingest_accumulators()
            .expect("delta publishes accumulators");
        assert_eq!(acc.n_shards, INGEST_MRV_SHARDS);
        let user_reference = mrv::serial_keyed_reference(
            delta.ratings().iter().map(|r| (r.user, r.value)),
            INGEST_MRV_SHARDS,
        );
        assert_eq!(acc.user_stats.len(), user_reference.len());
        for ((user, stat), (ref_user, ref_stat)) in acc.user_stats.iter().zip(&user_reference) {
            assert_eq!(user, ref_user);
            assert_eq!(stat.count, ref_stat.count);
            assert_eq!(
                stat.sum.to_bits(),
                ref_stat.sum.to_bits(),
                "user {user} accumulator diverged from the serial MRV reference"
            );
        }
        // The accumulator keys are the affected-user set.
        let users: Vec<UserId> = acc.user_stats.iter().map(|&(u, _)| u).collect();
        assert_eq!(users, delta.affected_users());
        // Item touch counts partition the event count.
        let touches: u64 = acc.item_touches.iter().map(|&(_, c)| c).sum();
        assert_eq!(touches, delta.len() as u64);
    }

    #[test]
    fn domain_redeclaration_of_an_existing_item_is_rejected_without_side_effects() {
        let ds = dataset();
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let n_before = model.matrix().n_ratings();
        let epoch_before = model.epoch();
        let source_item = ds.source_items()[0];
        let mut delta = RatingDelta::new();
        delta
            .declare_item(source_item, DomainId::TARGET)
            .push_timed(0, source_item.0, 5.0, 99);
        let err = model.apply_delta(&delta).unwrap_err();
        assert!(matches!(err, XMapError::Data(_)));
        assert!(err.to_string().contains("full refit"));
        assert_eq!(
            model.matrix().n_ratings(),
            n_before,
            "model must be untouched"
        );
        assert_eq!(model.epoch(), epoch_before, "no epoch may publish on error");
        // redeclaring with the *current* domain is a no-op and succeeds
        let mut ok = RatingDelta::new();
        ok.declare_item(source_item, DomainId::SOURCE);
        assert!(model.apply_delta(&ok).is_ok());
        assert_eq!(model.epoch(), epoch_before + 1);
    }

    #[test]
    fn private_delta_recharges_a_fresh_budget_like_a_refit() {
        let ds = dataset();
        let cfg = config(XMapMode::XMapItemBased);
        let model = XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, cfg).unwrap();
        let mut delta = RatingDelta::new();
        delta.push_timed(ds.overlap_users[0].0, ds.target_items()[0].0, 5.0, 77);
        model.apply_delta(&delta).unwrap();
        let budget = model
            .privacy_budget()
            .expect("private modes carry a budget");
        let mechanisms: Vec<&str> = budget
            .ledger()
            .iter()
            .map(|e| e.mechanism.as_str())
            .collect();
        assert_eq!(mechanisms, vec!["PRS", "PNSA", "PNCF"]);
        assert!((budget.spent() - cfg.privacy.total()).abs() < 1e-12);
    }

    #[test]
    fn private_delta_sharing_the_recommender_still_debits_the_full_ledger() {
        let ds = dataset();
        let cfg = config(XMapMode::XMapItemBased);
        let model = XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, cfg).unwrap();
        let (_, base) = model.snapshot();
        // Source-only delta: the recommender is shared, but the re-release must charge
        // the fresh accountant exactly like a refit.
        let mut delta = RatingDelta::new();
        delta.push_timed(ds.overlap_users[0].0, ds.source_items()[0].0, 4.0, 60);
        model.apply_delta(&delta).unwrap();
        let (_, next) = model.snapshot();
        assert!(Arc::ptr_eq(&base.recommender, &next.recommender));
        assert!(
            !Arc::ptr_eq(base.budget.as_ref().unwrap(), next.budget.as_ref().unwrap()),
            "the accountant itself is fresh per epoch"
        );
        let budget = model.privacy_budget().unwrap();
        let mechanisms: Vec<&str> = budget
            .ledger()
            .iter()
            .map(|e| e.mechanism.as_str())
            .collect();
        assert_eq!(mechanisms, vec!["PRS", "PNSA", "PNCF"]);
        assert!((budget.spent() - cfg.privacy.total()).abs() < 1e-12);
    }

    #[test]
    fn rating_delta_accessors() {
        let mut d = RatingDelta::new();
        assert!(d.is_empty());
        d.push_timed(3, 1, 4.0, 2).push_timed(1, 2, 5.0, 3);
        d.push_timed(3, 4, 2.0, 4);
        d.declare_item(ItemId(9), DomainId::TARGET);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.affected_users(), vec![UserId(1), UserId(3)]);
        assert_eq!(d.ratings().len(), 3);
        assert_eq!(d.item_domains(), &[(ItemId(9), DomainId::TARGET)]);
    }
}
