//! The model sharded across simulated nodes: routing, hot-shard replication and
//! journal-backed failover.
//!
//! The paper runs X-Map on a Spark cluster whose executors each hold a *partition*
//! of the fitted state. This module reproduces that deployment shape on one
//! machine, with the same bit-identity discipline as the rest of the workspace:
//!
//! * [`ShardMap`] — a deterministic item-range partition of the catalogue. Every
//!   fitted per-item artifact (similarity-graph rows, X-Sim rows, replacement
//!   pairs, item-kNN pools) of a [`ModelEpoch`] is cut into one [`ShardSlice`] per
//!   shard. Shard `s` is owned by node `s mod n`, and *hot* shards — shards holding
//!   an item from the popularity head — carry extra replicas on the following
//!   nodes (clamped to the node count).
//! * [`ShardedModel`] — the router. It owns the coordinator [`XMapModel`] (the
//!   authoritative fit/ingest plane: adjusted-cosine similarities, X-Sim walks and
//!   replacement draws all read *cross-shard* state, so the global recompute stays
//!   in one place) and a set of simulated nodes, each holding epoch-published
//!   slices of the shards it hosts plus a per-shard serving wrapper built from the
//!   slice's own rows. Reads route to a live replica of the owning shard;
//!   top-N requests fan out across shards and merge partial top-N lists with the
//!   workspace [`TopK`] tie-break (descending `total_cmp`, first-offered wins) —
//!   provably bit-identical to the single-node stream because per-shard candidate
//!   segments are contiguous ascending item-id runs, so any candidate a local
//!   top-N drops is dominated by ≥ n same-segment survivors that dominate it
//!   globally too.
//! * Durability — [`ShardedModel::persist`] writes one snapshot + write-ahead
//!   journal pair *per hosted shard per node* (`node<i>/shard<s>.snap` /
//!   `.journal`, reusing the `xmap-store` codec verbatim). An ingest splits the
//!   [`RatingDelta`] into per-shard sub-deltas, applies the full delta on the
//!   coordinator, then journals each hosted shard's row changes *before*
//!   publishing the new slice epoch. Killing a node drops its in-memory state
//!   (files survive); recovery loads the snapshot, replays the journal, and — if
//!   the node was dead across ingests its journal never saw — re-replicates the
//!   shard from the coordinator and rewrites its files.
//!
//! Routing, per-shard serving and per-shard ingest work are recorded as
//! [`RoutedTask`] ledgers (`route` / `shard-serve` / `shard-ingest`) with
//! data-derived costs, so `xmap_engine::ShardedCluster` can replay a serving
//! trace on a simulated cluster exactly like the fit ledgers.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use crate::delta::{DeltaReport, RatingDelta};
use crate::generator::{AlterEgo, ReplacementTable};
use crate::pipeline::{ModelEpoch, XMapModel};
use crate::recommend::{
    ItemBasedRecommender, PrivateItemBasedRecommender, PrivateUserBasedRecommender,
    ProfileRecommender, ProfileScratch, UserBasedRecommender,
};
use crate::xsim::XSimEntry;
use crate::{Result, XMapConfig, XMapError, XMapMode};
use xmap_cf::knn::{profile_average, ItemNeighbor, Profile};
use xmap_cf::topk::{top_k, TopK};
use xmap_cf::{ItemId, RatingMatrix, SimilarityStats, UserId};
use xmap_engine::{EpochHandle, RoutedTask};
use xmap_privacy::PrivacyBudget;
use xmap_store::{Journal, Snapshot};

// ---------------------------------------------------------------------------
// Shard map
// ---------------------------------------------------------------------------

/// Identifier of one contiguous item-range shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

/// A deterministic partition of the item catalogue into contiguous id ranges,
/// with a per-shard replica count.
///
/// The map is a pure function of `(n_items, n_shards)` plus any explicit
/// [`ShardMap::replicate_hot`] calls, so every node derives identical placement
/// without coordination — the moral equivalent of Spark's hash partitioner, made
/// range-based so per-shard candidate streams stay contiguous in item id (the
/// property the partial top-N merge proof rests on).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardMap {
    n_items: u32,
    /// `n_shards + 1` ascending bounds; shard `s` covers `bounds[s]..bounds[s+1]`.
    bounds: Vec<u32>,
    /// Replica count per shard, each ≥ 1 (1 = owner only).
    replicas: Vec<u32>,
}

impl ShardMap {
    /// An even split of `n_items` into `n_shards` contiguous ranges (the first
    /// `n_items % n_shards` shards get one extra item). Shards beyond the
    /// catalogue are empty — legal, they simply contribute nothing to any query.
    pub fn uniform(n_items: u32, n_shards: usize) -> Result<ShardMap> {
        if n_shards == 0 {
            return Err(XMapError::InvalidConfig(
                "shard map needs at least one shard".into(),
            ));
        }
        let base = n_items / n_shards as u32;
        let rem = (n_items % n_shards as u32) as usize;
        let mut bounds = Vec::with_capacity(n_shards + 1);
        let mut at = 0u32;
        bounds.push(at);
        for s in 0..n_shards {
            at += base + u32::from(s < rem);
            bounds.push(at);
        }
        Ok(ShardMap {
            n_items,
            bounds,
            replicas: vec![1; n_shards],
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.replicas.len()
    }

    /// Number of catalogue items the map was built over.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// The shard owning an item. Ids at or beyond the catalogue clamp into the
    /// last shard, so items that arrive in later deltas still have a home.
    pub fn shard_of(&self, item: ItemId) -> u32 {
        let idx = self.bounds[1..].partition_point(|&end| end <= item.0);
        (idx as u32).min(self.n_shards() as u32 - 1)
    }

    /// The `[start, end)` item-id range of a shard as laid out at map build time.
    pub fn range(&self, shard: u32) -> (u32, u32) {
        (self.bounds[shard as usize], self.bounds[shard as usize + 1])
    }

    /// Like [`ShardMap::range`], but with the last shard stretched to a grown
    /// catalogue: items appended by deltas after the map was built clamp into the
    /// last shard (see [`ShardMap::shard_of`]), so its effective range must cover
    /// them when slices are cut.
    pub(crate) fn effective_range(&self, shard: u32, catalogue_items: u32) -> (u32, u32) {
        let (start, end) = self.range(shard);
        if shard as usize + 1 == self.n_shards() {
            (start, end.max(catalogue_items))
        } else {
            (start, end)
        }
    }

    /// The replica count of a shard (1 = owner only), before node-count clamping.
    pub fn replication(&self, shard: u32) -> u32 {
        self.replicas[shard as usize]
    }

    /// The node owning a shard: round-robin `shard mod n_nodes`.
    pub fn owner(&self, shard: u32, n_nodes: usize) -> usize {
        shard as usize % n_nodes
    }

    /// The nodes hosting a shard: the owner plus the next `replication - 1` nodes
    /// round-robin. The count clamps to `n_nodes` — asking for more replicas than
    /// nodes yields every node exactly once, never a duplicate host.
    pub fn hosts(&self, shard: u32, n_nodes: usize) -> Vec<usize> {
        let owner = self.owner(shard, n_nodes);
        let count = (self.replication(shard) as usize).min(n_nodes).max(1);
        (0..count).map(|i| (owner + i) % n_nodes).collect()
    }

    /// Raises the replica count of every shard holding one of the `head` most
    /// popular items to `factor`. `popularity[i]` is the observed rating count of
    /// item `i`; the head is taken by descending count with ascending-id
    /// tie-break, so the hot set is deterministic.
    pub fn replicate_hot(&mut self, popularity: &[usize], head: usize, factor: u32) {
        let mut order: Vec<u32> = (0..popularity.len() as u32).collect();
        order.sort_by(|&a, &b| {
            popularity[b as usize]
                .cmp(&popularity[a as usize])
                .then(a.cmp(&b))
        });
        for &item in order.iter().take(head) {
            let s = self.shard_of(ItemId(item)) as usize;
            self.replicas[s] = self.replicas[s].max(factor.max(1));
        }
    }

    /// Splits a delta into one sub-delta per shard by the rated (or declared)
    /// item's shard, preserving push order within each shard. The coordinator
    /// still applies the *full* delta — the split exists so per-shard ingest work
    /// can be journaled, costed and replayed per node.
    pub fn split_delta(&self, delta: &RatingDelta) -> Vec<RatingDelta> {
        let mut subs: Vec<RatingDelta> = (0..self.n_shards()).map(|_| RatingDelta::new()).collect();
        for &r in delta.ratings() {
            subs[self.shard_of(r.item) as usize].push(r);
        }
        for &(item, domain) in delta.item_domains() {
            subs[self.shard_of(item) as usize].declare_item(item, domain);
        }
        subs
    }
}

// ---------------------------------------------------------------------------
// Shard slices
// ---------------------------------------------------------------------------

/// Every fitted per-item artifact of one shard's item range, cut from a
/// [`ModelEpoch`]: similarity-graph rows, X-Sim rows, replacement pairs and (for
/// the item-based modes) the raw item-kNN pool rows. Rows are sorted ascending by
/// item id and empty rows are omitted, so two cuts of the same epoch compare
/// bit-for-bit with `==`.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSlice {
    shard: u32,
    start: u32,
    end: u32,
    graph_rows: Vec<(ItemId, Vec<(ItemId, SimilarityStats)>)>,
    xsim_rows: Vec<(ItemId, Vec<XSimEntry>)>,
    replacement_pairs: Vec<(ItemId, ItemId)>,
    pool_rows: Option<Vec<(ItemId, Vec<ItemNeighbor>)>>,
}

impl ShardSlice {
    /// The shard this slice belongs to.
    pub fn shard(&self) -> ShardId {
        ShardId(self.shard)
    }

    /// The `[start, end)` item-id range the slice covers (the last shard's range
    /// stretches over catalogue growth, see [`ShardMap::shard_of`]).
    pub fn item_range(&self) -> (u32, u32) {
        (self.start, self.end)
    }

    /// The shard's similarity-graph rows: `(item, [(neighbour, stats)])`,
    /// ascending by item id, ascending neighbour id within a row.
    pub fn graph_rows(&self) -> &[(ItemId, Vec<(ItemId, SimilarityStats)>)] {
        &self.graph_rows
    }

    /// The shard's X-Sim rows: `(item, candidates)` ascending by item id.
    pub fn xsim_rows(&self) -> &[(ItemId, Vec<XSimEntry>)] {
        &self.xsim_rows
    }

    /// The shard's `(source item, replacement)` pairs, ascending by source id.
    pub fn replacement_pairs(&self) -> &[(ItemId, ItemId)] {
        &self.replacement_pairs
    }

    /// The shard's raw item-kNN pool rows (`None` for the user-based modes,
    /// which precompute nothing at fit time).
    pub fn pool_rows(&self) -> Option<&[(ItemId, Vec<ItemNeighbor>)]> {
        self.pool_rows.as_deref()
    }

    /// Cuts the slice of `shard` out of a published epoch.
    pub(crate) fn cut(epoch: &ModelEpoch, map: &ShardMap, shard: u32) -> ShardSlice {
        let (start, end) = map.effective_range(shard, epoch.matrix().n_items() as u32);
        let graph = epoch.graph();
        let mut graph_rows = Vec::new();
        let mut xsim_rows = Vec::new();
        for id in start..end {
            let item = ItemId(id);
            if (id as usize) < graph.n_items() {
                let view = graph.neighbors(item);
                if !view.is_empty() {
                    graph_rows.push((item, view.iter().map(|e| (e.to, *e.stats)).collect()));
                }
            }
            let xrow = epoch.xsim().candidates(item);
            if !xrow.is_empty() {
                xsim_rows.push((item, xrow.to_vec()));
            }
        }
        let mut replacement_pairs: Vec<(ItemId, ItemId)> = epoch
            .replacements()
            .iter()
            .filter(|&(source, _)| map.shard_of(source) == shard)
            .collect();
        replacement_pairs.sort_unstable();
        let pool_rows = epoch.item_pools.as_ref().map(|pools| {
            (start..end)
                .filter_map(|id| {
                    pools
                        .get(id as usize)
                        .filter(|row| !row.is_empty())
                        .map(|row| (ItemId(id), row.clone()))
                })
                .collect()
        });
        ShardSlice {
            shard,
            start,
            end,
            graph_rows,
            xsim_rows,
            replacement_pairs,
            pool_rows,
        }
    }

    /// The replacement of a source item owned by this shard, if any.
    pub(crate) fn replacement_of(&self, item: ItemId) -> Option<ItemId> {
        self.replacement_pairs
            .binary_search_by_key(&item, |&(source, _)| source)
            .ok()
            .map(|ix| self.replacement_pairs[ix].1)
    }

    /// Re-assembles catalogue-length kNN pools from the slice's rows, padding
    /// every out-of-shard (or empty) slot with an empty pool. The padded shape is
    /// what the recommender constructors index by raw item id.
    pub(crate) fn padded_pools(&self, n_items: usize) -> Vec<Vec<ItemNeighbor>> {
        let mut pools = vec![Vec::new(); n_items];
        if let Some(rows) = &self.pool_rows {
            for (item, row) in rows {
                if let Some(slot) = pools.get_mut(item.index()) {
                    *slot = row.clone();
                }
            }
        }
        pools
    }

    /// The row changes taking `self` to `new`, plus the shard's sub-delta —
    /// the write-ahead journal record of one ingest.
    pub(crate) fn diff(&self, new: &ShardSlice, sub_delta: RatingDelta) -> SliceDelta {
        SliceDelta {
            sub_delta,
            start: new.start,
            end: new.end,
            graph_rows: diff_rows(&self.graph_rows, &new.graph_rows),
            xsim_rows: diff_rows(&self.xsim_rows, &new.xsim_rows),
            pool_rows: match (&self.pool_rows, &new.pool_rows) {
                (Some(old), Some(new_rows)) => diff_rows(old, new_rows),
                (None, Some(new_rows)) => new_rows.clone(),
                _ => Vec::new(),
            },
            replacement_pairs: (self.replacement_pairs != new.replacement_pairs)
                .then(|| new.replacement_pairs.clone()),
        }
    }

    /// Applies a journaled [`SliceDelta`], producing the post-ingest slice.
    /// Inverse of [`ShardSlice::diff`]: `old.apply(&old.diff(&new, _)) == new`.
    pub(crate) fn apply(&self, delta: &SliceDelta) -> ShardSlice {
        ShardSlice {
            shard: self.shard,
            start: delta.start,
            end: delta.end,
            graph_rows: apply_rows(&self.graph_rows, &delta.graph_rows),
            xsim_rows: apply_rows(&self.xsim_rows, &delta.xsim_rows),
            replacement_pairs: delta
                .replacement_pairs
                .clone()
                .unwrap_or_else(|| self.replacement_pairs.clone()),
            pool_rows: match &self.pool_rows {
                Some(rows) => Some(apply_rows(rows, &delta.pool_rows)),
                None if delta.pool_rows.is_empty() => None,
                None => Some(delta.pool_rows.clone()),
            },
        }
    }
}

/// Row upserts between two sorted row lists: `(id, new_row)` for added or changed
/// rows, `(id, [])` for removed ones. Empty rows are never *stored* (cuts skip
/// them), so the empty row is unambiguous as a removal marker.
fn diff_rows<T: Clone + PartialEq>(
    old: &[(ItemId, Vec<T>)],
    new: &[(ItemId, Vec<T>)],
) -> Vec<(ItemId, Vec<T>)> {
    let old_map: BTreeMap<ItemId, &Vec<T>> = old.iter().map(|(i, r)| (*i, r)).collect();
    let mut out = Vec::new();
    for (id, row) in new {
        if old_map.get(id).is_none_or(|prev| *prev != row) {
            out.push((*id, row.clone()));
        }
    }
    let new_ids: std::collections::BTreeSet<ItemId> = new.iter().map(|(i, _)| *i).collect();
    for (id, _) in old {
        if !new_ids.contains(id) {
            out.push((*id, Vec::new()));
        }
    }
    out.sort_by_key(|&(id, _)| id);
    out
}

/// Applies [`diff_rows`] output: upserts non-empty rows, removes rows the diff
/// emptied, keeps everything else — result stays sorted by item id.
fn apply_rows<T: Clone>(
    old: &[(ItemId, Vec<T>)],
    upserts: &[(ItemId, Vec<T>)],
) -> Vec<(ItemId, Vec<T>)> {
    let mut merged: BTreeMap<ItemId, Vec<T>> = old.iter().map(|(i, r)| (*i, r.clone())).collect();
    for (id, row) in upserts {
        if row.is_empty() {
            merged.remove(id);
        } else {
            merged.insert(*id, row.clone());
        }
    }
    merged.into_iter().collect()
}

/// Snapshot payload of one hosted shard: the publication epoch and the slice.
pub(crate) struct SliceState {
    pub(crate) epoch: u64,
    pub(crate) slice: ShardSlice,
}

/// Journal record payload of one hosted shard's ingest: the shard's sub-delta
/// (observability: which rating events landed here) plus the materialized row
/// changes — recovery replays the rows, not the ratings, because slice rows are
/// cross-shard functions of the full matrix that only the coordinator can
/// recompute.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SliceDelta {
    pub(crate) sub_delta: RatingDelta,
    start: u32,
    end: u32,
    graph_rows: Vec<(ItemId, Vec<(ItemId, SimilarityStats)>)>,
    xsim_rows: Vec<(ItemId, Vec<XSimEntry>)>,
    pool_rows: Vec<(ItemId, Vec<ItemNeighbor>)>,
    replacement_pairs: Option<Vec<(ItemId, ItemId)>>,
}

impl xmap_store::Codec for ShardSlice {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_u32(self.shard);
        e.put_u32(self.start);
        e.put_u32(self.end);
        self.graph_rows.enc(e);
        self.xsim_rows.enc(e);
        self.replacement_pairs.enc(e);
        self.pool_rows.enc(e);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(ShardSlice {
            shard: d.take_u32()?,
            start: d.take_u32()?,
            end: d.take_u32()?,
            graph_rows: xmap_store::Codec::dec(d)?,
            xsim_rows: xmap_store::Codec::dec(d)?,
            replacement_pairs: xmap_store::Codec::dec(d)?,
            pool_rows: xmap_store::Codec::dec(d)?,
        })
    }
}

impl xmap_store::Codec for SliceState {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_u64(self.epoch);
        self.slice.enc(e);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        let epoch = d.take_u64()?;
        if epoch == 0 {
            return Err(d.corrupt("slice snapshot epoch must be ≥ 1".to_string()));
        }
        Ok(SliceState {
            epoch,
            slice: xmap_store::Codec::dec(d)?,
        })
    }
}

impl xmap_store::Codec for SliceDelta {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        self.sub_delta.enc(e);
        e.put_u32(self.start);
        e.put_u32(self.end);
        self.graph_rows.enc(e);
        self.xsim_rows.enc(e);
        self.pool_rows.enc(e);
        self.replacement_pairs.enc(e);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(SliceDelta {
            sub_delta: xmap_store::Codec::dec(d)?,
            start: d.take_u32()?,
            end: d.take_u32()?,
            graph_rows: xmap_store::Codec::dec(d)?,
            xsim_rows: xmap_store::Codec::dec(d)?,
            pool_rows: xmap_store::Codec::dec(d)?,
            replacement_pairs: xmap_store::Codec::dec(d)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Per-shard serving
// ---------------------------------------------------------------------------

/// The serving wrapper a node builds for one hosted shard: the mode's concrete
/// recommender constructed from the slice's *own* pool rows (padded with empty
/// pools outside the shard) over the epoch's target-domain matrix. The matrix is
/// the replicated data plane every node carries (user-based prediction reads all
/// raters' averages); the pools are the genuinely partitioned fitted state.
#[allow(clippy::enum_variant_names)] // variants mirror the XMapMode names
enum SliceServe {
    ItemBased(ItemBasedRecommender),
    PrivateItemBased(PrivateItemBasedRecommender),
    UserBased(UserBasedRecommender),
    PrivateUserBased(PrivateUserBasedRecommender),
}

/// The profile-level phase-1 state of a routed top-N request, computed once on
/// the profile's home shard and shipped to every scoring shard. Item-based modes
/// need none; the user-based modes carry the (possibly privately selected)
/// neighbourhood and the profile average, exactly the values the single-node
/// recommender hoists out of its per-candidate loop.
#[allow(clippy::enum_variant_names)] // variants mirror the XMapMode names
enum ServePlan {
    ItemBased,
    UserBased {
        neighbors: Vec<(UserId, f64)>,
        avg: f64,
    },
    PrivateUserBased {
        pool: Vec<(UserId, f64)>,
        neighbors: Vec<(UserId, f64)>,
        avg: f64,
    },
}

impl SliceServe {
    fn build(config: &XMapConfig, target: RatingMatrix, slice: &ShardSlice) -> Result<SliceServe> {
        let n_items = target.n_items();
        Ok(match config.mode {
            XMapMode::NxMapItemBased => SliceServe::ItemBased(ItemBasedRecommender::from_pools(
                target,
                config.k,
                config.temporal_alpha,
                slice.padded_pools(n_items),
            )?),
            XMapMode::XMapItemBased => {
                SliceServe::PrivateItemBased(PrivateItemBasedRecommender::from_pools(
                    target,
                    config.k,
                    config.privacy.epsilon_prime,
                    config.privacy.rho,
                    config.temporal_alpha,
                    config.seed,
                    slice.padded_pools(n_items),
                )?)
            }
            XMapMode::NxMapUserBased => {
                SliceServe::UserBased(UserBasedRecommender::fit(target, config.k)?)
            }
            XMapMode::XMapUserBased => {
                // The fit is deterministic in (matrix, k, ε′, ρ, seed); the scratch
                // budget absorbs the per-replica re-fit debit — the released ledger
                // is the coordinator's, which recorded the expenditure once.
                let mut scratch = PrivacyBudget::new(config.privacy.total());
                SliceServe::PrivateUserBased(PrivateUserBasedRecommender::fit(
                    target,
                    config.k,
                    config.privacy.epsilon_prime,
                    config.privacy.rho,
                    config.seed,
                    &mut scratch,
                )?)
            }
        })
    }

    /// Single-item prediction — same trait entry point as single-node serving,
    /// answered from this shard's replica.
    fn predict(&self, profile: &Profile, item: ItemId) -> f64 {
        match self {
            SliceServe::ItemBased(r) => r.predict_for_profile(profile, item),
            SliceServe::PrivateItemBased(r) => r.predict_for_profile(profile, item),
            SliceServe::UserBased(r) => r.predict_for_profile(profile, item),
            SliceServe::PrivateUserBased(r) => r.predict_for_profile(profile, item),
        }
    }

    /// Phase 1 of a top-N request, run on the profile's home shard. The values
    /// (and for the private mode, the RNG salts) match the single-node
    /// `recommend_for_profile` hoisting exactly.
    fn plan(&self, profile: &Profile) -> ServePlan {
        match self {
            SliceServe::ItemBased(_) | SliceServe::PrivateItemBased(_) => ServePlan::ItemBased,
            SliceServe::UserBased(r) => {
                let neighbors = r.knn().neighbors_of_profile(profile);
                let avg = profile_average(profile).unwrap_or_else(|| r.target().global_average());
                ServePlan::UserBased { neighbors, avg }
            }
            SliceServe::PrivateUserBased(r) => {
                let pool = r.neighbor_pool(profile);
                let neighbors = r.private_neighbors_from_pool(&pool, 0xfeed_beefu64);
                let avg = r.profile_avg(profile);
                ServePlan::PrivateUserBased {
                    pool,
                    neighbors,
                    avg,
                }
            }
        }
    }

    /// Item-based candidate contribution: the pool neighbours of the given
    /// shard-owned profile items (this shard holds exactly those pool rows).
    fn pool_candidates(&self, items: &[ItemId]) -> Vec<ItemId> {
        let mut out = Vec::new();
        for &i in items {
            match self {
                SliceServe::ItemBased(r) => out.extend(r.neighbors(i).iter().map(|n| n.item)),
                SliceServe::PrivateItemBased(r) => {
                    out.extend(r.candidates(i).iter().map(|c| c.item));
                }
                SliceServe::UserBased(_) | SliceServe::PrivateUserBased(_) => {}
            }
        }
        out
    }

    /// User-based candidate contribution: every item in `[start, end)` rated by
    /// at least one planned neighbour.
    fn range_candidates(
        &self,
        profile: &Profile,
        plan: &ServePlan,
        start: u32,
        end: u32,
    ) -> Vec<ItemId> {
        let mut items = match (self, plan) {
            (SliceServe::UserBased(r), ServePlan::UserBased { neighbors, .. }) => {
                r.knn().candidate_items(neighbors)
            }
            (SliceServe::PrivateUserBased(r), ServePlan::PrivateUserBased { neighbors, .. }) => {
                r.candidate_items(profile, neighbors)
            }
            _ => Vec::new(),
        };
        items.retain(|i| (start..end).contains(&i.0));
        items
    }

    /// Scores one contiguous ascending candidate segment, exactly as the
    /// single-node scoring stream would score those positions.
    fn score(&self, profile: &Profile, plan: &ServePlan, items: &[ItemId]) -> Vec<(f64, ItemId)> {
        match (self, plan) {
            (SliceServe::ItemBased(r), ServePlan::ItemBased) => {
                let mut scratch = ProfileScratch::new();
                scratch.load(profile, r.target().n_items());
                items
                    .iter()
                    .map(|&i| (r.predict_with_scratch(&scratch, i), i))
                    .collect()
            }
            (SliceServe::PrivateItemBased(r), ServePlan::ItemBased) => {
                let mut scratch = ProfileScratch::new();
                scratch.load(profile, r.target().n_items());
                items
                    .iter()
                    .map(|&i| (r.predict_with_scratch(&scratch, i), i))
                    .collect()
            }
            (SliceServe::UserBased(r), ServePlan::UserBased { neighbors, avg }) => {
                let knn = r.knn();
                items
                    .iter()
                    .map(|&i| (knn.predict_with_neighbors(*avg, neighbors, i), i))
                    .collect()
            }
            (SliceServe::PrivateUserBased(r), ServePlan::PrivateUserBased { pool, avg, .. }) => {
                items
                    .iter()
                    .map(|&i| (r.predict_from_pool(pool, *avg, i), i))
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Nodes and the sharded model
// ---------------------------------------------------------------------------

/// The durable files of one hosted shard on one node: the open write-ahead
/// journal (the snapshot path is derived from the store directory).
struct ShardStore {
    journal: Journal,
}

/// One hosted shard on one node: the epoch-published slice, the serving wrapper
/// built from it, and the shard's durable store when persisted.
struct NodeShard {
    handle: EpochHandle<ShardSlice>,
    serve: SliceServe,
    store: Option<ShardStore>,
}

/// One simulated node: alive flag plus the shards it hosts. Killing a node
/// clears `shards` (in-memory state is lost); its files survive for recovery.
struct ShardNode {
    alive: bool,
    shards: BTreeMap<u32, NodeShard>,
}

/// The three routed-work ledgers plus the read-routing rotation counter.
#[derive(Default)]
struct ShardLedgers {
    route: Vec<RoutedTask>,
    serve: Vec<RoutedTask>,
    ingest: Vec<RoutedTask>,
    next_read: u64,
}

/// The X-Map model sharded across simulated nodes.
///
/// Owns the coordinator [`XMapModel`] (authoritative fit/ingest plane) and the
/// per-node shard replicas serving routed reads. All serving entry points are
/// `&self` and bit-identical to the coordinator's single-node answers; ingest,
/// persistence and failover are `&mut self` coordinator-driven operations. See
/// the [module docs](self) for the full contract.
pub struct ShardedModel {
    model: XMapModel,
    map: ShardMap,
    n_nodes: usize,
    nodes: Vec<ShardNode>,
    store_dir: Option<PathBuf>,
    ledgers: Mutex<ShardLedgers>,
}

/// The target-domain training matrix of an epoch — the replicated data plane
/// every node-shard recommender is built over. Same filter as the fit.
fn target_matrix_of(epoch: &ModelEpoch) -> Result<RatingMatrix> {
    let full = epoch.matrix();
    let target = epoch.target_domain();
    full.filter(|r| full.item_domain(r.item) == target)
        .map_err(|_| XMapError::Data("model epoch has no target-domain ratings".to_string()))
}

fn lock_ledgers(ledgers: &Mutex<ShardLedgers>) -> std::sync::MutexGuard<'_, ShardLedgers> {
    ledgers.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ShardedModel {
    /// Shards a fitted model across `n_nodes` simulated nodes, one shard per
    /// node, no replication. The coordinator model moves in and keeps running
    /// fits, ingests and the privacy ledger; the nodes get epoch-published
    /// slices of every fitted per-item artifact.
    pub fn from_model(model: XMapModel, n_nodes: usize) -> Result<ShardedModel> {
        let n_items = model.snapshot().1.matrix().n_items() as u32;
        let map = ShardMap::uniform(n_items, n_nodes)?;
        Self::build(model, map, n_nodes)
    }

    /// Like [`ShardedModel::from_model`], but with hot-shard partial
    /// replication: shards holding an item of the observed popularity head (the
    /// top tenth of items by rating count, at least one) carry `factor` replicas,
    /// clamped to the node count.
    pub fn with_hot_replication(
        model: XMapModel,
        n_nodes: usize,
        factor: u32,
    ) -> Result<ShardedModel> {
        let (map, n_nodes) = {
            let (_, epoch) = model.snapshot();
            let full = epoch.matrix();
            let n_items = full.n_items() as u32;
            let mut map = ShardMap::uniform(n_items, n_nodes)?;
            let popularity: Vec<usize> =
                (0..n_items).map(|i| full.item_degree(ItemId(i))).collect();
            let head = (n_items as usize / 10).max(1);
            map.replicate_hot(&popularity, head, factor);
            (map, n_nodes)
        };
        Self::build(model, map, n_nodes)
    }

    fn build(model: XMapModel, map: ShardMap, n_nodes: usize) -> Result<ShardedModel> {
        if n_nodes == 0 {
            return Err(XMapError::InvalidConfig(
                "sharded model needs at least one node".into(),
            ));
        }
        let (epoch_no, epoch) = model.snapshot();
        let target = target_matrix_of(&epoch)?;
        let mut nodes: Vec<ShardNode> = (0..n_nodes)
            .map(|_| ShardNode {
                alive: true,
                shards: BTreeMap::new(),
            })
            .collect();
        for shard in 0..map.n_shards() as u32 {
            let slice = ShardSlice::cut(&epoch, &map, shard);
            for host in map.hosts(shard, n_nodes) {
                let serve = SliceServe::build(epoch.config(), target.clone(), &slice)?;
                nodes[host].shards.insert(
                    shard,
                    NodeShard {
                        handle: EpochHandle::new(Arc::new(slice.clone()), epoch_no),
                        serve,
                        store: None,
                    },
                );
            }
        }
        drop(epoch);
        Ok(ShardedModel {
            model,
            map,
            n_nodes,
            nodes,
            store_dir: None,
            ledgers: Mutex::new(ShardLedgers::default()),
        })
    }

    /// Number of simulated nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The item-range shard map the model was built with.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The coordinator model: the authoritative fit/ingest plane.
    pub fn coordinator(&self) -> &XMapModel {
        &self.model
    }

    /// The coordinator's current epoch (slices publish in lockstep with it).
    pub fn epoch(&self) -> u64 {
        self.model.epoch()
    }

    /// Whether a node is alive (serving reads and receiving ingests).
    pub fn node_is_alive(&self, node: usize) -> bool {
        self.nodes.get(node).is_some_and(|n| n.alive)
    }

    /// The published slice a node currently holds for a shard, with its epoch.
    /// `None` if the node does not host the shard (or lost it to a kill).
    pub fn slice(&self, node: usize, shard: u32) -> Option<(u64, Arc<ShardSlice>)> {
        self.nodes
            .get(node)
            .and_then(|n| n.shards.get(&shard))
            .map(|ns| ns.handle.load())
    }

    /// The privacy accountant of the coordinator's current epoch (private modes
    /// only) — sharding never spends additional ε.
    pub fn privacy_budget(&self) -> Option<Arc<PrivacyBudget>> {
        self.model.privacy_budget()
    }

    /// Picks a live replica of a shard (rotating across replicas) and records
    /// the routing decision in the `route` ledger. Fails when every host of the
    /// shard is dead.
    fn read_host(&self, shard: u32) -> Result<usize> {
        let live: Vec<usize> = self
            .map
            .hosts(shard, self.n_nodes)
            .into_iter()
            .filter(|&h| self.nodes[h].alive && self.nodes[h].shards.contains_key(&shard))
            .collect();
        if live.is_empty() {
            return Err(XMapError::Data(format!(
                "shard {shard} has no live replica (all hosts killed)"
            )));
        }
        let mut led = lock_ledgers(&self.ledgers);
        let pick = live[(led.next_read % live.len() as u64) as usize];
        led.next_read += 1;
        led.route.push(RoutedTask {
            node: pick,
            cost: 1.0,
        });
        Ok(pick)
    }

    fn node_shard(&self, node: usize, shard: u32) -> Result<&NodeShard> {
        self.nodes[node].shards.get(&shard).ok_or_else(|| {
            XMapError::Data(format!(
                "node {node} does not hold a replica of shard {shard}"
            ))
        })
    }

    fn push_serve(&self, node: usize, cost: f64) {
        lock_ledgers(&self.ledgers)
            .serve
            .push(RoutedTask { node, cost });
    }

    /// The home shard of a profile: the shard of its first item (shard 0 for an
    /// empty profile). Phase-1 neighbour selection runs on a replica of it.
    fn home_shard(&self, profile: &Profile) -> u32 {
        profile
            .first()
            .map(|&(i, _, _)| self.map.shard_of(i))
            .unwrap_or(0)
    }

    /// The AlterEgo of a user, assembled by gathering the user's source items'
    /// replacement pairs from their owning shards — bit-identical to the
    /// coordinator's table because the mapping only ever consults those pairs.
    pub fn alterego(&self, user: UserId) -> Result<AlterEgo> {
        let (_, epoch) = self.model.snapshot();
        let full = epoch.matrix();
        let source = epoch.source_domain();
        let mut by_shard: BTreeMap<u32, Vec<ItemId>> = BTreeMap::new();
        for e in full.user_profile(user) {
            if full.item_domain(e.item) == source {
                by_shard
                    .entry(self.map.shard_of(e.item))
                    .or_default()
                    .push(e.item);
            }
        }
        let mut pairs: Vec<(ItemId, ItemId)> = Vec::new();
        for (shard, items) in &by_shard {
            let host = self.read_host(*shard)?;
            let ns = self.node_shard(host, *shard)?;
            let (_, slice) = ns.handle.load();
            for &i in items {
                if let Some(t) = slice.replacement_of(i) {
                    pairs.push((i, t));
                }
            }
            self.push_serve(host, 1.0 + items.len() as f64);
        }
        Ok(ReplacementTable::from_pairs(pairs).map_profile_with(
            full,
            user,
            source,
            epoch.target_domain(),
            epoch.config().transfer,
        ))
    }

    /// Routed single-item prediction for a user, driven by their gathered
    /// AlterEgo.
    pub fn predict(&self, user: UserId, item: ItemId) -> Result<f64> {
        let alter = self.alterego(user)?;
        self.predict_for_profile(&alter.profile, item)
    }

    /// Routed single-item prediction for an explicit profile: served by a live
    /// replica of the item's owning shard.
    pub fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> Result<f64> {
        let shard = self.map.shard_of(item);
        let host = self.read_host(shard)?;
        let out = self.node_shard(host, shard)?.serve.predict(profile, item);
        self.push_serve(host, 1.0 + profile.len() as f64);
        Ok(out)
    }

    /// Routed top-N recommendations for a user (AlterEgo gathered first).
    pub fn recommend(&self, user: UserId, n: usize) -> Result<Vec<(ItemId, f64)>> {
        let alter = self.alterego(user)?;
        self.recommend_for_profile(&alter.profile, n)
    }

    /// Routed top-N recommendations for an explicit profile: phase 1 on the home
    /// shard, candidate gathering and scoring fanned across the shards, partial
    /// top-N lists merged in shard order under the workspace tie-break — bit-
    /// identical to the single-node recommender (see the [module docs](self)).
    pub fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Result<Vec<(ItemId, f64)>> {
        let plan = self.routed_plan(profile)?;
        let candidates = self.routed_candidates(profile, &plan)?;
        self.routed_scores(profile, &plan, &candidates, n)
    }

    /// Routed batch serving, one result per profile in input order.
    pub fn serve_profiles(
        &self,
        profiles: &[Profile],
        n: usize,
    ) -> Result<Vec<Vec<(ItemId, f64)>>> {
        profiles
            .iter()
            .map(|p| self.recommend_for_profile(p, n))
            .collect()
    }

    fn routed_plan(&self, profile: &Profile) -> Result<ServePlan> {
        if self.model.config().mode.is_item_based() {
            return Ok(ServePlan::ItemBased);
        }
        let shard = self.home_shard(profile);
        let host = self.read_host(shard)?;
        let plan = self.node_shard(host, shard)?.serve.plan(profile);
        self.push_serve(host, 1.0 + profile.len() as f64);
        Ok(plan)
    }

    /// Gathers the candidate set across shards: item-based shards contribute the
    /// pool neighbours of the profile items they own, user-based shards the
    /// neighbour-rated items of their range. Merged ascending, deduplicated,
    /// owned items removed — the exact candidate stream of the single-node path.
    fn routed_candidates(&self, profile: &Profile, plan: &ServePlan) -> Result<Vec<ItemId>> {
        let owned: Vec<ItemId> = profile.iter().map(|&(i, _, _)| i).collect();
        let mut candidates: Vec<ItemId> = Vec::new();
        match plan {
            ServePlan::ItemBased => {
                let mut by_shard: BTreeMap<u32, Vec<ItemId>> = BTreeMap::new();
                for &(i, _, _) in profile {
                    by_shard.entry(self.map.shard_of(i)).or_default().push(i);
                }
                for (shard, items) in &by_shard {
                    let host = self.read_host(*shard)?;
                    candidates.extend(self.node_shard(host, *shard)?.serve.pool_candidates(items));
                    self.push_serve(host, 1.0 + items.len() as f64);
                }
            }
            ServePlan::UserBased { neighbors, .. }
            | ServePlan::PrivateUserBased { neighbors, .. } => {
                for shard in 0..self.map.n_shards() as u32 {
                    let host = self.read_host(shard)?;
                    let ns = self.node_shard(host, shard)?;
                    let (_, slice) = ns.handle.load();
                    let (start, end) = slice.item_range();
                    candidates.extend(ns.serve.range_candidates(profile, plan, start, end));
                    self.push_serve(host, 1.0 + neighbors.len() as f64);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|i| !owned.contains(i));
        Ok(candidates)
    }

    /// Scores the candidate stream shard by shard and merges the partial top-N
    /// lists: each shard's segment is a contiguous ascending run, its local
    /// top-N is re-sorted back into offer order (ascending item id) and fed to
    /// the global [`TopK`] in shard order. Any candidate a local top-N drops has
    /// ≥ n same-segment dominators that also dominate it globally (higher score,
    /// or equal score and earlier offer position), so the merge is bit-identical
    /// to ranking the undivided stream.
    fn routed_scores(
        &self,
        profile: &Profile,
        plan: &ServePlan,
        candidates: &[ItemId],
        n: usize,
    ) -> Result<Vec<(ItemId, f64)>> {
        let mut global = TopK::new(n);
        let mut ix = 0;
        while ix < candidates.len() {
            let shard = self.map.shard_of(candidates[ix]);
            let mut end = ix + 1;
            while end < candidates.len() && self.map.shard_of(candidates[end]) == shard {
                end += 1;
            }
            let segment = &candidates[ix..end];
            let host = self.read_host(shard)?;
            let scored = self
                .node_shard(host, shard)?
                .serve
                .score(profile, plan, segment);
            self.push_serve(host, 1.0 + segment.len() as f64);
            let mut local = top_k(n, scored);
            local.sort_by_key(|&(_, i)| i);
            for (score, item) in local {
                global.push(score, item);
            }
            ix = end;
        }
        Ok(global
            .into_sorted_vec()
            .into_iter()
            .map(|(s, i)| (i, s))
            .collect())
    }

    /// Routed delta ingest: splits the delta into per-shard sub-deltas, applies
    /// the **full** delta on the coordinator (slice rows are cross-shard
    /// functions of the whole matrix), then re-cuts every shard's slice from the
    /// new epoch, write-ahead journals each hosted replica's row changes, and
    /// publishes the new slices. Dead nodes are skipped — their journals go
    /// stale and [`ShardedModel::recover_node`] re-replicates instead.
    pub fn ingest(&mut self, delta: &RatingDelta) -> Result<DeltaReport> {
        let subs = self.map.split_delta(delta);
        let report = self.model.apply_delta(delta)?;
        let (epoch_no, epoch) = self.model.snapshot();
        let target = target_matrix_of(&epoch)?;
        for shard in 0..self.map.n_shards() as u32 {
            let new_slice = ShardSlice::cut(&epoch, &self.map, shard);
            let sub = &subs[shard as usize];
            let cost = 1.0 + sub.len() as f64;
            for host in self.map.hosts(shard, self.n_nodes) {
                if !self.nodes[host].alive {
                    continue;
                }
                let Some(ns) = self.nodes[host].shards.get_mut(&shard) else {
                    continue;
                };
                let (_, old) = ns.handle.load();
                let slice_delta = old.diff(&new_slice, sub.clone());
                if let Some(store) = ns.store.as_mut() {
                    store.journal.append(epoch_no, &slice_delta)?;
                }
                ns.handle.publish(Arc::new(new_slice.clone()));
                ns.serve = SliceServe::build(epoch.config(), target.clone(), &new_slice)?;
                lock_ledgers(&self.ledgers)
                    .ingest
                    .push(RoutedTask { node: host, cost });
            }
        }
        Ok(report)
    }

    /// Attaches a durable store: writes one snapshot and opens one fresh
    /// write-ahead journal per hosted shard per live node, under
    /// `dir/node<i>/shard<s>.{snap,journal}`. Returns the snapshot epoch.
    pub fn persist(&mut self, dir: &Path) -> Result<u64> {
        let (epoch_no, _) = self.model.snapshot();
        for (id, node) in self.nodes.iter_mut().enumerate() {
            if !node.alive {
                continue;
            }
            let node_dir = dir.join(format!("node{id}"));
            std::fs::create_dir_all(&node_dir).map_err(|e| XMapError::Io {
                path: node_dir.clone(),
                context: format!("create node store directory: {e}"),
            })?;
            for (&shard, ns) in node.shards.iter_mut() {
                let (_, slice) = ns.handle.load();
                Snapshot::write(
                    &node_dir.join(format!("shard{shard}.snap")),
                    &SliceState {
                        epoch: epoch_no,
                        slice: (*slice).clone(),
                    },
                )?;
                let journal =
                    Journal::create(&node_dir.join(format!("shard{shard}.journal")), epoch_no)?;
                ns.store = Some(ShardStore { journal });
            }
        }
        self.store_dir = Some(dir.to_path_buf());
        Ok(epoch_no)
    }

    /// Kills a node: marks it dead and drops its in-memory shard state. Its
    /// snapshot and journal files survive untouched; reads of the shards it
    /// hosted fail over to the remaining replicas (promotion is implicit in the
    /// read routing), and shards with no other replica error until recovery.
    pub fn kill_node(&mut self, node: usize) -> Result<()> {
        let n = self
            .nodes
            .get_mut(node)
            .ok_or_else(|| XMapError::Data(format!("no such node: {node}")))?;
        n.alive = false;
        n.shards.clear();
        Ok(())
    }

    /// Recovers a killed node from its per-shard files: loads each snapshot,
    /// replays the journal records past the snapshot epoch, and — when the
    /// journal ends behind the coordinator (the node was dead across ingests) —
    /// re-replicates the shard from the coordinator's current epoch, rewriting
    /// the snapshot and resetting the journal. The node resumes serving with
    /// slices bit-identical to the live replicas'.
    pub fn recover_node(&mut self, node: usize) -> Result<()> {
        if node >= self.nodes.len() {
            return Err(XMapError::Data(format!("no such node: {node}")));
        }
        let dir = self.store_dir.clone().ok_or_else(|| {
            XMapError::Data("no durable store attached; call persist() first".to_string())
        })?;
        let (epoch_no, epoch) = self.model.snapshot();
        let target = target_matrix_of(&epoch)?;
        let node_dir = dir.join(format!("node{node}"));
        let mut rebuilt = BTreeMap::new();
        for shard in 0..self.map.n_shards() as u32 {
            if !self.map.hosts(shard, self.n_nodes).contains(&node) {
                continue;
            }
            let snap_path = node_dir.join(format!("shard{shard}.snap"));
            let journal_path = node_dir.join(format!("shard{shard}.journal"));
            let state: SliceState = Snapshot::load(&snap_path)?;
            let (mut journal, records) = Journal::open::<SliceDelta>(&journal_path)?;
            let mut slice = state.slice;
            let mut at = state.epoch;
            for rec in &records {
                if rec.epoch <= at {
                    continue; // already folded into the snapshot
                }
                slice = slice.apply(&rec.value);
                at = rec.epoch;
            }
            if at < epoch_no {
                // The journal never saw the ingests that happened while the node
                // was dead (they are only journaled on live replicas) — catch up
                // by re-replicating from the coordinator and making it durable.
                slice = ShardSlice::cut(&epoch, &self.map, shard);
                Snapshot::write(
                    &snap_path,
                    &SliceState {
                        epoch: epoch_no,
                        slice: slice.clone(),
                    },
                )?;
                journal.reset(epoch_no)?;
            }
            let serve = SliceServe::build(epoch.config(), target.clone(), &slice)?;
            rebuilt.insert(
                shard,
                NodeShard {
                    handle: EpochHandle::new(Arc::new(slice), epoch_no),
                    serve,
                    store: Some(ShardStore { journal }),
                },
            );
        }
        self.nodes[node].shards = rebuilt;
        self.nodes[node].alive = true;
        Ok(())
    }

    /// The routing ledger: one unit-cost task per routed request→shard
    /// interaction, attributed to the serving node. Replayable by
    /// `xmap_engine::ShardedCluster`.
    pub fn route_ledger(&self) -> Vec<RoutedTask> {
        lock_ledgers(&self.ledgers).route.clone()
    }

    /// The per-shard serving ledger: one task per shard-local phase of a routed
    /// request, cost `1 + items processed`.
    pub fn shard_serve_ledger(&self) -> Vec<RoutedTask> {
        lock_ledgers(&self.ledgers).serve.clone()
    }

    /// The per-shard ingest ledger: one task per (shard, hosting node) of each
    /// ingest, cost `1 + sub-delta ratings`.
    pub fn shard_ingest_ledger(&self) -> Vec<RoutedTask> {
        lock_ledgers(&self.ledgers).ingest.clone()
    }

    /// Clears all three routed-work ledgers (the rotation counter is kept, so
    /// routing decisions stay on their sequence).
    pub fn clear_ledgers(&self) {
        let mut led = lock_ledgers(&self.ledgers);
        led.route.clear();
        led.serve.clear();
        led.ingest.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_store::{decode_exact, encode_to_vec};

    #[test]
    fn uniform_map_covers_the_catalogue_with_contiguous_ranges() {
        let map = ShardMap::uniform(10, 3).unwrap();
        assert_eq!(map.n_shards(), 3);
        assert_eq!(map.range(0), (0, 4));
        assert_eq!(map.range(1), (4, 7));
        assert_eq!(map.range(2), (7, 10));
        for id in 0..10u32 {
            let s = map.shard_of(ItemId(id));
            let (start, end) = map.range(s);
            assert!((start..end).contains(&id), "item {id} outside shard {s}");
        }
        // ids beyond the catalogue clamp into the last shard
        assert_eq!(map.shard_of(ItemId(10)), 2);
        assert_eq!(map.shard_of(ItemId(u32::MAX)), 2);
        assert!(ShardMap::uniform(10, 0).is_err());
    }

    #[test]
    fn small_catalogues_leave_trailing_shards_empty() {
        let map = ShardMap::uniform(2, 4).unwrap();
        assert_eq!(map.range(0), (0, 1));
        assert_eq!(map.range(1), (1, 2));
        assert_eq!(map.range(2), (2, 2));
        assert_eq!(map.range(3), (2, 2));
        assert_eq!(map.shard_of(ItemId(1)), 1);
        // clamped ids go to the last shard even though it is empty by layout
        assert_eq!(map.shard_of(ItemId(7)), 3);
    }

    #[test]
    fn hosts_rotate_from_the_owner_and_clamp_to_the_node_count() {
        let mut map = ShardMap::uniform(12, 4).unwrap();
        assert_eq!(map.hosts(2, 3), vec![2]);
        // replicate shard 1 three-fold on a 4-node cluster
        map.replicate_hot(&[0, 0, 0, 9, 9, 0, 0, 0, 0, 0, 0, 0], 2, 3);
        assert_eq!(map.replication(1), 3);
        assert_eq!(map.hosts(1, 4), vec![1, 2, 3]);
        // more replicas than nodes: every node once, never a duplicate
        map.replicate_hot(&[0, 0, 0, 9, 9, 0, 0, 0, 0, 0, 0, 0], 2, 10);
        assert_eq!(map.hosts(1, 4), vec![1, 2, 3, 0]);
        assert_eq!(map.hosts(1, 2), vec![1, 0]);
    }

    #[test]
    fn replicate_hot_breaks_popularity_ties_by_ascending_id() {
        let mut map = ShardMap::uniform(4, 4).unwrap();
        map.replicate_hot(&[5, 5, 5, 5], 1, 2);
        assert_eq!(map.replication(0), 2);
        assert_eq!(map.replication(1), 1);
    }

    #[test]
    fn split_delta_routes_by_item_shard_and_preserves_order() {
        let map = ShardMap::uniform(10, 2).unwrap();
        let mut delta = RatingDelta::new();
        delta
            .push_timed(1, 0, 5.0, 1)
            .push_timed(2, 9, 4.0, 2)
            .push_timed(1, 1, 3.0, 3)
            .push_timed(3, 12, 2.0, 4); // clamped into the last shard
        let subs = map.split_delta(&delta);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].len(), 2);
        assert_eq!(subs[0].ratings()[0].item, ItemId(0));
        assert_eq!(subs[0].ratings()[1].item, ItemId(1));
        assert_eq!(subs[1].len(), 2);
        assert_eq!(subs[1].ratings()[0].item, ItemId(9));
        assert_eq!(subs[1].ratings()[1].item, ItemId(12));
    }

    fn sample_slice() -> ShardSlice {
        ShardSlice {
            shard: 1,
            start: 4,
            end: 8,
            graph_rows: vec![(
                ItemId(4),
                vec![(
                    ItemId(9),
                    SimilarityStats {
                        similarity: 0.5,
                        co_raters: 3,
                        significance: 4,
                        union_size: 5,
                    },
                )],
            )],
            xsim_rows: vec![(
                ItemId(5),
                vec![XSimEntry {
                    item: ItemId(9),
                    similarity: 0.25,
                    certainty: 0.5,
                    n_paths: 1,
                }],
            )],
            replacement_pairs: vec![(ItemId(4), ItemId(9)), (ItemId(6), ItemId(8))],
            pool_rows: Some(vec![(
                ItemId(4),
                vec![ItemNeighbor {
                    item: ItemId(5),
                    similarity: 0.75,
                }],
            )]),
        }
    }

    #[test]
    fn slice_codec_roundtrips() {
        let slice = sample_slice();
        let state = SliceState {
            epoch: 3,
            slice: slice.clone(),
        };
        let bytes = encode_to_vec(&state);
        let back: SliceState = decode_exact(&bytes, 0).unwrap();
        assert_eq!(back.epoch, 3);
        assert_eq!(back.slice, slice);
    }

    #[test]
    fn diff_apply_roundtrips_row_changes() {
        let old = sample_slice();
        let mut new = old.clone();
        // change a row, add a row, remove a row, change the replacement table
        new.graph_rows[0].1[0].1.similarity = 0.9;
        new.xsim_rows.push((
            ItemId(7),
            vec![XSimEntry {
                item: ItemId(8),
                similarity: 0.1,
                certainty: 0.2,
                n_paths: 2,
            }],
        ));
        new.pool_rows = Some(Vec::new());
        new.replacement_pairs = vec![(ItemId(4), ItemId(8))];
        let sub = RatingDelta::new();
        let delta = old.diff(&new, sub);
        assert_eq!(old.apply(&delta), new);

        // identity diff carries no row changes and applies to itself
        let idd = old.diff(&old, RatingDelta::new());
        assert!(idd.replacement_pairs.is_none());
        assert_eq!(old.apply(&idd), old);

        // journal payload codec roundtrip
        let bytes = encode_to_vec(&delta);
        let back: SliceDelta = decode_exact(&bytes, 0).unwrap();
        assert_eq!(back, delta);
    }

    #[test]
    fn replacement_lookup_uses_the_sorted_pairs() {
        let slice = sample_slice();
        assert_eq!(slice.replacement_of(ItemId(4)), Some(ItemId(9)));
        assert_eq!(slice.replacement_of(ItemId(6)), Some(ItemId(8)));
        assert_eq!(slice.replacement_of(ItemId(5)), None);
    }
}
