//! Configuration of the X-Map pipeline.

use crate::generator::RatingTransfer;
use serde::{Deserialize, Serialize};
use xmap_cf::SimilarityMetric;
use xmap_graph::MetaPathConfig;

/// Which of the four recommender variants evaluated in §6 to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum XMapMode {
    /// Non-private, user-based CF in the target domain (`NX-MAP-UB`).
    NxMapUserBased,
    /// Non-private, item-based CF in the target domain (`NX-MAP-IB`).
    NxMapItemBased,
    /// Differentially private, user-based (`X-MAP-UB`).
    XMapUserBased,
    /// Differentially private, item-based (`X-MAP-IB`).
    XMapItemBased,
}

impl XMapMode {
    /// Whether this mode applies the differential-privacy mechanisms (PRS + PNSA/PNCF).
    pub fn is_private(&self) -> bool {
        matches!(self, XMapMode::XMapUserBased | XMapMode::XMapItemBased)
    }

    /// Whether the target-domain CF step is item-based.
    pub fn is_item_based(&self) -> bool {
        matches!(self, XMapMode::NxMapItemBased | XMapMode::XMapItemBased)
    }

    /// Display name matching the labels used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            XMapMode::NxMapUserBased => "NX-MAP-UB",
            XMapMode::NxMapItemBased => "NX-MAP-IB",
            XMapMode::XMapUserBased => "X-MAP-UB",
            XMapMode::XMapItemBased => "X-MAP-IB",
        }
    }
}

/// Differential-privacy parameters (§6.3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrivacyConfig {
    /// ε for the PRS AlterEgo-generation mechanism (Algorithm 3).
    pub epsilon: f64,
    /// ε′ shared by PNSA and PNCF (Algorithms 4 and 5); each receives ε′/2.
    pub epsilon_prime: f64,
    /// Failure probability ρ of the truncated-similarity bound (Theorems 3–4).
    pub rho: f64,
}

impl Default for PrivacyConfig {
    fn default() -> Self {
        // The paper's selected operating point for X-Map-ib (§6.3).
        PrivacyConfig {
            epsilon: 0.3,
            epsilon_prime: 0.8,
            rho: 0.05,
        }
    }
}

impl PrivacyConfig {
    /// The operating point the paper selects for the user-based variant (ε=0.6, ε′=0.3).
    pub fn user_based_default() -> Self {
        PrivacyConfig {
            epsilon: 0.6,
            epsilon_prime: 0.3,
            rho: 0.05,
        }
    }

    /// The total differential-privacy guarantee of one fit: ε (PRS) + ε′ (PNSA + PNCF)
    /// by sequential composition (§4.4). The pipeline sizes its [`PrivacyBudget`]
    /// accountant to exactly this, so no mechanism can spend more than the model claims.
    ///
    /// [`PrivacyBudget`]: xmap_privacy::PrivacyBudget
    pub fn total(&self) -> f64 {
        self.epsilon + self.epsilon_prime
    }
}

/// Full configuration of an X-Map run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct XMapConfig {
    /// Recommender variant.
    pub mode: XMapMode,
    /// Neighbourhood size `k` used everywhere a top-k appears: layer extension fan-out,
    /// CF neighbours, similar-item lists (§6.4 uses k = 50).
    pub k: usize,
    /// Baseline similarity metric for the similarity graph (adjusted cosine in the paper).
    pub metric: SimilarityMetric,
    /// Meta-path enumeration limits.
    pub metapath: MetaPathConfig,
    /// Temporal decay α for the item-based recommender (Equation 7); 0 disables it.
    pub temporal_alpha: f64,
    /// How rating values are carried onto replacement items when building AlterEgos.
    pub transfer: RatingTransfer,
    /// Size of the replacement shortlist per source item: the generator (and the PRS
    /// mechanism in the private modes) selects the replacement from the
    /// `replacement_pool` best heterogeneous candidates. A small shortlist keeps the
    /// exponential mechanism useful even at strong privacy levels, mirroring the paper's
    /// top-k extension lists (§5.2).
    pub replacement_pool: usize,
    /// Privacy parameters; only consulted by the private modes.
    pub privacy: PrivacyConfig,
    /// Seed for all randomised mechanisms (PRS, PNSA, PNCF). The same seed and inputs
    /// give identical models, which the experiments rely on.
    pub seed: u64,
    /// Number of worker threads for the parallel stages.
    pub workers: usize,
    /// Number of dataflow partitions the parallel stages split their work into. The
    /// partition count fixes the unit of work (and the per-partition task costs fed to
    /// the cluster simulator); `workers` only decides how many execute concurrently, so
    /// results are identical for any worker count.
    pub partitions: usize,
}

impl Default for XMapConfig {
    fn default() -> Self {
        XMapConfig {
            mode: XMapMode::NxMapItemBased,
            k: 50,
            metric: SimilarityMetric::AdjustedCosine,
            metapath: MetaPathConfig::default(),
            temporal_alpha: 0.0,
            transfer: RatingTransfer::default(),
            replacement_pool: 10,
            privacy: PrivacyConfig::default(),
            seed: 42,
            workers: 1,
            partitions: 16,
        }
    }
}

impl XMapConfig {
    /// Validates the configuration, returning a description of the first problem found.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.k == 0 {
            return Err("k must be at least 1".to_string());
        }
        if self.temporal_alpha < 0.0 || !self.temporal_alpha.is_finite() {
            return Err(format!(
                "temporal_alpha must be finite and >= 0, got {}",
                self.temporal_alpha
            ));
        }
        if self.metapath.per_layer_top_k == 0 {
            return Err("metapath.per_layer_top_k must be at least 1".to_string());
        }
        if self.replacement_pool == 0 {
            return Err("replacement_pool must be at least 1".to_string());
        }
        if self.mode.is_private() {
            if !(self.privacy.epsilon.is_finite() && self.privacy.epsilon > 0.0) {
                return Err(format!(
                    "privacy.epsilon must be positive, got {}",
                    self.privacy.epsilon
                ));
            }
            if !(self.privacy.epsilon_prime.is_finite() && self.privacy.epsilon_prime > 0.0) {
                return Err(format!(
                    "privacy.epsilon_prime must be positive, got {}",
                    self.privacy.epsilon_prime
                ));
            }
            if !(0.0 < self.privacy.rho && self.privacy.rho < 1.0) {
                return Err(format!(
                    "privacy.rho must be in (0, 1), got {}",
                    self.privacy.rho
                ));
            }
        }
        if self.workers == 0 {
            return Err("workers must be at least 1".to_string());
        }
        if self.partitions == 0 {
            return Err("partitions must be at least 1".to_string());
        }
        Ok(())
    }
}

impl xmap_store::Codec for XMapMode {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_u8(match self {
            XMapMode::NxMapUserBased => 0,
            XMapMode::NxMapItemBased => 1,
            XMapMode::XMapUserBased => 2,
            XMapMode::XMapItemBased => 3,
        });
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        match d.take_u8()? {
            0 => Ok(XMapMode::NxMapUserBased),
            1 => Ok(XMapMode::NxMapItemBased),
            2 => Ok(XMapMode::XMapUserBased),
            3 => Ok(XMapMode::XMapItemBased),
            tag => Err(d.corrupt(format!("invalid XMapMode tag {tag}"))),
        }
    }
}

impl xmap_store::Codec for PrivacyConfig {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_f64(self.epsilon);
        e.put_f64(self.epsilon_prime);
        e.put_f64(self.rho);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(PrivacyConfig {
            epsilon: d.take_f64()?,
            epsilon_prime: d.take_f64()?,
            rho: d.take_f64()?,
        })
    }
}

/// On-disk codec for the full fit configuration, field order. Persisted inside the
/// snapshot so that `XMapModel::open` rebuilds the model under exactly the
/// configuration it was fitted with (worker/partition counts included — they do
/// not affect the fitted bits, but they do size the recovered dataflow).
impl xmap_store::Codec for XMapConfig {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        self.mode.enc(e);
        e.put_usize(self.k);
        self.metric.enc(e);
        self.metapath.enc(e);
        e.put_f64(self.temporal_alpha);
        self.transfer.enc(e);
        e.put_usize(self.replacement_pool);
        self.privacy.enc(e);
        e.put_u64(self.seed);
        e.put_usize(self.workers);
        e.put_usize(self.partitions);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(XMapConfig {
            mode: XMapMode::dec(d)?,
            k: d.take_usize()?,
            metric: xmap_cf::SimilarityMetric::dec(d)?,
            metapath: xmap_graph::MetaPathConfig::dec(d)?,
            temporal_alpha: d.take_f64()?,
            transfer: crate::generator::RatingTransfer::dec(d)?,
            replacement_pool: d.take_usize()?,
            privacy: PrivacyConfig::dec(d)?,
            seed: d.take_u64()?,
            workers: d.take_usize()?,
            partitions: d.take_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_flags_and_labels() {
        assert!(XMapMode::XMapItemBased.is_private());
        assert!(XMapMode::XMapUserBased.is_private());
        assert!(!XMapMode::NxMapItemBased.is_private());
        assert!(XMapMode::NxMapItemBased.is_item_based());
        assert!(XMapMode::XMapItemBased.is_item_based());
        assert!(!XMapMode::NxMapUserBased.is_item_based());
        assert_eq!(XMapMode::XMapUserBased.label(), "X-MAP-UB");
        assert_eq!(XMapMode::NxMapItemBased.label(), "NX-MAP-IB");
    }

    #[test]
    fn default_config_is_valid() {
        assert!(XMapConfig::default().validate().is_ok());
        let private = XMapConfig {
            mode: XMapMode::XMapItemBased,
            ..Default::default()
        };
        assert!(private.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_reported() {
        let c = XMapConfig {
            k: 0,
            ..Default::default()
        };
        assert!(c.validate().unwrap_err().contains("k"));

        let c = XMapConfig {
            temporal_alpha: -1.0,
            ..Default::default()
        };
        assert!(c.validate().unwrap_err().contains("temporal_alpha"));

        let c = XMapConfig {
            workers: 0,
            ..Default::default()
        };
        assert!(c.validate().unwrap_err().contains("workers"));

        let c = XMapConfig {
            partitions: 0,
            ..Default::default()
        };
        assert!(c.validate().unwrap_err().contains("partitions"));

        let mut c = XMapConfig {
            mode: XMapMode::XMapItemBased,
            ..Default::default()
        };
        c.privacy.epsilon = 0.0;
        assert!(c.validate().unwrap_err().contains("epsilon"));

        let mut c = XMapConfig {
            mode: XMapMode::XMapUserBased,
            ..Default::default()
        };
        c.privacy.epsilon_prime = f64::NAN;
        assert!(c.validate().unwrap_err().contains("epsilon_prime"));

        let mut c = XMapConfig {
            mode: XMapMode::XMapUserBased,
            ..Default::default()
        };
        c.privacy.rho = 1.5;
        assert!(c.validate().unwrap_err().contains("rho"));
    }

    #[test]
    fn privacy_epsilon_ignored_for_non_private_modes() {
        let mut c = XMapConfig::default(); // non-private
        c.privacy.epsilon = -1.0;
        assert!(
            c.validate().is_ok(),
            "non-private modes do not consult privacy parameters"
        );
    }

    #[test]
    fn paper_operating_points() {
        let ib = PrivacyConfig::default();
        assert_eq!((ib.epsilon, ib.epsilon_prime), (0.3, 0.8));
        let ub = PrivacyConfig::user_based_default();
        assert_eq!((ub.epsilon, ub.epsilon_prime), (0.6, 0.3));
    }
}
