//! Durable model state: versioned snapshots plus an append-only delta journal.
//!
//! The persistence layer completes the model lifecycle (`fit` → [`XMapModel::persist`]
//! → [`XMapModel::apply_delta`] → [`XMapModel::open`] / [`XMapModel::recover`]):
//!
//! * [`XMapModel::persist`] serializes the current [`ModelEpoch`] into an atomically
//!   written, checksummed snapshot (`model.snap`) and opens a fresh write-ahead
//!   journal (`deltas.journal`) based at the snapshot epoch.
//! * With a store attached, `apply_delta` journals every [`RatingDelta`] — fsynced,
//!   CRC-framed, epoch-stamped — *before* publishing the new epoch, so the files on
//!   disk always describe a superset of what readers have been shown.
//! * [`XMapModel::open`] / [`XMapModel::recover`] rebuild the model: load the
//!   snapshot, replay every journal record past the snapshot epoch through the
//!   ordinary `apply_delta` path (which is bit-identical to a full refit — see
//!   `DESIGN.md`), and discard any torn tail the journal scan truncated away.
//! * [`XMapModel::compact`] folds the journal into a new snapshot: it rewrites the
//!   snapshot at the current epoch *first* (atomic rename), then resets the journal.
//!   A crash between the two steps leaves stale records the next recovery skips
//!   (their epoch stamps are ≤ the snapshot epoch), never a lost delta.
//!
//! What is persisted vs recomputed: the snapshot carries every artifact whose
//! reconstruction is either expensive or non-derivable — the aggregated matrix, the
//! similarity graph (including its scored-pair delta cache), the X-Sim table, the
//! replacement table, the raw item-kNN pools and the privacy ledger. The bridge
//! index, layer partition and the recommender wrapper are cheap deterministic
//! functions of those and are recomputed on load, exactly as the fit computes them.

use crate::delta::RatingDelta;
use crate::pipeline::{recommender_from_pools, ModelEpoch, PipelineStats, XMapModel};
use crate::recommend::{
    PrivateUserBasedRecommender, ProfileRecommender, ScratchPool, UserBasedRecommender,
};
use crate::xsim::XSimTable;
use crate::{Result, XMapError};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use xmap_cf::knn::ItemNeighbor;
use xmap_cf::{DomainId, RatingMatrix};
use xmap_engine::sync::AtomicU64;
use xmap_engine::{Dataflow, EpochHandle};
use xmap_graph::{LayerPartition, SimilarityGraph};
use xmap_privacy::PrivacyBudget;
use xmap_store::{Journal, Snapshot};

/// File name of the model snapshot inside a store directory.
pub const SNAPSHOT_FILE: &str = "model.snap";

/// File name of the append-only delta journal inside a store directory.
pub const JOURNAL_FILE: &str = "deltas.journal";

/// The attached durable store of a model: the snapshot path (rewritten by
/// [`XMapModel::compact`]) and the open write-ahead journal.
pub(crate) struct ModelStore {
    snapshot_path: PathBuf,
    journal: Journal,
}

impl ModelStore {
    /// Write-ahead append of one delta, stamped with the epoch it *will* publish.
    /// Called by `apply_delta` under the ingest lock, before the epoch swap.
    pub(crate) fn append(&mut self, epoch: u64, delta: &RatingDelta) -> Result<u64> {
        Ok(self.journal.append(epoch, delta)?)
    }

    /// Current journal size in bytes (header + intact records).
    pub(crate) fn journal_len_bytes(&self) -> u64 {
        self.journal.len_bytes()
    }
}

/// The on-disk image of one [`ModelEpoch`]: everything a recovery cannot (or should
/// not) recompute. Field order is the wire order; see the "Durable state" section of
/// `DESIGN.md` for the format contract.
struct ModelState {
    epoch: u64,
    config: crate::XMapConfig,
    source: DomainId,
    target: DomainId,
    full: Arc<RatingMatrix>,
    graph: Arc<SimilarityGraph>,
    xsim: Arc<XSimTable>,
    replacements: Arc<crate::ReplacementTable>,
    item_pools: Option<Arc<Vec<Vec<ItemNeighbor>>>>,
    budget: Option<Arc<PrivacyBudget>>,
}

impl ModelState {
    /// Captures the persistable image of a published epoch (cheap: `Arc` clones).
    fn from_epoch(epoch_no: u64, epoch: &ModelEpoch) -> Self {
        ModelState {
            epoch: epoch_no,
            config: epoch.config,
            source: epoch.source_domain,
            target: epoch.target_domain,
            full: Arc::clone(&epoch.full),
            graph: Arc::clone(&epoch.graph),
            xsim: Arc::clone(&epoch.xsim),
            replacements: Arc::clone(&epoch.replacements),
            item_pools: epoch.item_pools.as_ref().map(Arc::clone),
            budget: epoch.budget.as_ref().map(Arc::clone),
        }
    }
}

impl xmap_store::Codec for ModelState {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_u64(self.epoch);
        self.config.enc(e);
        self.source.enc(e);
        self.target.enc(e);
        self.full.enc(e);
        self.graph.enc(e);
        self.xsim.enc(e);
        self.replacements.enc(e);
        self.item_pools.enc(e);
        self.budget.enc(e);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        let epoch = d.take_u64()?;
        if epoch == 0 {
            return Err(d.corrupt("snapshot epoch must be ≥ 1".to_string()));
        }
        Ok(ModelState {
            epoch,
            config: xmap_store::Codec::dec(d)?,
            source: xmap_store::Codec::dec(d)?,
            target: xmap_store::Codec::dec(d)?,
            full: xmap_store::Codec::dec(d)?,
            graph: xmap_store::Codec::dec(d)?,
            xsim: xmap_store::Codec::dec(d)?,
            replacements: xmap_store::Codec::dec(d)?,
            item_pools: xmap_store::Codec::dec(d)?,
            budget: xmap_store::Codec::dec(d)?,
        })
    }
}

/// Rebuilds a live [`XMapModel`] from a decoded snapshot image: recomputes the
/// bridge index, layer partition, fit stats and the mode's recommender (all
/// deterministic functions of the persisted artifacts), and seeds the epoch handle
/// at the snapshot epoch so replayed deltas publish the exact journal stamps.
fn model_from_state(state: ModelState) -> Result<XMapModel> {
    let ModelState {
        epoch: epoch_no,
        config,
        source,
        target,
        full,
        graph,
        xsim,
        replacements,
        item_pools,
        budget,
    } = state;
    config.validate().map_err(|m| XMapError::Corrupt {
        offset: 0,
        detail: format!("persisted configuration is invalid: {m}"),
    })?;
    if source == target {
        return Err(XMapError::Corrupt {
            offset: 0,
            detail: "persisted source and target domains are equal".to_string(),
        });
    }

    // Same calls as the fit and delta paths — the recomputed pieces are
    // bit-identical to what the persisting process held in memory.
    let (bridges, partition) = LayerPartition::from_graph(&graph);

    let target_matrix = full
        .filter(|r| full.item_domain(r.item) == target)
        .map_err(|_| XMapError::Corrupt {
            offset: 0,
            detail: "persisted matrix has no target-domain ratings".to_string(),
        })?;
    let n_target_ratings = target_matrix.n_ratings();

    let budget = if config.mode.is_private() {
        Some(budget.ok_or_else(|| XMapError::Corrupt {
            offset: 0,
            detail: "private mode snapshot is missing its privacy ledger".to_string(),
        })?)
    } else {
        None
    };

    type RebuiltRecommender = (
        Box<dyn ProfileRecommender + Send + Sync>,
        Option<Arc<Vec<Vec<ItemNeighbor>>>>,
    );
    let (recommender, item_pools): RebuiltRecommender = match config.mode {
        crate::XMapMode::NxMapItemBased | crate::XMapMode::XMapItemBased => {
            let pools = item_pools.ok_or_else(|| XMapError::Corrupt {
                offset: 0,
                detail: "item-based mode snapshot is missing its kNN pools".to_string(),
            })?;
            let (recommender, _) =
                recommender_from_pools(&config, target_matrix, pools.as_ref().clone())?;
            (recommender, Some(pools))
        }
        crate::XMapMode::NxMapUserBased => (
            Box::new(UserBasedRecommender::fit(target_matrix, config.k)?),
            None,
        ),
        crate::XMapMode::XMapUserBased => {
            // The fit is deterministic in (matrix, k, ε′, ρ, seed); the scratch
            // budget only absorbs the re-fit's ε′ debit — the *released* ledger is
            // the persisted one, which already recorded that expenditure.
            let mut scratch = PrivacyBudget::new(config.privacy.total());
            (
                Box::new(PrivateUserBasedRecommender::fit(
                    target_matrix,
                    config.k,
                    config.privacy.epsilon_prime,
                    config.privacy.rho,
                    config.seed,
                    &mut scratch,
                )?),
                None,
            )
        }
    };

    // The fit-shape stats are recomputed from the persisted artifacts; the wall-clock
    // durations and per-partition task bags of the original fit are not persisted
    // (they describe a past process, not the model) and come back empty.
    let stats = PipelineStats {
        n_standard_hetero_pairs: graph.n_heterogeneous_pairs(),
        n_xsim_hetero_pairs: xsim.n_heterogeneous_pairs(),
        n_bridge_items: bridges.n_bridges(),
        layer_counts: partition.cell_counts(),
        stage_durations: Vec::new(),
        baseliner_task_costs: Vec::new(),
        extension_task_costs: Vec::new(),
        generator_task_costs: Vec::new(),
        recommender_task_costs: Vec::new(),
        n_target_ratings,
    };

    let epoch = ModelEpoch {
        config,
        source_domain: source,
        target_domain: target,
        full,
        graph,
        partition: Arc::new(partition),
        replacements,
        xsim,
        recommender: Arc::from(recommender),
        item_pools,
        budget,
    };

    Ok(XMapModel {
        config,
        source_domain: source,
        target_domain: target,
        handle: EpochHandle::new(Arc::new(epoch), epoch_no),
        stats: Mutex::new(stats),
        flow: Dataflow::new(config.workers, config.partitions),
        scratch: ScratchPool::new(),
        ingest_lock: Mutex::new(()),
        serve_epoch: AtomicU64::new(0),
        ingest_stats: Mutex::new(None),
        store: Mutex::new(None),
    })
}

impl XMapModel {
    /// Attaches a durable store to the model: writes a snapshot of the current epoch
    /// into `dir` (atomically — temp file, fsync, rename) and opens a fresh delta
    /// journal based at that epoch. From here on, every [`XMapModel::apply_delta`]
    /// write-ahead journals its delta before publishing. Returns the snapshot epoch.
    ///
    /// Re-persisting an already-attached model rewrites the snapshot and journal in
    /// the new directory and detaches the old ones.
    pub fn persist(&self, dir: &Path) -> Result<u64> {
        std::fs::create_dir_all(dir).map_err(|e| XMapError::Io {
            path: dir.to_path_buf(),
            context: format!("create store directory: {e}"),
        })?;
        // Ingest lock first, store lock second — the same order as `apply_delta`,
        // so writers and persisters never deadlock. Holding the ingest lock pins
        // the current epoch: no delta can publish between snapshot and journal
        // creation, so the journal base is exactly the snapshot epoch.
        let _ingest = self
            .ingest_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (epoch_no, epoch) = self.handle.load();
        let state = ModelState::from_epoch(epoch_no, &epoch);
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        Snapshot::write(&snapshot_path, &state)?;
        let journal = Journal::create(&dir.join(JOURNAL_FILE), epoch_no)?;
        *self
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(ModelStore {
            snapshot_path,
            journal,
        });
        Ok(epoch_no)
    }

    /// Opens a persisted model from its store directory: equivalent to
    /// [`XMapModel::recover`] with the directory's standard file names
    /// ([`SNAPSHOT_FILE`], [`JOURNAL_FILE`]).
    pub fn open(dir: &Path) -> Result<XMapModel> {
        Self::recover(&dir.join(SNAPSHOT_FILE), &dir.join(JOURNAL_FILE))
    }

    /// Crash recovery: loads the snapshot, replays every journal record newer than
    /// the snapshot epoch through the ordinary delta path, and re-attaches the store.
    ///
    /// The recovered model is bit-identical to the in-memory model that wrote the
    /// files (`apply_delta` is bit-identical to a full refit, and recomputed pieces
    /// are deterministic). A torn journal tail — a record cut short by a crash — is
    /// truncated away and recovery succeeds with the intact prefix; any *complete*
    /// but damaged record (bad CRC, wrong epoch stamp) fails with
    /// [`XMapError::Corrupt`]. Records at or below the snapshot epoch (left behind
    /// by a crash between compaction's snapshot rewrite and journal reset) are
    /// skipped. A missing journal file is treated as empty and recreated.
    pub fn recover(snapshot: &Path, journal: &Path) -> Result<XMapModel> {
        let state: ModelState = Snapshot::load(snapshot)?;
        let snapshot_epoch = state.epoch;
        let model = model_from_state(state)?;
        let (mut jrnl, records) = if journal.exists() {
            Journal::open::<RatingDelta>(journal)?
        } else {
            (Journal::create(journal, snapshot_epoch)?, Vec::new())
        };
        if jrnl.base_epoch() > snapshot_epoch {
            return Err(XMapError::Corrupt {
                offset: 0,
                detail: format!(
                    "journal base epoch {} is ahead of snapshot epoch {snapshot_epoch}",
                    jrnl.base_epoch()
                ),
            });
        }
        let mut current = snapshot_epoch;
        for record in &records {
            if record.epoch <= snapshot_epoch {
                continue; // compaction crash leftovers — already folded into the snapshot
            }
            let report = model.apply_delta(&record.value)?;
            if report.epoch != record.epoch {
                return Err(XMapError::Corrupt {
                    offset: record.offset,
                    detail: format!(
                        "journal record stamped epoch {} replayed as epoch {}",
                        record.epoch, report.epoch
                    ),
                });
            }
            current = report.epoch;
        }
        // A stale journal (every record folded into the snapshot) ends behind the
        // model; rebase it so the next write-ahead append is contiguous. This only
        // discards records the snapshot already covers.
        if jrnl.last_epoch() < current {
            jrnl.reset(current)?;
        }
        *model
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(ModelStore {
            snapshot_path: snapshot.to_path_buf(),
            journal: jrnl,
        });
        Ok(model)
    }

    /// Folds the journal into a fresh snapshot: rewrites the snapshot at the current
    /// epoch (atomic rename — the old snapshot stays valid until the new one is
    /// durable), then resets the journal to base at that epoch. Returns the epoch
    /// compacted to. Fails with [`XMapError::Data`] if no store is attached.
    pub fn compact(&self) -> Result<u64> {
        let _ingest = self
            .ingest_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut guard = self
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let store = guard.as_mut().ok_or_else(|| {
            XMapError::Data("no durable store attached; call persist() first".to_string())
        })?;
        let (epoch_no, epoch) = self.handle.load();
        let state = ModelState::from_epoch(epoch_no, &epoch);
        Snapshot::write(&store.snapshot_path, &state)?;
        store.journal.reset(epoch_no)?;
        Ok(epoch_no)
    }

    /// Size in bytes of the attached delta journal (header plus intact records), or
    /// `None` when the model has no store attached. Shrinks to the bare header on
    /// [`XMapModel::compact`].
    pub fn journal_len_bytes(&self) -> Option<u64> {
        self.store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(ModelStore::journal_len_bytes)
    }
}
