//! The end-to-end X-Map pipeline (Figure 4): baseliner → extender → generator →
//! recommender.
//!
//! Each component is a [`Stage`] executed by the `xmap-engine` [`Dataflow`] runner,
//! which owns partitioning, pool execution and per-stage accounting (see `DESIGN.md`).
//! [`XMapModel::fit`] chains the four stages over an aggregated two-domain rating
//! matrix and produces an [`XMapModel`] that can answer online queries: the AlterEgo of
//! a user, predicted ratings for target-domain items, and top-N recommendations.
//!
//! All four fit stages run partition-parallel with a bit-identity contract (see the
//! fit-stage parallelism section of `DESIGN.md`): the released model and the recorded
//! per-partition task costs are identical at any worker count. Per-stage wall-clock
//! durations and the `baseliner` / `extender` / `generator` / `recommender` task bags
//! are captured in [`PipelineStats`] — the scalability experiment (Figure 11) and the
//! `fit_throughput` bench replay those task costs on the cluster simulator.
//!
//! ## Serve-while-updating: epoch-published snapshots
//!
//! The released artifacts of a fit live in an immutable [`ModelEpoch`] behind an
//! atomically swappable [`EpochHandle`]. Readers ([`XMapModel::recommend`],
//! [`XMapModel::serve_profiles`], …) take a wait-free reference-counted snapshot and
//! answer entirely from it; the delta-fit subsystem (`crate::delta`) builds the next
//! epoch *aside* — sharing every unchanged piece with the previous epoch through its
//! per-piece `Arc`s — and publishes it with a single pointer swap. A reader therefore
//! always sees one self-consistent model version, never a half-updated one, and
//! ingestion never blocks serving. See the epoch-publication section of `DESIGN.md`.

use crate::config::{XMapConfig, XMapMode};
use crate::delta::IngestAccumulators;
use crate::generator::{AlterEgo, AlterEgoGenerator, ReplacementTable};
use crate::recommend::{
    ItemBasedRecommender, PrivateItemBasedRecommender, PrivateUserBasedRecommender,
    ProfileRecommender, ScratchPool, UserBasedRecommender,
};
use crate::serve::{RecommendStage, ServeBatch, RECOMMEND_STAGE_NAME};
use crate::xsim::XSimTable;
use crate::{Result, XMapError};
use std::sync::{Arc, Mutex};
use xmap_cf::knn::{ItemNeighbor, Profile};
use xmap_cf::similarity::item_similarity_stats;
use xmap_cf::{DomainId, ItemId, ItemKnn, ItemKnnConfig, RatingMatrix, SimilarityStats, UserId};
use xmap_engine::sync::{AtomicU64, Ordering};
use xmap_engine::{Dataflow, EpochHandle, Stage, StageContext, StageReport};
use xmap_eval::EVAL_STAGE_NAME;
use xmap_eval::{EvalBatch, EvalReport, EvalStage, EvalTarget, SweepParam, SweepSeries, SweepSpec};
use xmap_graph::{
    BridgeIndex, GraphConfig, Layer, LayerPartition, MetaPathConfig, SimilarityGraph,
};
use xmap_privacy::PrivacyBudget;

/// Summary statistics of a fitted pipeline.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// Heterogeneous item pairs connected by a *direct* baseline edge (the "standard"
    /// bar of Figure 1(b)).
    pub n_standard_hetero_pairs: usize,
    /// Heterogeneous item pairs connected after the X-Sim extension (the "meta-path-
    /// based" bar of Figure 1(b)).
    pub n_xsim_hetero_pairs: usize,
    /// Number of bridge items detected.
    pub n_bridge_items: usize,
    /// Item counts per `(domain, layer)` cell of the layer partition.
    pub layer_counts: Vec<(DomainId, Layer, usize)>,
    /// Wall-clock duration of each pipeline stage.
    pub stage_durations: Vec<StageReport>,
    /// Per-partition work estimates of the baseliner stage (pair-scoring work,
    /// `Σ (1 + deg(lo) + deg(hi))` per partition), recorded by the `Dataflow` runner.
    /// Data-derived, so identical for any worker count.
    pub baseliner_task_costs: Vec<f64>,
    /// Per-partition work estimates of the extension stage, recorded by the `Dataflow`
    /// runner (one task per dataflow partition; data-derived, so identical for any
    /// worker count). The scalability benchmark schedules these onto simulated machines.
    pub extension_task_costs: Vec<f64>,
    /// Per-partition work estimates of the generator stage (`Σ (1 + |candidates|)` per
    /// partition of replacement draws). Data-derived, so identical for any worker count.
    pub generator_task_costs: Vec<f64>,
    /// Per-partition work estimates of the recommender stage's item-kNN fit
    /// (similarity-scoring work per partition of items). Empty for the user-based
    /// modes, which precompute nothing at fit time.
    pub recommender_task_costs: Vec<f64>,
    /// Number of ratings in the target-domain training matrix.
    pub n_target_ratings: usize,
}

/// One immutable, self-consistent version of a fitted X-Map model.
///
/// Every released artifact of the fit — the aggregated matrix, the baseline graph and
/// its layer partition, the X-Sim table, the replacement table, the recommender and its
/// raw kNN pools, the privacy accountant — is held behind its own `Arc` so that a delta
/// fit can build the *next* epoch by sharing every piece it did not touch (structural
/// sharing: unchanged arenas are pointed at, not copied). Readers obtain an epoch via
/// [`XMapModel::snapshot`] and answer queries entirely from it; an epoch never mutates
/// after publication, so a snapshot is always self-consistent regardless of concurrent
/// ingestion.
pub struct ModelEpoch {
    pub(crate) config: XMapConfig,
    pub(crate) source_domain: DomainId,
    pub(crate) target_domain: DomainId,
    pub(crate) full: Arc<RatingMatrix>,
    /// The baseline similarity graph of the fit — retained (it is the arena the
    /// delta-fit surgically updates, and the artifact the equivalence gate compares).
    pub(crate) graph: Arc<SimilarityGraph>,
    /// The layer partition of `graph` — retained so a delta fit can detect rank
    /// changes by comparison instead of recomputing the old partition per update.
    pub(crate) partition: Arc<LayerPartition>,
    pub(crate) replacements: Arc<ReplacementTable>,
    pub(crate) xsim: Arc<XSimTable>,
    pub(crate) recommender: Arc<dyn ProfileRecommender + Send + Sync>,
    /// The raw item-kNN pools of the item-based modes (pre privacy annotation), kept so
    /// a delta fit can re-score only the affected items' pools. `None` for the
    /// user-based modes, which precompute nothing at fit time. This deliberately
    /// duplicates the recommender's internal copy (the private mode transforms its
    /// pools into annotated candidates and cannot hand the raw ones back): one
    /// `O(n_items · k)` buffer, small next to the graph's scored-pair cache.
    pub(crate) item_pools: Option<Arc<Vec<Vec<ItemNeighbor>>>>,
    /// The privacy accountant of this epoch (private modes only): PRS plus PNSA/PNCF.
    pub(crate) budget: Option<Arc<PrivacyBudget>>,
}

impl ModelEpoch {
    /// The configuration the model was fitted with.
    pub fn config(&self) -> &XMapConfig {
        &self.config
    }

    /// The source domain (where users are assumed to have history).
    pub fn source_domain(&self) -> DomainId {
        self.source_domain
    }

    /// The target domain (where recommendations are produced).
    pub fn target_domain(&self) -> DomainId {
        self.target_domain
    }

    /// The aggregated two-domain rating matrix this epoch was fitted (or delta-fitted) on.
    pub fn matrix(&self) -> &RatingMatrix {
        &self.full
    }

    /// The baseline similarity graph of this epoch.
    pub fn graph(&self) -> &SimilarityGraph {
        &self.graph
    }

    /// The heterogeneous X-Sim table of this epoch.
    pub fn xsim(&self) -> &XSimTable {
        &self.xsim
    }

    /// The item-to-item replacement table of this epoch.
    pub fn replacements(&self) -> &ReplacementTable {
        &self.replacements
    }

    /// The privacy accountant of this epoch: `Some` for the private modes, else `None`.
    pub fn privacy_budget(&self) -> Option<&PrivacyBudget> {
        self.budget.as_deref()
    }

    /// Display label of the active recommender variant.
    pub fn label(&self) -> &'static str {
        self.recommender.label()
    }

    /// The AlterEgo profile of a user in the target domain.
    pub fn alterego(&self, user: UserId) -> AlterEgo {
        self.replacements.map_profile_with(
            &self.full,
            user,
            self.source_domain,
            self.target_domain,
            self.config.transfer,
        )
    }

    /// Predicted rating of a target-domain item for a user, driven by their AlterEgo.
    pub fn predict(&self, user: UserId, item: ItemId) -> f64 {
        let alter = self.alterego(user);
        self.recommender.predict_for_profile(&alter.profile, item)
    }

    /// Top-N target-domain recommendations for a user, excluding items already present
    /// in their AlterEgo profile (mapped or genuinely rated).
    pub fn recommend(&self, user: UserId, n: usize) -> Vec<(ItemId, f64)> {
        let alter = self.alterego(user);
        self.recommender.recommend_for_profile(&alter.profile, n)
    }

    /// Predicted rating for an explicit (possibly artificial) target-domain profile.
    pub fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        self.recommender.predict_for_profile(profile, item)
    }

    /// Top-N recommendations for an explicit target-domain profile.
    pub fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        self.recommender.recommend_for_profile(profile, n)
    }
}

impl EvalTarget for ModelEpoch {
    fn predict(&self, user: UserId, item: ItemId) -> f64 {
        ModelEpoch::predict(self, user, item)
    }

    fn recommend(&self, user: UserId, n: usize) -> Vec<ItemId> {
        ModelEpoch::recommend(self, user, n)
            .into_iter()
            .map(|(item, _)| item)
            .collect()
    }
}

/// A fitted X-Map model: an epoch-published immutable snapshot ([`ModelEpoch`]) behind
/// an atomically swappable handle, plus the mutable ingest side (the dataflow runner,
/// the serving scratch pool, the stats and the ingest accumulators).
///
/// All query methods are `&self` and answer from a wait-free snapshot of the current
/// epoch; [`crate::delta`]'s `apply_delta` is *also* `&self` — it builds the next epoch
/// aside and publishes it with one pointer swap, so serving continues (on the previous
/// epoch) while an update is in flight. Concurrent `apply_delta` calls serialize on an
/// internal ingest lock.
pub struct XMapModel {
    pub(crate) config: XMapConfig,
    pub(crate) source_domain: DomainId,
    pub(crate) target_domain: DomainId,
    /// The epoch-publication handle: readers snapshot, the delta fit publishes.
    pub(crate) handle: EpochHandle<ModelEpoch>,
    /// Stats of the most recent fit or delta fit, refreshed under the ingest lock.
    pub(crate) stats: Mutex<PipelineStats>,
    /// The dataflow runner the model was fitted on, kept for batched serving so that
    /// serving task costs land in the same ledger as the fit stages.
    pub(crate) flow: Dataflow,
    /// Warm per-partition serving scratch, reused across batches (and across epochs —
    /// scratch invalidates itself on every load).
    pub(crate) scratch: ScratchPool,
    /// Serializes writers: `apply_delta` holds this for its whole build-aside phase.
    pub(crate) ingest_lock: Mutex<()>,
    /// Epoch stamp of the most recent serving batch (0 = nothing served yet).
    pub(crate) serve_epoch: AtomicU64,
    /// MRV-merged per-user/per-item accumulators of the most recent delta ingest.
    pub(crate) ingest_stats: Mutex<Option<IngestAccumulators>>,
    /// The attached durable store (snapshot path + open journal), `None` for a
    /// purely in-memory model. Attached by [`XMapModel::persist`] /
    /// [`XMapModel::open`] / [`XMapModel::recover`]; when attached, `apply_delta`
    /// write-ahead journals every delta before publishing its epoch.
    pub(crate) store: Mutex<Option<crate::persist::ModelStore>>,
}

impl XMapModel {
    /// The configuration the model was fitted with.
    pub fn config(&self) -> &XMapConfig {
        &self.config
    }

    /// The source domain (where users are assumed to have history).
    pub fn source_domain(&self) -> DomainId {
        self.source_domain
    }

    /// The target domain (where recommendations are produced).
    pub fn target_domain(&self) -> DomainId {
        self.target_domain
    }

    /// The current model epoch: 1 after a fresh fit, bumped by one on every published
    /// delta fit. Monotonically increasing for the lifetime of the model.
    pub fn epoch(&self) -> u64 {
        self.handle.epoch()
    }

    /// A wait-free snapshot of the current model version: `(epoch, Arc<ModelEpoch>)`.
    ///
    /// The returned epoch is immutable and self-consistent; it stays fully readable
    /// even if any number of delta fits publish after the snapshot is taken (the old
    /// epoch is retired only after its last snapshot is dropped).
    pub fn snapshot(&self) -> (u64, Arc<ModelEpoch>) {
        self.handle.load()
    }

    /// The current epoch's snapshot, when the caller does not need the epoch number.
    fn snap(&self) -> Arc<ModelEpoch> {
        self.handle.load().1
    }

    /// The item-to-item replacement table (the released artifact of the generator) of
    /// the current epoch.
    pub fn replacements(&self) -> Arc<ReplacementTable> {
        self.snap().replacements.clone()
    }

    /// The baseline similarity graph of the current epoch.
    pub fn graph(&self) -> Arc<SimilarityGraph> {
        self.snap().graph.clone()
    }

    /// The heterogeneous X-Sim table of the current epoch.
    pub fn xsim(&self) -> Arc<XSimTable> {
        self.snap().xsim.clone()
    }

    /// The aggregated two-domain rating matrix of the current epoch.
    pub fn matrix(&self) -> Arc<RatingMatrix> {
        self.snap().full.clone()
    }

    /// Pipeline statistics (stage timings, pair counts, layer sizes) of the most recent
    /// fit or delta fit, as an owned copy — the live stats refresh under the ingest
    /// lock when a delta publishes.
    pub fn stats(&self) -> PipelineStats {
        self.stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Display label of the active recommender variant.
    pub fn label(&self) -> &'static str {
        self.snap().label()
    }

    /// The AlterEgo profile of a user in the target domain (current epoch).
    pub fn alterego(&self, user: UserId) -> AlterEgo {
        self.snap().alterego(user)
    }

    /// Predicted rating of a target-domain item for a user, driven by their AlterEgo
    /// (current epoch).
    pub fn predict(&self, user: UserId, item: ItemId) -> f64 {
        self.snap().predict(user, item)
    }

    /// Top-N target-domain recommendations for a user, excluding items already present in
    /// their AlterEgo profile (mapped or genuinely rated). Answers from the current epoch.
    pub fn recommend(&self, user: UserId, n: usize) -> Vec<(ItemId, f64)> {
        self.snap().recommend(user, n)
    }

    /// Predicted rating for an explicit (possibly artificial) target-domain profile
    /// (current epoch).
    pub fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        self.snap().predict_for_profile(profile, item)
    }

    /// Serves a batch of explicit profiles through the batched [`RecommendStage`]:
    /// top-N per profile, in request order, with per-partition task costs recorded in
    /// the dataflow ledger (see [`XMapModel::serving_task_costs`]).
    ///
    /// The whole batch answers from **one** epoch snapshot taken at entry (stamped into
    /// [`XMapModel::served_epoch`]), and the per-partition scratch comes from the
    /// model's shared pool, so dense buffers persist across batches. Output is
    /// bit-identical to calling [`ProfileRecommender::recommend_for_profile`] once per
    /// profile against that snapshot, at any worker count. The *recommendations* are
    /// safe to compute from any number of threads sharing the model; the cost ledger,
    /// however, holds one slot per stage name, so concurrent batches overwrite each
    /// other's `recommend` entry (last writer wins — see
    /// [`XMapModel::serving_task_costs`]).
    pub fn serve_profiles(&self, profiles: &[Profile], n: usize) -> Vec<Vec<(ItemId, f64)>> {
        let (epoch, snap) = self.handle.load();
        let out = self.flow.run(
            &RecommendStage::new(snap.recommender.as_ref(), &self.scratch),
            ServeBatch::new(profiles, n),
        );
        // Observability stamp only; the snapshot itself came from the epoch
        // handle's acquire load, nothing synchronizes through this cell.
        // lint: ordering
        self.serve_epoch.store(epoch, Ordering::Relaxed);
        out
    }

    /// Top-N recommendations for a batch of users, one result per user in input order:
    /// AlterEgo generation followed by batched serving on the dataflow engine, all
    /// against one epoch snapshot.
    pub fn recommend_batch(&self, users: &[UserId], n: usize) -> Vec<Vec<(ItemId, f64)>> {
        let (epoch, snap) = self.handle.load();
        let profiles: Vec<Profile> = users.iter().map(|&u| snap.alterego(u).profile).collect();
        let out = self.flow.run(
            &RecommendStage::new(snap.recommender.as_ref(), &self.scratch),
            ServeBatch::new(&profiles, n),
        );
        // lint: ordering — same observability-only stamp as in serve_profiles.
        self.serve_epoch.store(epoch, Ordering::Relaxed);
        out
    }

    /// Per-partition task costs of the most recent serving batch (the `recommend`
    /// stage's ledger entry), for the cluster simulator — the serving analogue of
    /// [`PipelineStats::extension_task_costs`].
    ///
    /// "Most recent" is global to the model: the ledger keeps one slot per stage name,
    /// so when several threads serve batches concurrently this returns whichever batch
    /// wrote last. To attribute costs to a specific batch for replay, serve it from a
    /// single thread and read this immediately after [`XMapModel::serve_profiles`].
    pub fn serving_task_costs(&self) -> Option<Vec<f64>> {
        self.flow.stage_costs(RECOMMEND_STAGE_NAME)
    }

    /// The epoch the most recent serving batch answered from, or `None` if nothing has
    /// been served yet — the epoch stamp of the `recommend` cost ledger, with the same
    /// last-writer-wins caveat as [`XMapModel::serving_task_costs`].
    pub fn served_epoch(&self) -> Option<u64> {
        // lint: ordering — reads the observability stamp; last-writer-wins by design.
        match self.serve_epoch.load(Ordering::Relaxed) {
            0 => None,
            e => Some(e),
        }
    }

    /// The privacy accountant of the current epoch: `Some` for the private modes (with
    /// PRS, PNSA and PNCF ledger entries), `None` for the non-private ones.
    pub fn privacy_budget(&self) -> Option<Arc<PrivacyBudget>> {
        self.snap().budget.clone()
    }

    /// The MRV-merged ingest accumulators of the most recent delta fit (per-user rating
    /// sums/counts and per-item touch counts of the delta stream), or `None` before the
    /// first `apply_delta`. Deterministically merged in `(key, shard)` order — see the
    /// MRV section of `DESIGN.md`.
    pub fn ingest_accumulators(&self) -> Option<IngestAccumulators> {
        self.ingest_stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// The combined fit task bag: every per-partition cost the four fit stages recorded
    /// (baseliner, extender, generator, recommender — in pipeline order), for cluster
    /// replay of the whole model fit. Data-derived, so identical at any worker count.
    pub fn fit_task_costs(&self) -> Vec<f64> {
        let s = self
            .stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut bag = Vec::with_capacity(
            s.baseliner_task_costs.len()
                + s.extension_task_costs.len()
                + s.generator_task_costs.len()
                + s.recommender_task_costs.len(),
        );
        bag.extend_from_slice(&s.baseliner_task_costs);
        bag.extend_from_slice(&s.extension_task_costs);
        bag.extend_from_slice(&s.generator_task_costs);
        bag.extend_from_slice(&s.recommender_task_costs);
        bag
    }

    /// Evaluates the model over an [`EvalBatch`] on the dataflow engine: test triples
    /// and ranking cases are partitioned via the engine's ordered map, evaluated in
    /// parallel (against one epoch snapshot), and aggregated exactly like the serial
    /// reference ([`xmap_eval::evaluate_batch_serial`]) — the report is **bit-identical**
    /// to the serial protocol (and its `mae`/`rmse` to `evaluate_predictions`) at any
    /// worker count. Per-partition data-derived costs land in the `eval` ledger
    /// ([`XMapModel::eval_task_costs`]).
    pub fn evaluate_batch(&self, batch: EvalBatch) -> EvalReport {
        let snap = self.snap();
        self.flow.run(&EvalStage::new(snap.as_ref()), batch)
    }

    /// Per-partition task costs of the most recent evaluation batch (the `eval`
    /// stage's ledger entry), for the cluster simulator — the evaluation analogue of
    /// [`XMapModel::serving_task_costs`], with the same one-slot-per-stage-name
    /// concurrency caveat.
    pub fn eval_task_costs(&self) -> Option<Vec<f64>> {
        self.flow.stage_costs(EVAL_STAGE_NAME)
    }

    /// Runs a parameter sweep: for every value of `spec`, refits this model's
    /// configuration with the parameter applied (on the same training matrix and
    /// domains) and evaluates `batch` through [`XMapModel::evaluate_batch`]. Each
    /// sweep point is one independent fit with its own dataflow (and therefore its own
    /// timing/cost ledgers, dropped with the refit model) — this model's ledgers,
    /// including [`XMapModel::eval_task_costs`], are untouched by a sweep.
    ///
    /// [`SweepParam::Overlap`] cannot be swept here (it rebuilds the train/test split,
    /// which the model does not hold) and returns `XMapError::InvalidConfig`; the
    /// `xmap-bench` sweep runner executes overlap sweeps. Sweeping a privacy parameter
    /// on a non-private mode refits identical models and yields a flat series.
    pub fn sweep(&self, spec: &SweepSpec, batch: &EvalBatch) -> Result<SweepSeries> {
        let snap = self.snap();
        let mut series = SweepSeries::new(format!("{} / {}", self.label(), spec.param.label()));
        for &value in &spec.values {
            let mut config = self.config;
            match spec.param {
                SweepParam::K => config.k = value.round() as usize,
                SweepParam::Epsilon => config.privacy.epsilon = value,
                SweepParam::EpsilonPrime => config.privacy.epsilon_prime = value,
                SweepParam::TemporalAlpha => config.temporal_alpha = value,
                SweepParam::Overlap => {
                    return Err(XMapError::InvalidConfig(
                        "overlap sweeps rebuild the train/test split; run them through the \
                         xmap-bench sweep runner"
                            .to_string(),
                    ))
                }
            }
            let model = XMapModel::fit(&snap.full, self.source_domain, self.target_domain, config)?;
            let report = model.evaluate_batch(batch.clone());
            series.push(value, report.metric(spec.metric));
        }
        Ok(series)
    }
}

impl EvalTarget for XMapModel {
    fn predict(&self, user: UserId, item: ItemId) -> f64 {
        XMapModel::predict(self, user, item)
    }

    fn recommend(&self, user: UserId, n: usize) -> Vec<ItemId> {
        XMapModel::recommend(self, user, n)
            .into_iter()
            .map(|(item, _)| item)
            .collect()
    }
}

/// Stage 1 — baseliner: builds the baseline similarity graph over the aggregated
/// domains, partition-parallel.
///
/// The canonical co-rated pair keys ([`SimilarityGraph::co_rated_pair_keys`]) are
/// hash-partitioned by input position; every partition scores its pairs
/// (`item_similarity_stats`) as one pool task, and the per-key statistics come back in
/// key order, so the CSR arena assembled by [`SimilarityGraph::from_scored_pairs`] is
/// **bit-identical** to [`SimilarityGraph::build_serial`] at any worker count. One
/// data-derived cost per partition — `Σ (1 + deg(lo) + deg(hi))`, the profile-merge
/// work of scoring a pair — lands in the `baseliner` ledger.
pub struct BaselinerStage<'m> {
    matrix: &'m RatingMatrix,
    graph_config: GraphConfig,
}

impl<'m> BaselinerStage<'m> {
    /// Creates the stage over the aggregated rating matrix.
    pub fn new(matrix: &'m RatingMatrix, graph_config: GraphConfig) -> Self {
        BaselinerStage {
            matrix,
            graph_config,
        }
    }
}

impl Stage<()> for BaselinerStage<'_> {
    type Out = SimilarityGraph;

    fn name(&self) -> &'static str {
        "baseliner"
    }

    fn run(&self, _input: (), cx: &mut StageContext<'_>) -> SimilarityGraph {
        let keys = SimilarityGraph::co_rated_pair_keys(self.matrix);
        // Map over key *positions* (partitioned identically to the keys themselves,
        // since both hash the input position) so the key vector — the largest transient
        // buffer of the fit — is borrowed, not duplicated.
        let positions: Vec<usize> = (0..keys.len()).collect();
        let stats: Vec<SimilarityStats> = cx.map_items_ordered(positions, |_ix, part| {
            let outs: Vec<SimilarityStats> = part
                .iter()
                .map(|&(_, key_ix)| {
                    let (lo, hi) = SimilarityGraph::pair_of_key(keys[key_ix]);
                    item_similarity_stats(self.matrix, lo, hi, self.graph_config.metric)
                })
                .collect();
            let cost: f64 = part
                .iter()
                .map(|&(_, key_ix)| {
                    let (lo, hi) = SimilarityGraph::pair_of_key(keys[key_ix]);
                    1.0 + (self.matrix.item_degree(lo) + self.matrix.item_degree(hi)) as f64
                })
                .sum();
            (outs, cost)
        });
        SimilarityGraph::from_scored_pairs(self.matrix, self.graph_config, &keys, stats)
    }
}

/// Stage 2 — extender: bridge detection, layer partition and the partition-batched
/// cross-domain X-Sim table. This is the stage whose per-partition task costs drive the
/// Figure 11 scalability simulation.
struct ExtenderStage {
    source: DomainId,
    metapath: MetaPathConfig,
}

impl<'g> Stage<&'g SimilarityGraph> for ExtenderStage {
    type Out = (BridgeIndex, LayerPartition, XSimTable);

    fn name(&self) -> &'static str {
        "extender"
    }

    fn run(
        &self,
        graph: &'g SimilarityGraph,
        cx: &mut StageContext<'_>,
    ) -> (BridgeIndex, LayerPartition, XSimTable) {
        let bridges = BridgeIndex::from_graph(graph);
        let partition = LayerPartition::compute(graph, &bridges);
        let xsim = XSimTable::compute_batched(graph, &partition, self.source, self.metapath, cx);
        (bridges, partition, xsim)
    }
}

/// Stage 3 — generator: item replacements (PRS for the private modes),
/// partition-parallel.
///
/// Replacement construction is partitioned by item
/// ([`AlterEgoGenerator::compute_replacements_batched`]): once the pipeline has debited
/// ε, every item's PRS draw is independent, and the private draws derive their RNG
/// stream from `(seed, item)` alone — so the assembled table is bit-equal to the serial
/// generator at any worker count. Per-partition costs (`Σ (1 + |candidates|)`) land in
/// the `generator` ledger.
struct GeneratorStage {
    config: XMapConfig,
}

impl<'x> Stage<&'x XSimTable> for GeneratorStage {
    type Out = ReplacementTable;

    fn name(&self) -> &'static str {
        "generator"
    }

    fn run(&self, xsim: &'x XSimTable, cx: &mut StageContext<'_>) -> ReplacementTable {
        AlterEgoGenerator::compute_replacements_batched(xsim, &self.config, cx)
    }
}

/// Stage 4 — recommender: fits the target-domain CF model consuming AlterEgos,
/// partition-parallel for the item-based modes. The private modes debit ε′
/// (PNSA + PNCF) from the pipeline's privacy budget here.
///
/// The item-based kNN fit — the expensive half — is partitioned by item: candidate
/// sets ([`ItemKnn::candidate_sets`]) are hash-partitioned by item id (their input
/// position), every partition scores its items' candidates and selects their top-k
/// as one pool task, and the pools come back in item order before the recommender
/// wraps them — bit-identical to the serial `ItemKnn::fit` at any worker count.
/// Per-partition costs (`Σ over items (1 + Σ over candidates (deg(i) + deg(j)))`,
/// the profile-merge work of the similarity scoring) land in the `recommender`
/// ledger. The user-based modes precompute nothing at fit time, so they record no
/// recommender task bag.
struct RecommenderStage<'b> {
    config: XMapConfig,
    budget: Option<&'b Mutex<PrivacyBudget>>,
}

/// The partition-parallel item-kNN pool fit shared by the item-based modes: one
/// ordered map over the per-item candidate sets, recording the similarity-scoring
/// work as the partition cost.
fn fit_item_pools(
    matrix: &RatingMatrix,
    pool_k: usize,
    temporal_alpha: f64,
    cx: &mut StageContext<'_>,
) -> Vec<Vec<ItemNeighbor>> {
    let knn_config = ItemKnnConfig {
        k: pool_k,
        temporal_alpha,
        ..Default::default()
    };
    let sets = ItemKnn::candidate_sets(matrix);
    cx.map_items_ordered(sets, |_ix, part| {
        let outs: Vec<Vec<ItemNeighbor>> = part
            .iter()
            .map(|&(item_ix, ref cands)| {
                ItemKnn::neighbors_from_candidates(
                    matrix,
                    ItemId(item_ix as u32),
                    cands,
                    &knn_config,
                )
            })
            .collect();
        let cost: f64 = part
            .iter()
            .map(|&(item_ix, ref cands)| {
                let deg_i = matrix.item_degree(ItemId(item_ix as u32)) as f64;
                1.0 + cands
                    .iter()
                    .map(|&j| deg_i + matrix.item_degree(j) as f64)
                    .sum::<f64>()
            })
            .sum();
        (outs, cost)
    })
}

/// What the recommender stage hands back: the fitted recommender plus, for the
/// item-based modes, the raw kNN pools (pre privacy annotation) the model retains for
/// delta fits.
type FittedRecommender = (
    Box<dyn ProfileRecommender + Send + Sync>,
    Option<Vec<Vec<ItemNeighbor>>>,
);

/// Wraps freshly fitted (or delta-spliced) item pools into the mode's recommender —
/// the single place the pool → recommender construction lives, shared by the fit and
/// delta stages. The ε′ debit for the private mode must already have happened.
pub(crate) fn recommender_from_pools(
    config: &XMapConfig,
    target_matrix: RatingMatrix,
    pools: Vec<Vec<ItemNeighbor>>,
) -> Result<FittedRecommender> {
    let recommender: Box<dyn ProfileRecommender + Send + Sync> = match config.mode {
        XMapMode::NxMapItemBased => Box::new(ItemBasedRecommender::from_pools(
            target_matrix,
            config.k,
            config.temporal_alpha,
            pools.clone(),
        )?),
        XMapMode::XMapItemBased => Box::new(PrivateItemBasedRecommender::from_pools(
            target_matrix,
            config.k,
            config.privacy.epsilon_prime,
            config.privacy.rho,
            config.temporal_alpha,
            config.seed,
            pools.clone(),
        )?),
        _ => unreachable!("only the item-based modes carry kNN pools"),
    };
    Ok((recommender, Some(pools)))
}

impl Stage<RatingMatrix> for RecommenderStage<'_> {
    type Out = Result<FittedRecommender>;

    fn name(&self) -> &'static str {
        "recommender"
    }

    fn run(
        &self,
        target_matrix: RatingMatrix,
        cx: &mut StageContext<'_>,
    ) -> Result<FittedRecommender> {
        let config = &self.config;
        let mut budget_guard = self
            .budget
            .map(|m| m.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
        match config.mode {
            XMapMode::NxMapItemBased => {
                let pools = fit_item_pools(&target_matrix, config.k, config.temporal_alpha, cx);
                recommender_from_pools(config, target_matrix, pools)
            }
            XMapMode::NxMapUserBased => Ok((
                Box::new(UserBasedRecommender::fit(target_matrix, config.k)?),
                None,
            )),
            XMapMode::XMapItemBased => {
                // Debit before the pool fit, mirroring the serial
                // `PrivateItemBasedRecommender::fit`: an exhausted budget fails the
                // stage without paying for the kNN fit.
                PrivateItemBasedRecommender::debit_budget(
                    config.privacy.epsilon_prime,
                    budget_guard
                        .as_deref_mut() // lint: panic — reviewed invariant
                        .expect("private modes carry a privacy budget"),
                )?;
                let pools = fit_item_pools(
                    &target_matrix,
                    PrivateItemBasedRecommender::pool_size(config.k),
                    config.temporal_alpha,
                    cx,
                );
                recommender_from_pools(config, target_matrix, pools)
            }
            XMapMode::XMapUserBased => Ok((
                Box::new(PrivateUserBasedRecommender::fit(
                    target_matrix,
                    config.k,
                    config.privacy.epsilon_prime,
                    config.privacy.rho,
                    config.seed,
                    budget_guard
                        .as_deref_mut() // lint: panic — reviewed invariant
                        .expect("private modes carry a privacy budget"),
                )?),
                None,
            )),
        }
    }
}

impl XMapModel {
    /// Fits an X-Map model on an aggregated rating matrix containing both domains —
    /// the entry point of the model lifecycle (`fit` → [`XMapModel::persist`] →
    /// [`XMapModel::apply_delta`] → [`XMapModel::open`] / [`XMapModel::recover`]).
    ///
    /// `source` is the domain users are assumed to have rated in; `target` is the domain
    /// recommendations are produced for. The two must be distinct and both present in the
    /// matrix. The fitted model starts at epoch 1, with no store attached.
    pub fn fit(
        matrix: &RatingMatrix,
        source: DomainId,
        target: DomainId,
        config: XMapConfig,
    ) -> Result<XMapModel> {
        config.validate().map_err(XMapError::InvalidConfig)?;
        if source == target {
            return Err(XMapError::InvalidConfig(
                "source and target domains must differ".to_string(),
            ));
        }
        let domains = matrix.domains();
        if !domains.contains(&source) || !domains.contains(&target) {
            return Err(XMapError::Data(format!(
                "matrix does not contain both requested domains (has {domains:?})"
            )));
        }

        let flow = Dataflow::new(config.workers, config.partitions);

        // The privacy accountant of this fit: the paper's total guarantee is
        // ε (PRS, AlterEgo generation) + ε′ (PNSA + PNCF, recommendation) by sequential
        // composition, so the budget is sized to exactly that and every mechanism must
        // debit it before releasing anything.
        let budget = config
            .mode
            .is_private()
            .then(|| Mutex::new(PrivacyBudget::new(config.privacy.total())));

        let graph = flow.run(
            &BaselinerStage::new(
                matrix,
                GraphConfig {
                    metric: config.metric,
                    top_k: Some(config.k),
                    min_similarity: 0.0,
                },
            ),
            (),
        );

        let (bridges, partition, xsim) = flow.run(
            &ExtenderStage {
                source,
                metapath: config.metapath,
            },
            &graph,
        );

        // The generator's PRS mechanism (one exponential-mechanism draw per item, reused
        // for every user) spends the generation-phase ε; debit it before the draws run.
        if let Some(b) = &budget {
            b.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .spend("PRS", config.privacy.epsilon)
                .map_err(XMapError::Privacy)?;
        }
        let replacements = flow.run(&GeneratorStage { config }, &xsim);

        let target_matrix = matrix
            .filter(|r| matrix.item_domain(r.item) == target)
            .map_err(|_| XMapError::Data("target domain has no ratings".to_string()))?;
        let n_target_ratings = target_matrix.n_ratings();
        if n_target_ratings == 0 {
            return Err(XMapError::Data("target domain has no ratings".to_string()));
        }
        let (recommender, item_pools) = flow.run(
            &RecommenderStage {
                config,
                budget: budget.as_ref(),
            },
            target_matrix,
        )?;

        // The per-stage task bags of the fit, recorded by the Dataflow runner — the
        // scalability simulation replays exactly these tasks. The recommender ledger is
        // empty for the user-based modes (no fit-time precomputation to partition).
        let stats = PipelineStats {
            n_standard_hetero_pairs: graph.n_heterogeneous_pairs(),
            n_xsim_hetero_pairs: xsim.n_heterogeneous_pairs(),
            n_bridge_items: bridges.n_bridges(),
            layer_counts: partition.cell_counts(),
            stage_durations: flow.reports(),
            baseliner_task_costs: flow.stage_costs("baseliner").unwrap_or_default(),
            extension_task_costs: flow.stage_costs("extender").unwrap_or_default(),
            generator_task_costs: flow.stage_costs("generator").unwrap_or_default(),
            recommender_task_costs: flow.stage_costs("recommender").unwrap_or_default(),
            n_target_ratings,
        };

        let epoch = ModelEpoch {
            config,
            source_domain: source,
            target_domain: target,
            full: Arc::new(matrix.clone()),
            graph: Arc::new(graph),
            partition: Arc::new(partition),
            replacements: Arc::new(replacements),
            xsim: Arc::new(xsim),
            recommender: Arc::from(recommender),
            item_pools: item_pools.map(Arc::new),
            budget: budget.map(|m| {
                Arc::new(
                    m.into_inner()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                )
            }),
        };

        Ok(XMapModel {
            config,
            source_domain: source,
            target_domain: target,
            handle: EpochHandle::new(Arc::new(epoch), 1),
            stats: Mutex::new(stats),
            flow,
            scratch: ScratchPool::new(),
            ingest_lock: Mutex::new(()),
            serve_epoch: AtomicU64::new(0),
            ingest_stats: Mutex::new(None),
            store: Mutex::new(None),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrivacyConfig;
    use xmap_dataset::synthetic::{CrossDomainConfig, CrossDomainDataset};
    use xmap_dataset::toy::{items, users, ToyScenario};

    fn toy_config(mode: XMapMode) -> XMapConfig {
        XMapConfig {
            mode,
            k: 2,
            privacy: PrivacyConfig {
                epsilon: 0.5,
                epsilon_prime: 0.8,
                rho: 0.05,
            },
            ..Default::default()
        }
    }

    #[test]
    fn toy_pipeline_recommends_books_to_alice() {
        let toy = ToyScenario::build();
        let model = XMapModel::fit(
            &toy.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            toy_config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_eq!(model.label(), "NX-MAP-IB");
        assert_eq!(model.source_domain(), DomainId::SOURCE);
        assert_eq!(model.target_domain(), DomainId::TARGET);

        let alter = model.alterego(users::ALICE);
        assert!(!alter.is_empty(), "Alice must receive an AlterEgo");
        let recs = model.recommend(users::ALICE, 2);
        assert!(!recs.is_empty(), "Alice must receive book recommendations");
        for (item, score) in &recs {
            assert_eq!(toy.matrix.item_domain(*item), DomainId::TARGET);
            assert!((1.0..=5.0).contains(score));
        }
        let pred = model.predict(users::ALICE, items::THE_FOREVER_WAR);
        assert!((1.0..=5.0).contains(&pred));
    }

    #[test]
    fn fresh_fit_starts_at_epoch_one_and_snapshots_are_self_consistent() {
        let toy = ToyScenario::build();
        let model = XMapModel::fit(
            &toy.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            toy_config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert_eq!(model.epoch(), 1, "fresh fits publish epoch 1");
        assert_eq!(model.served_epoch(), None, "nothing served yet");
        let (epoch, snap) = model.snapshot();
        assert_eq!(epoch, 1);
        // The snapshot answers exactly like the model (both read epoch 1).
        let via_model = model.recommend(users::ALICE, 2);
        let via_snap = snap.recommend(users::ALICE, 2);
        assert_eq!(via_model, via_snap);
        assert_eq!(snap.label(), model.label());
        // Serving stamps the epoch it answered from.
        let _ = model.serve_profiles(&[model.alterego(users::ALICE).profile], 2);
        assert_eq!(model.served_epoch(), Some(1));
    }

    #[test]
    fn pipeline_stats_capture_the_four_stages_and_pair_counts() {
        let toy = ToyScenario::build();
        let model = XMapModel::fit(
            &toy.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            toy_config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let stats = model.stats();
        let stage_names: Vec<&str> = stats
            .stage_durations
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(
            stage_names,
            vec!["baseliner", "extender", "generator", "recommender"]
        );
        assert!(stats.n_xsim_hetero_pairs >= stats.n_standard_hetero_pairs);
        assert!(
            stats.n_bridge_items >= 2,
            "Inception and at least one book are bridges"
        );
        assert!(!stats.extension_task_costs.is_empty());
        assert!(
            !stats.baseliner_task_costs.is_empty(),
            "the baseliner must record its pair-scoring task bag"
        );
        assert!(
            !stats.generator_task_costs.is_empty(),
            "the generator must record its replacement-draw task bag"
        );
        assert!(
            !stats.recommender_task_costs.is_empty(),
            "the item-based recommender must record its kNN-fit task bag"
        );
        let combined = model.fit_task_costs();
        assert_eq!(
            combined.len(),
            stats.baseliner_task_costs.len()
                + stats.extension_task_costs.len()
                + stats.generator_task_costs.len()
                + stats.recommender_task_costs.len()
        );
        assert!(combined.iter().all(|&c| c.is_finite() && c >= 0.0));
        assert!(stats.n_target_ratings > 0);
        let total_layer_items: usize = stats.layer_counts.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total_layer_items, toy.matrix.n_items());
    }

    #[test]
    fn user_based_fits_record_no_recommender_task_bag() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            XMapConfig {
                mode: XMapMode::NxMapUserBased,
                k: 8,
                ..Default::default()
            },
        )
        .unwrap();
        // user-based CF precomputes nothing at fit time — no task bag to replay
        assert!(model.stats().recommender_task_costs.is_empty());
        assert!(!model.stats().baseliner_task_costs.is_empty());
        assert!(!model.stats().generator_task_costs.is_empty());
    }

    #[test]
    fn staged_baseliner_is_bit_identical_to_build_serial_at_1_2_and_8_workers() {
        use xmap_engine::Dataflow;
        use xmap_graph::SimilarityGraph;
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let graph_config = GraphConfig {
            top_k: Some(8),
            ..Default::default()
        };
        let reference = SimilarityGraph::build_serial(&ds.matrix, graph_config);
        let mut reference_costs: Option<Vec<f64>> = None;
        for workers in [1usize, 2, 8] {
            let flow = Dataflow::new(workers, 16);
            let staged = flow.run(&BaselinerStage::new(&ds.matrix, graph_config), ());
            assert_eq!(
                staged, reference,
                "{workers} workers: staged baseliner diverged from build_serial"
            );
            let costs = flow
                .stage_costs("baseliner")
                .expect("baseliner records task costs");
            assert_eq!(costs.len(), 16, "one task cost per partition");
            match &reference_costs {
                None => reference_costs = Some(costs),
                Some(expected) => {
                    assert_eq!(&costs, expected, "{workers} workers changed costs")
                }
            }
        }
    }

    #[test]
    fn all_four_modes_fit_and_predict_on_a_synthetic_dataset() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        for mode in [
            XMapMode::NxMapItemBased,
            XMapMode::NxMapUserBased,
            XMapMode::XMapItemBased,
            XMapMode::XMapUserBased,
        ] {
            let model = XMapModel::fit(
                &ds.matrix,
                DomainId::SOURCE,
                DomainId::TARGET,
                XMapConfig {
                    mode,
                    k: 10,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(model.label(), mode.label());
            let user = ds.overlap_users[0];
            let item = ds.target_items()[0];
            let pred = model.predict(user, item);
            assert!(
                (1.0..=5.0).contains(&pred),
                "{mode:?} produced out-of-scale prediction {pred}"
            );
            let recs = model.recommend(user, 5);
            for (i, _) in recs {
                assert_eq!(ds.matrix.item_domain(i), DomainId::TARGET);
            }
        }
    }

    #[test]
    fn reverse_direction_works_too() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::TARGET,
            DomainId::SOURCE,
            XMapConfig {
                k: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(model.source_domain(), DomainId::TARGET);
        let user = ds.overlap_users[0];
        let item = ds.source_items()[0];
        assert!((1.0..=5.0).contains(&model.predict(user, item)));
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let toy = ToyScenario::build();
        // same source and target
        assert!(matches!(
            XMapModel::fit(
                &toy.matrix,
                DomainId::SOURCE,
                DomainId::SOURCE,
                XMapConfig::default()
            ),
            Err(XMapError::InvalidConfig(_))
        ));
        // missing domain
        assert!(matches!(
            XMapModel::fit(
                &toy.matrix,
                DomainId::SOURCE,
                DomainId(7),
                XMapConfig::default()
            ),
            Err(XMapError::Data(_))
        ));
        // invalid configuration
        let bad = XMapConfig {
            k: 0,
            ..Default::default()
        };
        assert!(matches!(
            XMapModel::fit(&toy.matrix, DomainId::SOURCE, DomainId::TARGET, bad),
            Err(XMapError::InvalidConfig(_))
        ));
    }

    #[test]
    fn cold_start_user_gets_personalised_predictions() {
        // A user with only source ratings should receive different predictions for
        // different target items (i.e. not a constant fallback), because their AlterEgo
        // carries their tastes across.
        let ds = CrossDomainDataset::generate(CrossDomainConfig::default());
        let model = XMapModel::fit(
            &ds.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            XMapConfig {
                k: 20,
                ..Default::default()
            },
        )
        .unwrap();
        let user = ds.source_only_users[0];
        let alter = model.alterego(user);
        assert!(
            !alter.is_empty(),
            "source-only user should still get an AlterEgo"
        );
        let preds: Vec<f64> = ds
            .target_items()
            .iter()
            .take(20)
            .map(|&i| model.predict(user, i))
            .collect();
        let min = preds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = preds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 1e-6,
            "predictions should differ across items (got constant {min})"
        );
    }

    #[test]
    fn batched_serving_is_bit_identical_to_per_user_calls_at_1_2_and_8_workers() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let users: Vec<_> = ds.overlap_users.iter().copied().take(12).collect();
        // The fixed quadratic path (X-Map-ub) is the interesting mode; serve it at
        // several worker counts and hold every output against the per-user reference.
        let mut reference: Option<Vec<Vec<(ItemId, f64)>>> = None;
        let mut reference_costs: Option<Vec<f64>> = None;
        for workers in [1usize, 2, 8] {
            let model = XMapModel::fit(
                &ds.matrix,
                DomainId::SOURCE,
                DomainId::TARGET,
                XMapConfig {
                    mode: XMapMode::XMapUserBased,
                    k: 8,
                    workers,
                    ..Default::default()
                },
            )
            .unwrap();
            let per_user: Vec<Vec<(ItemId, f64)>> =
                users.iter().map(|&u| model.recommend(u, 5)).collect();
            let batched = model.recommend_batch(&users, 5);
            assert_eq!(batched, per_user, "{workers} workers: batch diverged");
            let costs = model
                .serving_task_costs()
                .expect("serving records task costs");
            match (&reference, &reference_costs) {
                (None, _) => {
                    reference = Some(batched);
                    reference_costs = Some(costs);
                }
                (Some(expected), Some(expected_costs)) => {
                    assert_eq!(&batched, expected, "{workers} workers changed outputs");
                    assert_eq!(&costs, expected_costs, "{workers} workers changed costs");
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn private_fit_records_the_full_privacy_ledger() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let cfg = XMapConfig {
            mode: XMapMode::XMapItemBased,
            k: 8,
            ..Default::default()
        };
        let model = XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, cfg).unwrap();
        let budget = model
            .privacy_budget()
            .expect("private modes carry a budget");
        let mechanisms: Vec<&str> = budget
            .ledger()
            .iter()
            .map(|e| e.mechanism.as_str())
            .collect();
        assert_eq!(mechanisms, vec!["PRS", "PNSA", "PNCF"]);
        assert!(
            (budget.spent() - cfg.privacy.total()).abs() < 1e-12,
            "the fit must spend exactly ε + ε′"
        );
        assert!(budget.remaining() < 1e-12);
    }

    #[test]
    fn non_private_fit_has_no_privacy_budget_and_serving_costs_appear_on_demand() {
        let toy = ToyScenario::build();
        let model = XMapModel::fit(
            &toy.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            toy_config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        assert!(model.privacy_budget().is_none());
        assert!(
            model.serving_task_costs().is_none(),
            "no serving ran yet, so no recommend-stage ledger entry"
        );
        let out = model.serve_profiles(&[model.alterego(users::ALICE).profile], 2);
        assert_eq!(out.len(), 1);
        assert!(!out[0].is_empty());
        assert!(model.serving_task_costs().is_some());
    }

    fn eval_batch_for(ds: &CrossDomainDataset) -> EvalBatch {
        // Hide the overlap users' later target ratings as a hand-rolled test set; the
        // real split machinery lives in xmap-dataset, but pipeline tests only need a
        // deterministic batch over existing users.
        let test: Vec<xmap_cf::Rating> = ds
            .overlap_users
            .iter()
            .take(8)
            .flat_map(|&u| {
                ds.matrix
                    .user_profile(u)
                    .iter()
                    .filter(|e| ds.matrix.item_domain(e.item) == DomainId::TARGET)
                    .take(3)
                    .map(move |e| xmap_cf::Rating {
                        user: u,
                        item: e.item,
                        value: e.value,
                        timestep: e.timestep,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let ranking = xmap_eval::ranking_cases_from_test(&test, 4.0);
        EvalBatch::predictions(test).with_ranking(ranking, 5, ds.target_items().len())
    }

    #[test]
    fn evaluate_batch_is_bit_identical_to_the_serial_reference_at_1_2_and_8_workers() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let batch = eval_batch_for(&ds);
        assert!(!batch.test.is_empty() && !batch.ranking.is_empty());
        let mut reference: Option<EvalReport> = None;
        let mut reference_costs: Option<Vec<f64>> = None;
        for workers in [1usize, 2, 8] {
            let model = XMapModel::fit(
                &ds.matrix,
                DomainId::SOURCE,
                DomainId::TARGET,
                XMapConfig {
                    k: 8,
                    workers,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(model.eval_task_costs().is_none(), "no evaluation ran yet");
            let report = model.evaluate_batch(batch.clone());
            // the engine-parallel report equals the fully serial protocol, bit for bit
            let serial = xmap_eval::evaluate_batch_serial(&model, &batch);
            assert!(
                report.bits_eq(&serial),
                "{workers} workers diverged from serial"
            );
            let loop_outcome =
                xmap_eval::evaluate_predictions(&batch.test, |u, i| model.predict(u, i));
            assert_eq!(report.mae.to_bits(), loop_outcome.mae.to_bits());
            assert_eq!(report.rmse.to_bits(), loop_outcome.rmse.to_bits());
            assert_eq!(report.n_predictions, loop_outcome.n);
            let costs = model.eval_task_costs().expect("evaluation records costs");
            match (&reference, &reference_costs) {
                (None, _) => {
                    reference = Some(report);
                    reference_costs = Some(costs);
                }
                (Some(expected), Some(expected_costs)) => {
                    assert!(
                        report.bits_eq(expected),
                        "{workers} workers changed the report"
                    );
                    assert_eq!(&costs, expected_costs, "{workers} workers changed costs");
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn sweep_refits_per_point_and_matches_independent_evaluations() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let batch = eval_batch_for(&ds);
        let base = XMapConfig {
            k: 8,
            ..Default::default()
        };
        let model = XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, base).unwrap();
        let spec = xmap_eval::SweepSpec::new(xmap_eval::SweepParam::K, vec![2.0, 6.0]);
        let series = model.sweep(&spec, &batch).unwrap();
        assert_eq!(series.label, "NX-MAP-IB / k");
        assert_eq!(series.points.len(), 2);
        for point in &series.points {
            let config = XMapConfig {
                k: point.x as usize,
                ..base
            };
            let refit =
                XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, config).unwrap();
            let expected = refit.evaluate_batch(batch.clone());
            assert_eq!(
                point.y.to_bits(),
                expected.mae.to_bits(),
                "sweep point k={} diverged from an independent fit",
                point.x
            );
        }
        // invalid point values surface as configuration errors, not panics
        let bad = xmap_eval::SweepSpec::new(xmap_eval::SweepParam::K, vec![0.0]);
        assert!(matches!(
            model.sweep(&bad, &batch),
            Err(XMapError::InvalidConfig(_))
        ));
    }

    #[test]
    fn overlap_sweeps_are_rejected_at_the_model_level() {
        let toy = ToyScenario::build();
        let model = XMapModel::fit(
            &toy.matrix,
            DomainId::SOURCE,
            DomainId::TARGET,
            toy_config(XMapMode::NxMapItemBased),
        )
        .unwrap();
        let spec = xmap_eval::SweepSpec::new(xmap_eval::SweepParam::Overlap, vec![0.5]);
        let err = model.sweep(&spec, &EvalBatch::default()).unwrap_err();
        assert!(matches!(err, XMapError::InvalidConfig(_)));
        assert!(err.to_string().contains("sweep runner"));
    }

    #[test]
    fn private_model_is_reproducible_for_a_fixed_seed() {
        let ds = CrossDomainDataset::generate(CrossDomainConfig::small());
        let cfg = XMapConfig {
            mode: XMapMode::XMapItemBased,
            k: 8,
            seed: 123,
            ..Default::default()
        };
        let a = XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, cfg).unwrap();
        let b = XMapModel::fit(&ds.matrix, DomainId::SOURCE, DomainId::TARGET, cfg).unwrap();
        let user = ds.overlap_users[0];
        for &item in ds.target_items().iter().take(10) {
            assert_eq!(a.predict(user, item), b.predict(user, item));
        }
    }
}
