//! Private neighbour selection (PNSA, Algorithm 4) and private prediction noise (PNCF,
//! Algorithm 5).
//!
//! Both mechanisms operate on *scored candidates*: for a target item `t_i`, every
//! candidate neighbour `t_j` carries its similarity `Sim(t_i, t_j)` and a data-dependent
//! *similarity-based sensitivity* `SS(t_i, t_j)` (Theorem 2). PNSA selects `k` neighbours
//! without replacement with probability proportional to
//! `exp(ε′ · Ŝim(t_i, t_j) / (2k · 2 SS(t_i, t_j)))`, where `Ŝim` is the truncated
//! similarity of Theorems 3–4, consuming ε′/2. PNCF then perturbs each selected
//! similarity with `Lap(SS / (ε′/2))` noise before it enters the prediction formula,
//! consuming the other ε′/2 — together ε′-differential privacy by sequential composition.

use rand::Rng;
use serde::{Deserialize, Serialize};
use xmap_cf::{ItemId, RatingMatrix};
use xmap_privacy::sensitivity::truncation_width;
use xmap_privacy::{laplace_noise, similarity_sensitivity, truncated_similarity};

/// A candidate neighbour of some target item.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoredCandidate {
    /// The candidate item.
    pub item: ItemId,
    /// Its (non-private) similarity with the item being predicted.
    pub similarity: f64,
    /// The similarity-based sensitivity `SS` of the pair (Theorem 2).
    pub sensitivity: f64,
}

/// Computes the similarity-based sensitivity `SS(i, j)` for an item pair directly from
/// the rating matrix (mean-centred co-rating vectors and full adjusted-cosine norms).
pub fn pair_sensitivity(matrix: &RatingMatrix, i: ItemId, j: ItemId) -> f64 {
    let yi = matrix.item_profile(i);
    let yj = matrix.item_profile(j);
    let mut co_i = Vec::new();
    let mut co_j = Vec::new();
    let (mut a, mut b) = (0usize, 0usize);
    while a < yi.len() && b < yj.len() {
        match yi[a].user.cmp(&yj[b].user) {
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
            std::cmp::Ordering::Equal => {
                let avg = matrix.user_average(yi[a].user);
                co_i.push(yi[a].value - avg);
                co_j.push(yj[b].value - avg);
                a += 1;
                b += 1;
            }
        }
    }
    let norm = |profile: &[xmap_cf::matrix::ItemEntry]| {
        profile
            .iter()
            .map(|e| {
                let d = e.value - matrix.user_average(e.user);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    };
    similarity_sensitivity(&co_i, &co_j, norm(yi), norm(yj))
}

/// The PNSA mechanism: privately selects `k` neighbours from `candidates`.
///
/// * `epsilon_prime` is the full ε′ of the recommendation phase; PNSA uses its ε′/2 share
///   internally by allocating `ε′ / (2k)` per selected neighbour, matching Algorithm 4.
/// * `rho` is the failure probability of the truncated-similarity bound.
/// * `vector_len` is `|v|`, the maximal rating-vector length (number of candidates is a
///   faithful stand-in when the full vocabulary size is unknown).
///
/// Returns the selected candidates (with their *non-noisy* similarities; PNCF adds noise
/// at prediction time).
pub fn private_neighbor_selection<R: Rng + ?Sized>(
    rng: &mut R,
    candidates: &[ScoredCandidate],
    k: usize,
    epsilon_prime: f64,
    rho: f64,
    vector_len: usize,
) -> Vec<ScoredCandidate> {
    if candidates.is_empty() || k == 0 {
        return Vec::new();
    }
    if candidates.len() <= k {
        return candidates.to_vec();
    }

    // Sim_k(t_i): the k-th largest similarity among the candidates. NaN similarities
    // carry no ranking signal and would make the truncation bound (and with it every
    // exponent) undefined, so they are excluded from the threshold computation.
    let mut sims: Vec<f64> = candidates
        .iter()
        .map(|c| c.similarity)
        .filter(|s| !s.is_nan())
        .collect();
    sims.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let sim_k = match sims.get(k - 1).or_else(|| sims.last()) {
        Some(&s) => s,
        None => 0.0, // every similarity is NaN; the draw degrades to uniform below
    };
    let max_sensitivity = candidates
        .iter()
        .map(|c| c.sensitivity)
        .fold(0.0f64, f64::max)
        .max(1e-6);
    let w = truncation_width(
        sim_k,
        k,
        epsilon_prime,
        max_sensitivity,
        vector_len.max(k + 1),
        rho,
    );

    // Per-candidate exponents of the exponential mechanism, numerically stabilised by
    // subtracting the maximum exponent before exponentiation.
    let per_pick_epsilon = epsilon_prime / (2.0 * k as f64);
    let exponents: Vec<f64> = candidates
        .iter()
        .map(|c| {
            let truncated = truncated_similarity(c.similarity, sim_k, w);
            let e = per_pick_epsilon * truncated / (2.0 * c.sensitivity.max(1e-6));
            // NaN similarities are already mapped to the truncation floor above
            // (`f64::max` ignores NaN), so a NaN exponent should be unreachable; this
            // is defence in depth. An undefined score carries no usable signal, and
            // -inf gives the candidate weight 0 — only ever drawn through the uniform
            // fallback — instead of letting one NaN poison the summed total for all.
            if e.is_nan() {
                f64::NEG_INFINITY
            } else {
                e
            }
        })
        .collect();

    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    let mut selected = Vec::with_capacity(k);
    while selected.len() < k && !remaining.is_empty() {
        let max_e = remaining
            .iter()
            .map(|&i| exponents[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = remaining
            .iter()
            .map(|&i| (exponents[i] - max_e).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        // When every remaining exponent is -inf (all scores NaN-sanitised or -inf),
        // `max_e` is -inf and every weight becomes `(-inf - -inf).exp()` = NaN, so the
        // total is NaN and `gen_range` would panic. The exponential mechanism over a
        // constant score vector *is* the uniform distribution, and uniform is also the
        // only non-informative (hence privacy-safe) answer for undefined scores, so
        // degenerate weight vectors fall back to a uniform draw over the remainder.
        let picked_pos = if total.is_finite() && total > 0.0 {
            let mut u: f64 = rng.gen_range(0.0..total);
            let mut picked = remaining.len() - 1;
            for (pos, weight) in weights.iter().enumerate() {
                if u < *weight {
                    picked = pos;
                    break;
                }
                u -= weight;
            }
            picked
        } else {
            rng.gen_range(0..remaining.len())
        };
        let idx = remaining.remove(picked_pos);
        selected.push(candidates[idx]);
    }
    selected
}

/// The PNCF noise step: perturbs a similarity with Laplace noise calibrated to the pair's
/// similarity-based sensitivity and the ε′/2 budget of the prediction phase.
pub fn pncf_noisy_similarity<R: Rng + ?Sized>(
    rng: &mut R,
    similarity: f64,
    sensitivity: f64,
    epsilon_prime: f64,
) -> f64 {
    let scale = sensitivity.max(0.0) / (epsilon_prime / 2.0);
    similarity + laplace_noise(rng, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xmap_cf::RatingMatrixBuilder;

    fn candidates(n: usize) -> Vec<ScoredCandidate> {
        (0..n)
            .map(|i| ScoredCandidate {
                item: ItemId(i as u32),
                similarity: 1.0 - i as f64 * 0.1,
                sensitivity: 0.05,
            })
            .collect()
    }

    #[test]
    fn selection_returns_k_distinct_candidates() {
        let cands = candidates(10);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = private_neighbor_selection(&mut rng, &cands, 4, 0.8, 0.05, 100);
        assert_eq!(picked.len(), 4);
        let mut items: Vec<ItemId> = picked.iter().map(|c| c.item).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 4);
        for p in &picked {
            assert!(
                cands.contains(p),
                "selected candidate must come from the input"
            );
        }
    }

    #[test]
    fn small_candidate_sets_are_returned_whole() {
        let cands = candidates(3);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = private_neighbor_selection(&mut rng, &cands, 5, 0.8, 0.05, 100);
        assert_eq!(picked.len(), 3);
        assert!(private_neighbor_selection(&mut rng, &[], 5, 0.8, 0.05, 100).is_empty());
        assert!(private_neighbor_selection(&mut rng, &cands, 0, 0.8, 0.05, 100).is_empty());
    }

    #[test]
    fn high_epsilon_prefers_high_similarity_candidates() {
        let cands = candidates(20);
        let mut rng = StdRng::seed_from_u64(7);
        let mut top_hits = 0usize;
        let trials = 300;
        for _ in 0..trials {
            let picked = private_neighbor_selection(&mut rng, &cands, 3, 50.0, 0.05, 100);
            // with a huge ε′ the three most similar candidates should almost always win
            if picked.iter().all(|c| c.similarity >= 0.75) {
                top_hits += 1;
            }
        }
        assert!(
            top_hits as f64 / trials as f64 > 0.8,
            "high ε′ should concentrate on the best candidates ({top_hits}/{trials})"
        );
    }

    #[test]
    fn low_epsilon_spreads_selection() {
        let cands = candidates(20);
        let mut rng = StdRng::seed_from_u64(11);
        let mut picked_worst = 0usize;
        let trials = 400;
        for _ in 0..trials {
            let picked = private_neighbor_selection(&mut rng, &cands, 3, 0.01, 0.05, 100);
            if picked.iter().any(|c| c.similarity < 0.0) {
                picked_worst += 1;
            }
        }
        assert!(
            picked_worst > 0,
            "a very small ε′ should occasionally select poor candidates"
        );
    }

    #[test]
    fn tiny_sensitivities_do_not_overflow() {
        let cands: Vec<ScoredCandidate> = (0..10)
            .map(|i| ScoredCandidate {
                item: ItemId(i as u32),
                similarity: 0.9 - i as f64 * 0.05,
                sensitivity: 1e-9,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let picked = private_neighbor_selection(&mut rng, &cands, 3, 0.8, 0.05, 50);
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn pncf_noise_scales_with_sensitivity_and_budget() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 30_000;
        let avg_noise = |sens: f64, eps: f64, rng: &mut StdRng| {
            (0..n)
                .map(|_| (pncf_noisy_similarity(rng, 0.0, sens, eps)).abs())
                .sum::<f64>()
                / n as f64
        };
        let small = avg_noise(0.01, 0.8, &mut rng);
        let large = avg_noise(0.5, 0.8, &mut rng);
        assert!(
            large > 10.0 * small,
            "noise must grow with sensitivity: {large} vs {small}"
        );
        let strict = avg_noise(0.1, 0.1, &mut rng);
        let loose = avg_noise(0.1, 2.0, &mut rng);
        assert!(
            strict > 5.0 * loose,
            "noise must grow as ε′ shrinks: {strict} vs {loose}"
        );
    }

    #[test]
    fn pair_sensitivity_reflects_co_rater_support() {
        // Items 0 and 1 co-rated by many users; items 0 and 2 co-rated by exactly one.
        let mut b = RatingMatrixBuilder::new();
        for u in 0..20u32 {
            b.push_parts(u, 0, ((u % 5) + 1) as f64).unwrap();
            b.push_parts(u, 1, ((u % 5) + 1) as f64).unwrap();
            // every user also rates some filler item so user averages are not degenerate
            b.push_parts(u, 3, 3.0).unwrap();
        }
        b.push_parts(0, 2, 5.0).unwrap();
        let m = b.build().unwrap();
        let well_supported = pair_sensitivity(&m, ItemId(0), ItemId(1));
        let fragile = pair_sensitivity(&m, ItemId(0), ItemId(2));
        assert!(
            fragile >= well_supported,
            "a single-co-rater pair must be at least as sensitive ({fragile} vs {well_supported})"
        );
        assert!(well_supported > 0.0 && well_supported <= 2.0);
        // disconnected pair falls back to the floor value
        let disconnected = pair_sensitivity(&m, ItemId(1), ItemId(2));
        assert!(disconnected > 0.0);
    }

    #[test]
    fn a_single_nan_similarity_neither_panics_nor_derails_the_mechanism() {
        // A NaN similarity is excluded from the Sim_k threshold and truncated to the
        // bound's floor (`f64::max` ignores NaN), so it competes like a worst-scored
        // candidate instead of poisoning the draw. With a strongly concentrating ε′
        // the best finite candidates must keep winning.
        let mut cands = candidates(10);
        cands[3].similarity = f64::NAN;
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 50;
        let mut nan_picks = 0usize;
        for _ in 0..trials {
            let picked = private_neighbor_selection(&mut rng, &cands, 4, 50.0, 0.05, 100);
            assert_eq!(picked.len(), 4);
            let mut items: Vec<ItemId> = picked.iter().map(|c| c.item).collect();
            items.sort_unstable();
            items.dedup();
            assert_eq!(items.len(), 4, "selection must not repeat candidates");
            assert!(
                picked.iter().any(|c| c.item == ItemId(0)),
                "the best finite candidate must keep winning"
            );
            nan_picks += usize::from(picked.iter().any(|c| c.item == ItemId(3)));
        }
        assert!(
            nan_picks < trials / 2,
            "the NaN candidate must not dominate the draw ({nan_picks}/{trials})"
        );
    }

    #[test]
    fn neg_infinite_similarities_do_not_panic() {
        // All-(-inf) exponents make every weight NaN (−inf − −inf); the uniform fallback
        // must still return k distinct candidates.
        let cands: Vec<ScoredCandidate> = (0..8)
            .map(|i| ScoredCandidate {
                item: ItemId(i as u32),
                similarity: f64::NEG_INFINITY,
                sensitivity: 0.05,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(21);
        let picked = private_neighbor_selection(&mut rng, &cands, 3, 0.8, 0.05, 100);
        assert_eq!(picked.len(), 3);
        let mut items: Vec<ItemId> = picked.iter().map(|c| c.item).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn uniform_fallback_visits_every_candidate_eventually() {
        let mut cands = candidates(6);
        for c in &mut cands {
            c.similarity = f64::NAN;
        }
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            for c in private_neighbor_selection(&mut rng, &cands, 2, 0.8, 0.05, 100) {
                seen.insert(c.item);
            }
        }
        assert_eq!(seen.len(), 6, "uniform fallback must spread over the pool");
    }

    #[test]
    fn selection_is_deterministic_for_a_seed() {
        let cands = candidates(12);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let pa = private_neighbor_selection(&mut a, &cands, 4, 0.8, 0.05, 60);
        let pb = private_neighbor_selection(&mut b, &cands, 4, 0.8, 0.05, 60);
        assert_eq!(pa, pb);
    }
}
