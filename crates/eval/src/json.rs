//! A minimal JSON value: rendering and parsing.
//!
//! The vendored `serde` stand-in is a marker-trait stub (see the workspace
//! `Cargo.toml`), so machine-readable reports — the sweep runner's output and the CI
//! accuracy baseline it is diffed against — are built on this small, dependency-free
//! JSON tree instead. Numbers render through Rust's shortest-round-trip `f64`
//! formatting, so a value written by [`Json::render`] parses back bit-identical, which
//! is what lets the CI gate compare MAE values at `1e-9` tolerance meaningfully.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so rendered reports diff cleanly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also the rendering of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Renders the value with newlines and two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, inner_pad) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's Display for f64 is the shortest representation that parses
                    // back to the same bits — exactly what a diffable baseline needs.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&inner_pad);
                    item.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&inner_pad);
                    render_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns the value and fails on trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(pos: usize, message: impl Into<String>) -> Self {
        JsonError {
            pos,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected `{literal}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect_literal(bytes, pos, "null", Json::Null),
        Some(b't') => expect_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::at(*pos, "expected `:`"));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(JsonError::at(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        // Surrogate halves (paired or lone) fall back to U+FFFD; the
                        // reports this parser serves never emit astral-plane text.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (input is a &str, so boundaries are valid)
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty checked above"); // lint: panic — reviewed invariant
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits"); // lint: panic — reviewed invariant
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_documents() {
        let doc = Json::obj([
            ("name", Json::str("eval-smoke")),
            ("ok", Json::Bool(true)),
            ("n", Json::Num(42.0)),
            (
                "series",
                Json::Arr(vec![
                    Json::obj([("x", Json::Num(0.5)), ("y", Json::Num(1.25))]),
                    Json::Null,
                ]),
            ),
        ]);
        let compact = doc.render();
        assert_eq!(
            compact,
            r#"{"name":"eval-smoke","ok":true,"n":42,"series":[{"x":0.5,"y":1.25},null]}"#
        );
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        // pretty rendering parses back to the same tree
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            0.757_575_757_575_757_6,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ] {
            let rendered = Json::Num(v).render();
            let parsed = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} did not round-trip");
        }
        // non-finite numbers degrade to null rather than emitting invalid JSON
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let rendered = Json::Str(s.to_string()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str().unwrap(), s);
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str().unwrap(), "Aé");
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2, 3]}, "flag": false}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        assert_eq!(arr.as_array().unwrap()[2].as_f64(), Some(3.0));
        assert_eq!(doc.get("flag").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_f64(), None);
        assert_eq!(doc.as_str(), None);
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn parse_errors_carry_positions() {
        for (text, what) in [
            ("", "unexpected end"),
            ("{\"a\" 1}", "expected `:`"),
            ("[1, 2", "expected `,` or `]`"),
            ("12.3.4", "invalid number"),
            ("true false", "trailing"),
            ("\"unterminated", "unterminated"),
            ("nope", "expected `null`"),
        ] {
            let err = Json::parse(text).unwrap_err();
            assert!(
                err.message.contains(what),
                "`{text}` gave `{err}`, expected `{what}`"
            );
        }
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let doc = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } , \"c\" : [ ] } ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("b"), Some(&Json::Obj(vec![])));
        assert_eq!(doc.get("c"), Some(&Json::Arr(vec![])));
        assert_eq!(Json::Obj(vec![]).render(), "{}");
        assert_eq!(Json::Arr(vec![]).render(), "[]");
    }
}
