//! Accuracy and ranking metrics.

/// The worst-case absolute error charged for a non-finite prediction: the span of the
/// true ratings among `pairs` (at least 1, so degenerate single-value test sets still
/// penalise). Both [`mae`] and [`rmse`] charge this same data-derived penalty, so a
/// poisoned predictor scores as badly as one that is maximally wrong on every pair.
fn non_finite_penalty(pairs: &[(f64, f64)]) -> f64 {
    let span = pairs
        .iter()
        .map(|&(_, truth)| truth)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        });
    (span.1 - span.0).abs().max(1.0)
}

/// Mean Absolute Error between predictions and true ratings (§6.1).
///
/// Pairs with a non-finite prediction are counted with the maximum possible error of the
/// provided pairs' span rather than silently dropped, so a buggy predictor cannot look
/// artificially good; with no pairs the result is `NaN`.
pub fn mae(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return f64::NAN;
    }
    let worst = non_finite_penalty(pairs);
    let total: f64 = pairs
        .iter()
        .map(|&(pred, truth)| {
            if pred.is_finite() {
                (pred - truth).abs()
            } else {
                worst
            }
        })
        .sum();
    total / pairs.len() as f64
}

/// Root Mean Squared Error between predictions and true ratings.
///
/// Non-finite predictions are charged the same span-derived worst-case error as in
/// [`mae`] (squared, since RMSE squares every residual).
pub fn rmse(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return f64::NAN;
    }
    let worst = non_finite_penalty(pairs);
    let total: f64 = pairs
        .iter()
        .map(|&(pred, truth)| {
            let d = if pred.is_finite() {
                pred - truth
            } else {
                worst
            };
            d * d
        })
        .sum();
    (total / pairs.len() as f64).sqrt()
}

/// Precision@N: the fraction of the first `n` recommended items that are relevant.
pub fn precision_at_n<T: PartialEq>(recommended: &[T], relevant: &[T], n: usize) -> f64 {
    let n = n.min(recommended.len());
    if n == 0 {
        return 0.0;
    }
    let hits = recommended[..n]
        .iter()
        .filter(|r| relevant.contains(r))
        .count();
    hits as f64 / n as f64
}

/// Recall@N: the fraction of relevant items that appear in the first `n` recommendations.
/// Each relevant item counts at most once even if it is recommended multiple times.
pub fn recall_at_n<T: PartialEq>(recommended: &[T], relevant: &[T], n: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let n = n.min(recommended.len());
    let head = &recommended[..n];
    let mut hits = 0usize;
    for (idx, r) in relevant.iter().enumerate() {
        // guard against duplicates in `relevant` as well: only the first occurrence counts
        let first_occurrence = relevant[..idx].iter().all(|earlier| earlier != r);
        if first_occurrence && head.contains(r) {
            hits += 1;
        }
    }
    let distinct_relevant = relevant
        .iter()
        .enumerate()
        .filter(|(idx, r)| relevant[..*idx].iter().all(|earlier| &earlier != r))
        .count();
    hits as f64 / distinct_relevant.max(1) as f64
}

/// Catalogue coverage: the fraction of `catalogue_size` distinct items that appear in at
/// least one recommendation list.
pub fn coverage<T: PartialEq + Clone>(
    recommendation_lists: &[Vec<T>],
    catalogue_size: usize,
) -> f64 {
    if catalogue_size == 0 {
        return 0.0;
    }
    let mut seen: Vec<T> = Vec::new();
    for list in recommendation_lists {
        for item in list {
            if !seen.contains(item) {
                seen.push(item.clone());
            }
        }
    }
    seen.len() as f64 / catalogue_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mae_of_perfect_predictions_is_zero() {
        let pairs = vec![(3.0, 3.0), (4.5, 4.5)];
        assert_eq!(mae(&pairs), 0.0);
        assert_eq!(rmse(&pairs), 0.0);
    }

    #[test]
    fn mae_matches_hand_computation() {
        let pairs = vec![(3.0, 4.0), (5.0, 3.0)];
        assert!((mae(&pairs) - 1.5).abs() < 1e-12);
        assert!((rmse(&pairs) - ((1.0f64 + 4.0) / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_nan() {
        assert!(mae(&[]).is_nan());
        assert!(rmse(&[]).is_nan());
    }

    #[test]
    fn non_finite_predictions_are_penalised() {
        let good = vec![(3.0, 3.0), (3.0, 3.0)];
        let bad = vec![(f64::NAN, 3.0), (3.0, 3.0)];
        assert!(mae(&bad) > mae(&good));
        assert!(rmse(&bad) > rmse(&good));
    }

    #[test]
    fn mae_and_rmse_share_the_span_derived_penalty() {
        // True ratings span 2.0..5.0 => penalty 3.0 for the NaN prediction.
        let pairs = vec![(f64::NAN, 2.0), (5.0, 5.0)];
        assert!((mae(&pairs) - (3.0 + 0.0) / 2.0).abs() < 1e-12);
        assert!((rmse(&pairs) - ((9.0 + 0.0f64) / 2.0).sqrt()).abs() < 1e-12);

        // Infinities are penalised exactly like NaN.
        let inf = vec![(f64::INFINITY, 2.0), (5.0, 5.0)];
        assert_eq!(mae(&inf), mae(&pairs));
        assert_eq!(rmse(&inf), rmse(&pairs));

        // A degenerate span (all truths equal) still charges at least 1.0, for both.
        let flat = vec![(f64::NAN, 3.0), (3.0, 3.0)];
        assert!((mae(&flat) - 0.5).abs() < 1e-12);
        assert!((rmse(&flat) - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn precision_and_recall_basic_cases() {
        let recommended = vec![1, 2, 3, 4, 5];
        let relevant = vec![2, 5, 9];
        assert!((precision_at_n(&recommended, &relevant, 5) - 0.4).abs() < 1e-12);
        assert!((recall_at_n(&recommended, &relevant, 5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((precision_at_n(&recommended, &relevant, 2) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_n(&recommended, &relevant, 0), 0.0);
        assert_eq!(recall_at_n(&recommended, &Vec::<i32>::new(), 5), 0.0);
        // n larger than the recommendation list just uses the whole list
        assert!((precision_at_n(&recommended, &relevant, 50) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn coverage_counts_distinct_items() {
        let lists = vec![vec![1, 2], vec![2, 3], vec![3, 4]];
        assert!((coverage(&lists, 8) - 0.5).abs() < 1e-12);
        assert_eq!(coverage(&Vec::<Vec<i32>>::new(), 8), 0.0);
        assert_eq!(coverage(&lists, 0), 0.0);
    }

    #[test]
    fn precision_with_empty_relevant_set_is_zero() {
        let recommended = vec![1, 2, 3];
        assert_eq!(precision_at_n(&recommended, &Vec::<i32>::new(), 3), 0.0);
        // empty recommendations against a non-empty relevant set are also zero
        assert_eq!(precision_at_n(&Vec::<i32>::new(), &[1, 2], 3), 0.0);
        assert_eq!(recall_at_n(&Vec::<i32>::new(), &[1, 2], 3), 0.0);
    }

    #[test]
    fn n_larger_than_recommendation_list_uses_the_whole_list() {
        let recommended = vec![7, 8];
        let relevant = vec![8, 9];
        // n = 100 clamps to the 2-element list: 1 hit of 2 shown, 1 of 2 relevant.
        assert!((precision_at_n(&recommended, &relevant, 100) - 0.5).abs() < 1e-12);
        assert!((recall_at_n(&recommended, &relevant, 100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_relevant_items_count_once_in_recall() {
        let recommended = vec![1, 2, 3];
        // item 2 is listed twice as relevant: the denominator and the hit both count it once
        let relevant = vec![2, 2, 9];
        assert!((recall_at_n(&recommended, &relevant, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coverage_ignores_duplicates_within_and_across_lists() {
        // item 2 appears twice in one list and again in another: one distinct item
        let lists = vec![vec![2, 2, 3], vec![2], vec![3]];
        assert!((coverage(&lists, 4) - 0.5).abs() < 1e-12);
        // catalogue smaller than the distinct recommendation set saturates above 1.0
        // only if callers undercount the catalogue; the metric itself just divides
        assert!((coverage(&lists, 2) - 1.0).abs() < 1e-12);
    }

    proptest! {
        /// MAE and RMSE are non-negative and RMSE >= MAE (Jensen).
        #[test]
        fn error_metric_relationships(pairs in proptest::collection::vec((1.0f64..5.0, 1.0f64..5.0), 1..100)) {
            let m = mae(&pairs);
            let r = rmse(&pairs);
            prop_assert!(m >= 0.0);
            prop_assert!(r >= m - 1e-9);
        }

        /// Precision and recall are always in [0, 1].
        #[test]
        fn ranking_metrics_bounded(
            recommended in proptest::collection::vec(0u32..50, 0..30),
            relevant in proptest::collection::vec(0u32..50, 0..30),
            n in 0usize..40,
        ) {
            let p = precision_at_n(&recommended, &relevant, n);
            let r = recall_at_n(&recommended, &relevant, n);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }
}
