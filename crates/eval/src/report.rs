//! Plain-text rendering of tables and figure series.
//!
//! The `figures` harness in `xmap-bench` prints every reproduced table and figure through
//! these helpers so the output format is uniform and easy to diff across runs.

use crate::protocol::SweepSeries;

/// Renders a fixed-width table: `headers` followed by one row per entry of `rows`.
/// Column widths adapt to the longest cell.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(n_cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(c).unwrap_or(&empty);
            line.push_str(&format!(" {cell:<w$} |", w = w));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Renders a set of sweep series as a table with the x value in the first column and one
/// column per series — the textual equivalent of one figure panel.
pub fn render_series_table(x_label: &str, series: &[SweepSeries], precision: usize) -> String {
    // collect the union of x values in first-seen order
    let mut xs: Vec<f64> = Vec::new();
    for s in series {
        for p in &s.points {
            if !xs.iter().any(|&x| (x - p.x).abs() < 1e-12) {
                xs.push(p.x);
            }
        }
    }
    let mut headers: Vec<&str> = vec![x_label];
    let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
    headers.extend(labels);

    let rows: Vec<Vec<String>> = xs
        .iter()
        .map(|&x| {
            let mut row = vec![format!("{x}")];
            for s in series {
                let cell = s
                    .points
                    .iter()
                    .find(|p| (p.x - x).abs() < 1e-12)
                    .map(|p| format!("{:.*}", precision, p.y))
                    .unwrap_or_else(|| "-".to_string());
                row.push(cell);
            }
            row
        })
        .collect();
    render_table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_headers_and_rows() {
        let out = render_table(
            &["genre", "count", "domain"],
            &[
                vec!["Drama".into(), "13344".into(), "D1".into()],
                vec!["Comedy".into(), "8374".into(), "D2".into()],
            ],
        );
        assert!(out.contains("genre"));
        assert!(out.contains("Drama"));
        assert!(out.contains("D2"));
        // 1 header + 1 separator + 2 data rows
        assert_eq!(out.lines().count(), 4);
        // all lines have the same width
        let widths: Vec<usize> = out.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn missing_cells_render_as_empty() {
        let out = render_table(&["a", "b"], &[vec!["1".into()]]);
        assert!(out.lines().count() == 3);
    }

    #[test]
    fn series_table_aligns_on_x_values() {
        let mut a = SweepSeries::new("A");
        a.push(10.0, 0.5);
        a.push(20.0, 0.4);
        let mut b = SweepSeries::new("B");
        b.push(10.0, 0.6);
        let out = render_series_table("k", &[a, b], 3);
        assert!(out.contains("k"));
        assert!(out.contains("A"));
        assert!(out.contains("B"));
        assert!(out.contains("0.500"));
        assert!(out.contains("0.400"));
        // B has no point at x=20 -> dash
        assert!(out.contains('-'));
    }

    #[test]
    fn empty_series_render_header_only() {
        let out = render_series_table("x", &[SweepSeries::new("empty")], 2);
        assert!(out.contains("empty"));
        assert_eq!(out.lines().count(), 2);
    }
}
