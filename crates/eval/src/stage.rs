//! Engine-parallel evaluation: [`EvalBatch`] → [`EvalStage`] → [`EvalReport`].
//!
//! The paper's §6 experiments evaluate a fitted system over hidden test ratings (MAE /
//! RMSE) and over per-user top-N lists (precision/recall@N, coverage). The serial
//! reference for the prediction half is [`evaluate_predictions`]; this module moves the
//! whole protocol onto the `xmap-engine` dataflow so evaluation runs with the same
//! partition-and-replay discipline as extension and serving:
//!
//! * test triples are hash-partitioned by input position via
//!   `StageContext::map_items_ordered`, each partition is one pool task, and the
//!   `(prediction, truth)` pairs come back **in test order**;
//! * ranking cases go through a second ordered map in the same stage run;
//! * aggregation (the actual metric arithmetic) happens once, serially, over the
//!   ordered pairs/lists — exactly the arithmetic the serial reference performs.
//!
//! **Determinism contract.** Because partition assignment hashes the input position,
//! every per-triple/per-case computation is independent, and aggregation consumes the
//! reassembled in-order outputs, an [`EvalStage`] run is **bit-identical** to
//! [`evaluate_batch_serial`] (and its `mae`/`rmse`/`n` fields bit-identical to
//! [`evaluate_predictions`]) at any worker count. Per-partition *data-derived* costs
//! (triple counts, relevant-set sizes) land in the dataflow ledger under
//! [`EVAL_STAGE_NAME`], so the cluster simulator can replay evaluation workloads and
//! the recorded task bag is identical for 1, 2 or 8 workers.
//!
//! [`evaluate_predictions`]: crate::protocol::evaluate_predictions

use crate::metrics::{coverage, mae, precision_at_n, recall_at_n, rmse};
use crate::protocol::SweepMetric;
use serde::{Deserialize, Serialize};
use xmap_cf::{ItemId, Rating, UserId};
use xmap_engine::{Stage, StageContext};

/// Stage name under which evaluation costs appear in the dataflow ledger.
pub const EVAL_STAGE_NAME: &str = "eval";

/// A system under evaluation: rating prediction plus top-N recommendation.
///
/// Implementations must be pure with respect to `&self` (no observable shared mutable
/// state across calls): the [`EvalStage`] calls these methods from multiple worker
/// threads and relies on per-call independence for its bit-identity contract.
pub trait EvalTarget: Sync {
    /// Predicted rating of `item` for `user`.
    fn predict(&self, user: UserId, item: ItemId) -> f64;

    /// Top-`n` recommended items for `user`, best first.
    fn recommend(&self, user: UserId, n: usize) -> Vec<ItemId>;
}

/// Adapter making a bare prediction closure an [`EvalTarget`].
///
/// Ranking is unsupported: evaluating a batch with ranking cases through this adapter
/// panics. Use a full [`EvalTarget`] implementation for ranking metrics.
pub struct PredictorFn<F>(pub F);

impl<F: Fn(UserId, ItemId) -> f64 + Sync> EvalTarget for PredictorFn<F> {
    fn predict(&self, user: UserId, item: ItemId) -> f64 {
        (self.0)(user, item)
    }

    fn recommend(&self, _user: UserId, _n: usize) -> Vec<ItemId> {
        panic!("PredictorFn is prediction-only; ranking cases need a full EvalTarget")
    }
}

/// One ranking-evaluation case: a user and the items that count as relevant for them
/// (typically their hidden high ratings).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankingCase {
    /// The user whose top-N list is evaluated.
    pub user: UserId,
    /// The ground-truth relevant items.
    pub relevant: Vec<ItemId>,
}

/// A batch of evaluation work: hidden test triples for the error metrics, plus optional
/// ranking cases for precision/recall@N and coverage.
#[derive(Clone, Debug, Default)]
pub struct EvalBatch {
    /// Hidden `(user, item, truth)` triples, in protocol order.
    pub test: Vec<Rating>,
    /// Ranking cases, in protocol order (empty disables the ranking metrics).
    pub ranking: Vec<RankingCase>,
    /// The N of precision/recall@N — how many recommendations each case requests.
    pub n: usize,
    /// Catalogue size for the coverage metric (number of recommendable items).
    pub catalogue_size: usize,
}

impl EvalBatch {
    /// A prediction-only batch (no ranking metrics).
    pub fn predictions(test: Vec<Rating>) -> Self {
        EvalBatch {
            test,
            ..Default::default()
        }
    }

    /// Adds ranking cases: each case's user receives `n` recommendations, and coverage
    /// is measured against `catalogue_size` recommendable items.
    pub fn with_ranking(
        mut self,
        ranking: Vec<RankingCase>,
        n: usize,
        catalogue_size: usize,
    ) -> Self {
        self.ranking = ranking;
        self.n = n;
        self.catalogue_size = catalogue_size;
        self
    }

    /// Total number of evaluation work items (test triples plus ranking cases).
    pub fn len(&self) -> usize {
        self.test.len() + self.ranking.len()
    }

    /// Whether the batch holds no work at all.
    pub fn is_empty(&self) -> bool {
        self.test.is_empty() && self.ranking.is_empty()
    }
}

/// The outcome of evaluating one system on one [`EvalBatch`].
///
/// Error metrics are `NaN` when the batch has no test triples; ranking metrics are
/// `NaN` when it has no ranking cases.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Mean absolute error over the test triples.
    pub mae: f64,
    /// Root mean squared error over the test triples.
    pub rmse: f64,
    /// Number of test triples evaluated.
    pub n_predictions: usize,
    /// Mean precision@N over the ranking cases.
    pub precision_at_n: f64,
    /// Mean recall@N over the ranking cases.
    pub recall_at_n: f64,
    /// Catalogue coverage of the produced recommendation lists.
    pub coverage: f64,
    /// Number of ranking cases evaluated.
    pub n_ranking_users: usize,
}

impl EvalReport {
    /// The measurement a sweep records for this report.
    pub fn metric(&self, metric: SweepMetric) -> f64 {
        match metric {
            SweepMetric::Mae => self.mae,
            SweepMetric::Rmse => self.rmse,
            SweepMetric::PrecisionAtN => self.precision_at_n,
            SweepMetric::RecallAtN => self.recall_at_n,
            SweepMetric::Coverage => self.coverage,
        }
    }

    /// Whether two reports are bit-identical (comparing floats by bits, so `NaN`
    /// fields compare equal to themselves — unlike `==`).
    pub fn bits_eq(&self, other: &EvalReport) -> bool {
        self.mae.to_bits() == other.mae.to_bits()
            && self.rmse.to_bits() == other.rmse.to_bits()
            && self.n_predictions == other.n_predictions
            && self.precision_at_n.to_bits() == other.precision_at_n.to_bits()
            && self.recall_at_n.to_bits() == other.recall_at_n.to_bits()
            && self.coverage.to_bits() == other.coverage.to_bits()
            && self.n_ranking_users == other.n_ranking_users
    }
}

/// The shared aggregation arithmetic: consumes `(prediction, truth)` pairs in test
/// order and recommendation lists in case order. Both the serial reference and the
/// parallel stage call exactly this, which is what makes them bit-identical.
fn aggregate(
    pairs: &[(f64, f64)],
    cases: &[RankingCase],
    lists: &[Vec<ItemId>],
    n: usize,
    catalogue_size: usize,
) -> EvalReport {
    debug_assert_eq!(cases.len(), lists.len());
    let (precision, recall, cov) = if cases.is_empty() {
        (f64::NAN, f64::NAN, f64::NAN)
    } else {
        let mut precision_sum = 0.0;
        let mut recall_sum = 0.0;
        for (case, list) in cases.iter().zip(lists) {
            precision_sum += precision_at_n(list, &case.relevant, n);
            recall_sum += recall_at_n(list, &case.relevant, n);
        }
        (
            precision_sum / cases.len() as f64,
            recall_sum / cases.len() as f64,
            coverage(lists, catalogue_size),
        )
    };
    EvalReport {
        mae: mae(pairs),
        rmse: rmse(pairs),
        n_predictions: pairs.len(),
        precision_at_n: precision,
        recall_at_n: recall,
        coverage: cov,
        n_ranking_users: cases.len(),
    }
}

/// The serial reference implementation of the evaluation protocol: one `predict` call
/// per test triple (in order), one `recommend` call per ranking case (in order), then
/// the shared aggregation. [`EvalStage`] is bit-identical to this by contract.
pub fn evaluate_batch_serial(target: &dyn EvalTarget, batch: &EvalBatch) -> EvalReport {
    let pairs: Vec<(f64, f64)> = batch
        .test
        .iter()
        .map(|r| (target.predict(r.user, r.item), r.value))
        .collect();
    let lists: Vec<Vec<ItemId>> = batch
        .ranking
        .iter()
        .map(|case| target.recommend(case.user, batch.n))
        .collect();
    aggregate(
        &pairs,
        &batch.ranking,
        &lists,
        batch.n,
        batch.catalogue_size,
    )
}

/// Derives ranking cases from hidden test triples: every rating `>= relevance_threshold`
/// marks its item relevant for its user. Users appear in first-seen test order; users
/// with no relevant item are skipped (their recall would be degenerate).
pub fn ranking_cases_from_test(test: &[Rating], relevance_threshold: f64) -> Vec<RankingCase> {
    let mut order: Vec<UserId> = Vec::new();
    let mut relevant: std::collections::HashMap<UserId, Vec<ItemId>> =
        std::collections::HashMap::new();
    for r in test {
        if r.value >= relevance_threshold {
            relevant
                .entry(r.user)
                .or_insert_with(|| {
                    order.push(r.user);
                    Vec::new()
                })
                .push(r.item);
        }
    }
    order
        .into_iter()
        .map(|user| RankingCase {
            relevant: relevant.remove(&user).expect("entry inserted above"), // lint: panic — reviewed invariant
            user,
        })
        .collect()
}

/// The engine-parallel evaluation stage: runs one [`EvalBatch`] against an
/// [`EvalTarget`] through `StageContext::map_items_ordered`.
///
/// The dataflow ledger entry under [`EVAL_STAGE_NAME`] holds the prediction
/// partitions' costs (one per partition, triple counts) followed by the ranking
/// partitions' costs (`Σ (1 + |relevant|)`, recorded only when ranking cases exist).
/// Costs are data-derived, so the ledger is identical at any worker count.
pub struct EvalStage<'t> {
    target: &'t dyn EvalTarget,
}

impl<'t> EvalStage<'t> {
    /// Wraps a system under evaluation.
    pub fn new(target: &'t dyn EvalTarget) -> Self {
        EvalStage { target }
    }
}

impl Stage<EvalBatch> for EvalStage<'_> {
    type Out = EvalReport;

    fn name(&self) -> &'static str {
        EVAL_STAGE_NAME
    }

    fn run(&self, batch: EvalBatch, cx: &mut StageContext<'_>) -> EvalReport {
        let EvalBatch {
            test,
            ranking,
            n,
            catalogue_size,
        } = batch;
        let pairs: Vec<(f64, f64)> = cx.map_items_ordered(test, |_ix, part| {
            let outs: Vec<(f64, f64)> = part
                .iter()
                .map(|(_, r)| (self.target.predict(r.user, r.item), r.value))
                .collect();
            (outs, part.len() as f64)
        });
        let lists: Vec<Vec<ItemId>> = if ranking.is_empty() {
            Vec::new()
        } else {
            // Map over case indices (partitioned identically to the cases themselves,
            // since both hash the input position) so the cases are borrowed, not
            // deep-cloned, and stay available for aggregation below.
            let positions: Vec<usize> = (0..ranking.len()).collect();
            cx.map_items_ordered(positions, |_ix, part| {
                let outs: Vec<Vec<ItemId>> = part
                    .iter()
                    .map(|&(_, case_ix)| self.target.recommend(ranking[case_ix].user, n))
                    .collect();
                // "+1" keeps cases with empty relevant sets from being free: the
                // simulated cluster still pays their per-case recommendation cost.
                let cost: f64 = part
                    .iter()
                    .map(|&(_, case_ix)| 1.0 + ranking[case_ix].relevant.len() as f64)
                    .sum();
                (outs, cost)
            })
        };
        aggregate(&pairs, &ranking, &lists, n, catalogue_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::evaluate_predictions;
    use xmap_engine::Dataflow;

    /// A deterministic toy system: predictions and recommendations are pure functions
    /// of the ids, so every execution strategy must agree bit for bit.
    struct ToyTarget;

    impl EvalTarget for ToyTarget {
        fn predict(&self, user: UserId, item: ItemId) -> f64 {
            1.0 + ((user.0.wrapping_mul(7) + item.0.wrapping_mul(3)) % 9) as f64 / 2.0
        }

        fn recommend(&self, user: UserId, n: usize) -> Vec<ItemId> {
            (0..n as u32)
                .map(|j| ItemId((user.0 + j * 2) % 11))
                .collect()
        }
    }

    fn batch() -> EvalBatch {
        let test: Vec<Rating> = (0..60u32)
            .map(|s| Rating::new(UserId(s % 9), ItemId(s % 13), 1.0 + (s % 5) as f64))
            .collect();
        let ranking = ranking_cases_from_test(&test, 4.0);
        assert!(!ranking.is_empty());
        EvalBatch::predictions(test).with_ranking(ranking, 4, 11)
    }

    #[test]
    fn stage_is_bit_identical_to_serial_reference_at_1_2_and_8_workers() {
        let batch0 = batch();
        let reference = evaluate_batch_serial(&ToyTarget, &batch0);
        // the error half must also equal the historic serial loop bit for bit
        let loop_outcome = evaluate_predictions(&batch0.test, |u, i| ToyTarget.predict(u, i));
        assert_eq!(reference.mae.to_bits(), loop_outcome.mae.to_bits());
        assert_eq!(reference.rmse.to_bits(), loop_outcome.rmse.to_bits());
        assert_eq!(reference.n_predictions, loop_outcome.n);

        let mut reference_costs = None;
        for workers in [1usize, 2, 8] {
            let flow = Dataflow::new(workers, 8);
            let report = flow.run(&EvalStage::new(&ToyTarget), batch0.clone());
            assert!(
                report.bits_eq(&reference),
                "{workers} workers diverged: {report:?} vs {reference:?}"
            );
            let costs = flow
                .stage_costs(EVAL_STAGE_NAME)
                .expect("evaluation records task costs");
            assert_eq!(
                costs.len(),
                16,
                "8 prediction partitions + 8 ranking partitions"
            );
            match &reference_costs {
                None => reference_costs = Some(costs),
                Some(expected) => {
                    assert_eq!(&costs, expected, "{workers} workers changed task costs")
                }
            }
        }
    }

    #[test]
    fn eval_costs_cover_every_triple_and_case() {
        let batch0 = batch();
        let expected: f64 = batch0.test.len() as f64
            + batch0
                .ranking
                .iter()
                .map(|c| 1.0 + c.relevant.len() as f64)
                .sum::<f64>();
        let flow = Dataflow::new(2, 4);
        let _ = flow.run(&EvalStage::new(&ToyTarget), batch0);
        let costs = flow.stage_costs(EVAL_STAGE_NAME).unwrap();
        assert!((costs.iter().sum::<f64>() - expected).abs() < 1e-9);
    }

    #[test]
    fn prediction_only_batch_leaves_ranking_metrics_nan() {
        let batch0 = EvalBatch::predictions(batch().test);
        let flow = Dataflow::new(2, 4);
        let report = flow.run(&EvalStage::new(&ToyTarget), batch0.clone());
        assert!(report.mae.is_finite());
        assert!(report.precision_at_n.is_nan());
        assert!(report.recall_at_n.is_nan());
        assert!(report.coverage.is_nan());
        assert_eq!(report.n_ranking_users, 0);
        assert!(report.bits_eq(&evaluate_batch_serial(&ToyTarget, &batch0)));
        // only the prediction map records costs when there are no ranking cases
        assert_eq!(flow.stage_costs(EVAL_STAGE_NAME).unwrap().len(), 4);
    }

    #[test]
    fn empty_batch_reports_nan_everywhere() {
        let flow = Dataflow::new(2, 4);
        let report = flow.run(&EvalStage::new(&ToyTarget), EvalBatch::default());
        assert_eq!(report.n_predictions, 0);
        assert_eq!(report.n_ranking_users, 0);
        assert!(report.mae.is_nan());
        assert!(report.rmse.is_nan());
        assert!(report.precision_at_n.is_nan());
        assert!(EvalBatch::default().is_empty());
        assert_eq!(EvalBatch::default().len(), 0);
        assert!(report.bits_eq(&evaluate_batch_serial(&ToyTarget, &EvalBatch::default())));
    }

    #[test]
    fn predictor_fn_serves_prediction_batches() {
        let target = PredictorFn(|u: UserId, i: ItemId| (u.0 + i.0) as f64);
        let test = vec![
            Rating::new(UserId(1), ItemId(2), 3.0),
            Rating::new(UserId(0), ItemId(0), 1.0),
        ];
        let batch0 = EvalBatch::predictions(test.clone());
        let flow = Dataflow::new(2, 4);
        let report = flow.run(&EvalStage::new(&target), batch0);
        let outcome = evaluate_predictions(&test, |u, i| (u.0 + i.0) as f64);
        assert_eq!(report.mae.to_bits(), outcome.mae.to_bits());
    }

    #[test]
    #[should_panic(expected = "prediction-only")]
    fn predictor_fn_rejects_ranking_cases() {
        let target = PredictorFn(|_: UserId, _: ItemId| 3.0);
        target.recommend(UserId(0), 3);
    }

    #[test]
    fn ranking_cases_group_by_user_in_first_seen_order() {
        let test = vec![
            Rating::new(UserId(3), ItemId(0), 5.0),
            Rating::new(UserId(1), ItemId(1), 2.0), // below threshold
            Rating::new(UserId(1), ItemId(2), 4.0),
            Rating::new(UserId(3), ItemId(3), 4.5),
            Rating::new(UserId(2), ItemId(4), 1.0), // user 2 has nothing relevant
        ];
        let cases = ranking_cases_from_test(&test, 4.0);
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].user, UserId(3));
        assert_eq!(cases[0].relevant, vec![ItemId(0), ItemId(3)]);
        assert_eq!(cases[1].user, UserId(1));
        assert_eq!(cases[1].relevant, vec![ItemId(2)]);
    }

    #[test]
    fn report_bits_eq_treats_nan_as_equal() {
        let flow = Dataflow::new(1, 2);
        let a = flow.run(&EvalStage::new(&ToyTarget), EvalBatch::default());
        let b = flow.run(&EvalStage::new(&ToyTarget), EvalBatch::default());
        assert!(a.bits_eq(&b), "NaN reports must compare bit-equal");
        assert_ne!(
            a, b,
            "PartialEq on NaN reports is false — that is why bits_eq exists"
        );
    }
}
