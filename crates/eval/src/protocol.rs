//! The shared evaluation loop and sweep bookkeeping.

use crate::metrics::{mae, rmse};
use serde::{Deserialize, Serialize};
use xmap_cf::{ItemId, Rating, UserId};

/// The outcome of evaluating one system on one test set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Mean absolute error over the test ratings.
    pub mae: f64,
    /// Root mean squared error over the test ratings.
    pub rmse: f64,
    /// Number of test ratings evaluated.
    pub n: usize,
}

/// Evaluates a predictor over hidden test ratings: `predict(user, item)` is called for
/// every test triple and compared with the true rating (the paper's §6.1 protocol).
pub fn evaluate_predictions(
    test: &[Rating],
    mut predict: impl FnMut(UserId, ItemId) -> f64,
) -> EvalOutcome {
    let pairs: Vec<(f64, f64)> = test
        .iter()
        .map(|r| (predict(r.user, r.item), r.value))
        .collect();
    EvalOutcome {
        mae: mae(&pairs),
        rmse: rmse(&pairs),
        n: pairs.len(),
    }
}

/// The parameter axis of a sweep — the x-axes of the paper's §6 figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepParam {
    /// Neighbourhood size `k` (Figure 8).
    K,
    /// Generation-phase privacy budget ε (Figures 6–7).
    Epsilon,
    /// Recommendation-phase privacy budget ε′ (Figures 6–7).
    EpsilonPrime,
    /// Temporal decay α (Figure 5).
    TemporalAlpha,
    /// Fraction of overlapping users retained in training (Figure 9). Overlap points
    /// rebuild the train/test split, so only split-aware runners (the `xmap-bench`
    /// sweep runner) can execute them.
    Overlap,
}

impl SweepParam {
    /// Stable identifier used for labels and machine-readable reports.
    pub fn label(&self) -> &'static str {
        match self {
            SweepParam::K => "k",
            SweepParam::Epsilon => "epsilon",
            SweepParam::EpsilonPrime => "epsilon_prime",
            SweepParam::TemporalAlpha => "alpha",
            SweepParam::Overlap => "overlap",
        }
    }

    /// Parses the identifier produced by [`SweepParam::label`].
    pub fn parse(s: &str) -> Option<SweepParam> {
        match s {
            "k" => Some(SweepParam::K),
            "epsilon" => Some(SweepParam::Epsilon),
            "epsilon_prime" => Some(SweepParam::EpsilonPrime),
            "alpha" => Some(SweepParam::TemporalAlpha),
            "overlap" => Some(SweepParam::Overlap),
            _ => None,
        }
    }
}

/// Which measurement of an evaluation a sweep records as its y-value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMetric {
    /// Mean absolute error (the paper's headline accuracy metric).
    Mae,
    /// Root mean squared error.
    Rmse,
    /// Mean precision@N over the ranking cases.
    PrecisionAtN,
    /// Mean recall@N over the ranking cases.
    RecallAtN,
    /// Catalogue coverage of the recommendation lists.
    Coverage,
}

impl SweepMetric {
    /// Stable identifier used for labels and machine-readable reports.
    pub fn label(&self) -> &'static str {
        match self {
            SweepMetric::Mae => "mae",
            SweepMetric::Rmse => "rmse",
            SweepMetric::PrecisionAtN => "precision_at_n",
            SweepMetric::RecallAtN => "recall_at_n",
            SweepMetric::Coverage => "coverage",
        }
    }
}

/// A declarative sweep: which parameter to vary, the values to visit (in order), and
/// which metric to record. Executed by `XMapModel::sweep` (refit per point, evaluation
/// as a dataflow run) or, for [`SweepParam::Overlap`], by the `xmap-bench` sweep runner.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The swept parameter.
    pub param: SweepParam,
    /// The metric recorded at each point.
    pub metric: SweepMetric,
    /// The parameter values, visited in order.
    pub values: Vec<f64>,
}

impl SweepSpec {
    /// Creates a MAE sweep over the given values.
    pub fn new(param: SweepParam, values: Vec<f64>) -> Self {
        SweepSpec {
            param,
            metric: SweepMetric::Mae,
            values,
        }
    }

    /// Replaces the recorded metric.
    pub fn with_metric(mut self, metric: SweepMetric) -> Self {
        self.metric = metric;
        self
    }
}

/// One point of a parameter sweep: the x-value (k, α, ε, overlap fraction, …) and the
/// measured y-value (almost always MAE).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter value.
    pub x: f64,
    /// The measured value at that parameter.
    pub y: f64,
}

/// A named series of sweep points — one line of a figure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Legend label (e.g. "X-MAP-IB").
    pub label: String,
    /// The measured points, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        SweepSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(SweepPoint { x, y });
    }

    /// The point with the smallest y value, if any finite point exists.
    pub fn best(&self) -> Option<SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.y.is_finite())
            .copied()
            .min_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Whether the series is (weakly) monotonically decreasing in y — used by tests that
    /// check trends such as "MAE decreases as the overlap grows", with `slack` absorbing
    /// experimental noise.
    pub fn is_decreasing(&self, slack: f64) -> bool {
        self.points.windows(2).all(|w| w[1].y <= w[0].y + slack)
    }

    /// Mean y value over the series (NaN for an empty series).
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        self.points.iter().map(|p| p.y).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_cf::Rating;

    #[test]
    fn evaluate_predictions_aggregates_errors() {
        let test = vec![
            Rating::new(UserId(0), ItemId(0), 4.0),
            Rating::new(UserId(0), ItemId(1), 2.0),
            Rating::new(UserId(1), ItemId(0), 5.0),
        ];
        // constant predictor of 3.0
        let outcome = evaluate_predictions(&test, |_, _| 3.0);
        assert_eq!(outcome.n, 3);
        assert!((outcome.mae - (1.0 + 1.0 + 2.0) / 3.0).abs() < 1e-12);
        assert!(outcome.rmse >= outcome.mae);
        // a perfect predictor
        let perfect = evaluate_predictions(&test, |u, i| {
            test.iter()
                .find(|r| r.user == u && r.item == i)
                .unwrap()
                .value
        });
        assert_eq!(perfect.mae, 0.0);
    }

    #[test]
    fn empty_test_set_gives_nan() {
        let outcome = evaluate_predictions(&[], |_, _| 3.0);
        assert_eq!(outcome.n, 0);
        assert!(outcome.mae.is_nan());
    }

    #[test]
    fn nan_predictions_flow_through_as_span_penalties() {
        let test = vec![
            Rating::new(UserId(0), ItemId(0), 2.0),
            Rating::new(UserId(0), ItemId(1), 5.0),
        ];
        // The predictor NaN-poisons one of the two triples; the outcome must charge the
        // span-derived worst case (5.0 - 2.0 = 3.0) instead of dropping the pair.
        let outcome =
            evaluate_predictions(&test, |_, i| if i == ItemId(0) { f64::NAN } else { 5.0 });
        assert_eq!(outcome.n, 2);
        assert!(outcome.mae.is_finite(), "NaN must not leak into the MAE");
        assert!((outcome.mae - 1.5).abs() < 1e-12);
        assert!((outcome.rmse - (4.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sweep_spec_labels_round_trip() {
        for param in [
            SweepParam::K,
            SweepParam::Epsilon,
            SweepParam::EpsilonPrime,
            SweepParam::TemporalAlpha,
            SweepParam::Overlap,
        ] {
            assert_eq!(SweepParam::parse(param.label()), Some(param));
        }
        assert_eq!(SweepParam::parse("nope"), None);
        let spec = SweepSpec::new(SweepParam::K, vec![10.0, 25.0]).with_metric(SweepMetric::Rmse);
        assert_eq!(spec.metric.label(), "rmse");
        assert_eq!(spec.values, vec![10.0, 25.0]);
    }

    #[test]
    fn sweep_series_bookkeeping() {
        let mut s = SweepSeries::new("X-MAP-IB");
        s.push(10.0, 0.8);
        s.push(20.0, 0.7);
        s.push(30.0, 0.72);
        assert_eq!(s.label, "X-MAP-IB");
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.best().unwrap().x, 20.0);
        assert!(!s.is_decreasing(0.0));
        assert!(s.is_decreasing(0.05));
        assert!((s.mean_y() - (0.8 + 0.7 + 0.72) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_edge_cases() {
        let s = SweepSeries::new("empty");
        assert!(s.best().is_none());
        assert!(s.mean_y().is_nan());
        assert!(s.is_decreasing(0.0));
    }
}
