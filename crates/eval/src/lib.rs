//! # xmap-eval — metrics and evaluation protocols
//!
//! The paper evaluates along three axes (§6.1): prediction accuracy (MAE), privacy (the
//! ε / ε′ parameters, which are inputs rather than measurements) and scalability
//! (speedup). This crate provides:
//!
//! * [`metrics`] — MAE, RMSE, precision/recall@N and catalogue coverage;
//! * [`protocol`] — the shared evaluation loop (predict every hidden test rating with a
//!   system under test and aggregate the error) plus sweep bookkeeping; and
//! * [`report`] — plain-text table/series rendering used by the `figures` harness in
//!   `xmap-bench` so every reproduced table and figure prints in a uniform format.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod protocol;
pub mod report;

pub use metrics::{coverage, mae, precision_at_n, recall_at_n, rmse};
pub use protocol::{evaluate_predictions, EvalOutcome, SweepPoint, SweepSeries};
pub use report::{render_series_table, render_table};
