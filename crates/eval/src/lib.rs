//! # xmap-eval — metrics, evaluation protocols and the engine-parallel harness
//!
//! The paper evaluates along three axes (§6.1): prediction accuracy (MAE), privacy (the
//! ε / ε′ parameters, which are inputs rather than measurements) and scalability
//! (speedup). This crate provides:
//!
//! * [`metrics`] — MAE, RMSE, precision/recall@N and catalogue coverage;
//! * [`protocol`] — the serial evaluation loop (predict every hidden test rating with a
//!   system under test and aggregate the error) plus sweep bookkeeping and the
//!   declarative [`SweepSpec`];
//! * [`stage`] — the engine-parallel evaluation harness: an [`EvalBatch`] of test
//!   triples and ranking cases run as an [`EvalStage`] on the `xmap-engine` dataflow,
//!   bit-identical to the serial reference at any worker count;
//! * [`report`] — plain-text table/series rendering used by the harness binaries in
//!   `xmap-bench` so every reproduced table and figure prints in a uniform format;
//! * [`json`] — a minimal JSON tree for machine-readable reports and the CI accuracy
//!   baseline (the vendored serde is a marker stub, see the workspace `Cargo.toml`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod metrics;
pub mod protocol;
pub mod report;
pub mod stage;

pub use json::{Json, JsonError};
pub use metrics::{coverage, mae, precision_at_n, recall_at_n, rmse};
pub use protocol::{
    evaluate_predictions, EvalOutcome, SweepMetric, SweepParam, SweepPoint, SweepSeries, SweepSpec,
};
pub use report::{render_series_table, render_table};
pub use stage::{
    evaluate_batch_serial, ranking_cases_from_test, EvalBatch, EvalReport, EvalStage, EvalTarget,
    PredictorFn, RankingCase, EVAL_STAGE_NAME,
};
