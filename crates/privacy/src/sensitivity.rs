//! Sensitivity notions used by X-Map's private algorithms.
//!
//! * The **global sensitivity** of X-Sim is `|X-Sim_max − X-Sim_min| = 2` because the
//!   metric is a convex combination of adjusted-cosine values in `[-1, 1]` (Algorithm 3,
//!   step 2). PRS uses this constant.
//! * The **similarity-based sensitivity** `SS(t_i, t_j)` of Theorem 2 bounds how much the
//!   adjusted-cosine similarity between two items can change when one user's profile is
//!   added or removed. PNSA and PNCF use it to calibrate the exponential mechanism and
//!   the Laplace noise respectively.
//! * The **truncated similarity** `Ŝim(t_i, t_j) = max(Sim(t_i, t_j), Sim_k(t_i) − w)`
//!   (Algorithm 4, step 7) clips low similarities to improve the quality of privately
//!   selected neighbours (Theorems 3 and 4).

use serde::{Deserialize, Serialize};

/// A sensitivity value together with the notion it was derived under.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Sensitivity {
    /// Worst case over all possible datasets (used by PRS: `GS = 2` for X-Sim scores).
    Global(f64),
    /// Data-dependent bound for a specific record pair (used by PNSA / PNCF).
    SimilarityBased(f64),
}

impl Sensitivity {
    /// The numeric sensitivity value.
    pub fn value(&self) -> f64 {
        match *self {
            Sensitivity::Global(v) | Sensitivity::SimilarityBased(v) => v,
        }
    }

    /// The global sensitivity of any score bounded in `[-1, 1]`, e.g. X-Sim: `2`.
    pub const XSIM_GLOBAL: Sensitivity = Sensitivity::Global(2.0);
}

/// Computes the similarity-based sensitivity `SS(t_i, t_j)` of Theorem 2.
///
/// `ratings_i` and `ratings_j` are the mean-centred rating vectors of the two items
/// restricted to their *co-rating* users, aligned index-by-index (user `x` contributes
/// `ratings_i[x]` and `ratings_j[x]`). `norm_i` / `norm_j` are the L2 norms of the two
/// items' *full* mean-centred rating vectors (over all their raters, not only co-raters),
/// matching the adjusted-cosine denominator of Equation 6.
///
/// The sensitivity is the maximum of
/// * the largest single-user contribution `|r_xi · r_xj| / (‖r'_i‖ ‖r'_j‖)` where the
///   primed norms exclude that user (how much the numerator can move when a user is
///   removed), and
/// * the change of the full similarity value caused by shrinking the denominator from the
///   primed to the unprimed norms.
///
/// Degenerate vectors (zero norms, no co-raters) yield a small positive floor so that the
/// exponential mechanism and Laplace noise remain well defined.
pub fn similarity_sensitivity(
    ratings_i: &[f64],
    ratings_j: &[f64],
    norm_i: f64,
    norm_j: f64,
) -> f64 {
    const FLOOR: f64 = 1e-6;
    assert_eq!(
        ratings_i.len(),
        ratings_j.len(),
        "co-rating vectors must be aligned"
    );
    if ratings_i.is_empty() || norm_i <= 0.0 || norm_j <= 0.0 {
        return FLOOR;
    }

    let dot: f64 = ratings_i.iter().zip(ratings_j).map(|(a, b)| a * b).sum();
    let full_sim = dot / (norm_i * norm_j);

    let mut max_term: f64 = 0.0;
    for x in 0..ratings_i.len() {
        let rxi = ratings_i[x];
        let rxj = ratings_j[x];
        // Norms of the vectors with user x removed.
        let prime_i = (norm_i * norm_i - rxi * rxi).max(0.0).sqrt();
        let prime_j = (norm_j * norm_j - rxj * rxj).max(0.0).sqrt();
        if prime_i <= 1e-12 || prime_j <= 1e-12 {
            // Removing the user collapses a vector: the similarity can swing across its
            // whole range.
            max_term = max_term.max(1.0);
            continue;
        }
        let term1 = (rxi * rxj).abs() / (prime_i * prime_j);
        let term2 = (dot - rxi * rxj) / (prime_i * prime_j) - full_sim;
        max_term = max_term.max(term1).max(term2.abs());
    }

    max_term.clamp(FLOOR, 2.0)
}

/// The truncated similarity `Ŝim(t_i, t_j) = max(Sim(t_i, t_j), Sim_k(t_i) − w)` of
/// Algorithm 4, step 7: similarities far below the k-th neighbour similarity are lifted
/// to the truncation threshold so that the exponential mechanism does not waste
/// probability mass discriminating among hopeless candidates.
#[inline]
pub fn truncated_similarity(similarity: f64, kth_similarity: f64, w: f64) -> f64 {
    similarity.max(kth_similarity - w)
}

/// The truncation width `w = min(Sim_k(t_i), (4k / ε′) · SS · ln(k (|v| − k) / ρ))` of
/// Theorems 3–4 / Algorithm 4 step 3. `v_len` is the maximal rating-vector length and `ρ`
/// the failure probability. Degenerate inputs (k ≥ |v|, non-positive ε′) return
/// `kth_similarity`, i.e. maximal truncation.
pub fn truncation_width(
    kth_similarity: f64,
    k: usize,
    epsilon_prime: f64,
    sensitivity: f64,
    v_len: usize,
    rho: f64,
) -> f64 {
    // lint: float-eq — rho == 0.0 exactly is the degenerate "no smoothing" parameter.
    if k == 0 || v_len <= k || epsilon_prime <= 0.0 || !(0.0..1.0).contains(&rho) || rho == 0.0 {
        return kth_similarity;
    }
    let log_arg = (k * (v_len - k)) as f64 / rho;
    if log_arg <= 1.0 {
        return kth_similarity;
    }
    let w = (4.0 * k as f64 / epsilon_prime) * sensitivity * log_arg.ln();
    kth_similarity.min(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn global_xsim_sensitivity_is_two() {
        assert_eq!(Sensitivity::XSIM_GLOBAL.value(), 2.0);
        assert_eq!(Sensitivity::SimilarityBased(0.3).value(), 0.3);
    }

    #[test]
    fn empty_or_degenerate_vectors_get_floor() {
        assert_eq!(similarity_sensitivity(&[], &[], 1.0, 1.0), 1e-6);
        assert_eq!(similarity_sensitivity(&[1.0], &[1.0], 0.0, 1.0), 1e-6);
    }

    #[test]
    fn single_dominant_user_has_high_sensitivity() {
        // One user entirely determines the similarity: removing them collapses it.
        let s = similarity_sensitivity(&[2.0], &[2.0], 2.0, 2.0);
        assert!(s >= 1.0, "sensitivity should be large, got {s}");
    }

    #[test]
    fn many_small_contributions_have_low_sensitivity() {
        // 100 co-raters each contributing a tiny amount: removing any one barely matters.
        let ri: Vec<f64> = vec![0.1; 100];
        let rj: Vec<f64> = vec![0.1; 100];
        let norm = (100.0f64 * 0.01).sqrt();
        let s = similarity_sensitivity(&ri, &rj, norm, norm);
        assert!(s < 0.05, "sensitivity should be small, got {s}");
    }

    #[test]
    fn sensitivity_bounded_by_two() {
        let s = similarity_sensitivity(&[5.0, -5.0], &[5.0, 5.0], 5.0, 5.0);
        assert!(s <= 2.0);
    }

    #[test]
    fn truncation_lifts_low_similarities_only() {
        assert_eq!(truncated_similarity(0.9, 0.5, 0.1), 0.9);
        assert_eq!(truncated_similarity(0.1, 0.5, 0.1), 0.4);
        assert_eq!(truncated_similarity(0.4, 0.5, 0.1), 0.4);
    }

    #[test]
    fn truncation_width_degenerate_cases() {
        assert_eq!(truncation_width(0.7, 0, 0.5, 0.1, 100, 0.05), 0.7);
        assert_eq!(truncation_width(0.7, 10, 0.5, 0.1, 5, 0.05), 0.7);
        assert_eq!(truncation_width(0.7, 10, 0.0, 0.1, 100, 0.05), 0.7);
        assert_eq!(truncation_width(0.7, 10, 0.5, 0.1, 100, 0.0), 0.7);
    }

    #[test]
    fn truncation_width_capped_by_kth_similarity() {
        // Large sensitivity makes the formula huge; the width must still be <= Sim_k.
        let w = truncation_width(0.3, 20, 0.1, 1.0, 1000, 0.05);
        assert_eq!(w, 0.3);
        // Tiny sensitivity gives a small width below Sim_k.
        let w = truncation_width(0.9, 5, 10.0, 1e-4, 1000, 0.05);
        assert!(w < 0.9 && w > 0.0);
    }

    proptest! {
        /// The similarity-based sensitivity is always within (0, 2].
        #[test]
        fn sensitivity_in_range(
            pairs in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..40),
            extra_i in 0.0f64..4.0,
            extra_j in 0.0f64..4.0,
        ) {
            let ri: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let rj: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            // full norms are at least the co-rater norms (items may have extra raters)
            let norm_i = (ri.iter().map(|x| x * x).sum::<f64>() + extra_i).sqrt();
            let norm_j = (rj.iter().map(|x| x * x).sum::<f64>() + extra_j).sqrt();
            let s = similarity_sensitivity(&ri, &rj, norm_i, norm_j);
            prop_assert!(s > 0.0 && s <= 2.0, "sensitivity {s}");
        }

        /// Truncated similarity never decreases the raw similarity.
        #[test]
        fn truncation_never_decreases(sim in -1.0f64..1.0, kth in -1.0f64..1.0, w in 0.0f64..2.0) {
            prop_assert!(truncated_similarity(sim, kth, w) >= sim);
        }
    }
}
