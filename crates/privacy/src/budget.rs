//! Privacy-budget accounting.
//!
//! X-Map spends ε on AlterEgo generation (PRS) and ε′ on recommendation (split as ε′/2
//! for PNSA and ε′/2 for PNCF, composing by the sequential-composition property of
//! differential privacy, §4.4). [`PrivacyBudget`] is a small accountant that tracks how
//! much of a total budget has been consumed and refuses to overspend, so experiment code
//! cannot accidentally claim a tighter guarantee than it actually provides.

use std::fmt;

/// Error returned when a mechanism asks for more budget than remains.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetError {
    /// Amount requested by the mechanism.
    pub requested: f64,
    /// Amount still available.
    pub remaining: f64,
    /// Label of the mechanism that made the request.
    pub mechanism: String,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mechanism `{}` requested ε={} but only ε={} remains",
            self.mechanism, self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetError {}

/// A record of one budget expenditure.
#[derive(Debug, Clone, PartialEq)]
pub struct Expenditure {
    /// Label of the mechanism that spent the budget.
    pub mechanism: String,
    /// Amount of ε consumed.
    pub epsilon: f64,
}

/// Sequential-composition privacy-budget accountant.
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total: f64,
    ledger: Vec<Expenditure>,
}

impl PrivacyBudget {
    /// Creates an accountant with a total budget of `total` (must be positive and finite).
    pub fn new(total: f64) -> Self {
        assert!(
            total.is_finite() && total > 0.0,
            "total privacy budget must be positive and finite, got {total}"
        );
        PrivacyBudget {
            total,
            ledger: Vec::new(),
        }
    }

    /// The total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The amount already consumed (sum of the ledger).
    pub fn spent(&self) -> f64 {
        self.ledger.iter().map(|e| e.epsilon).sum()
    }

    /// The amount still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent()).max(0.0)
    }

    /// The accountant's floating-point slack: one fixed tolerance on the *total*
    /// consumption, relative to the budget size. The historical per-call tolerance
    /// (`ε ≤ remaining + 1e-12` on every spend) compounded: a drip of sub-tolerance
    /// spends could push total consumption arbitrarily far past the nominal ε. Bounding
    /// `spent + ε ≤ total + tolerance` instead caps the cumulative overspend at a
    /// single tolerance no matter how many spends compose.
    fn tolerance(&self) -> f64 {
        1e-12 * self.total.max(1.0)
    }

    /// Attempts to consume `epsilon` on behalf of `mechanism`. Fails without side effects
    /// if the spend would push total consumption past the budget (a single fixed
    /// tolerance on the *total* absorbs floating-point drift from repeated equal
    /// splits — see [`PrivacyBudget::tolerance`]).
    pub fn spend(&mut self, mechanism: impl Into<String>, epsilon: f64) -> Result<(), BudgetError> {
        let mechanism = mechanism.into();
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "spent ε must be positive and finite, got {epsilon}"
        );
        if self.spent() + epsilon > self.total + self.tolerance() {
            return Err(BudgetError {
                requested: epsilon,
                remaining: self.remaining(),
                mechanism,
            });
        }
        self.ledger.push(Expenditure { mechanism, epsilon });
        Ok(())
    }

    /// Spends several `(mechanism, ε)` entries atomically: either the whole batch fits
    /// in the remaining budget and every entry is recorded (in order), or nothing is.
    ///
    /// Mechanisms that compose sequentially *within one release* (PNSA + PNCF sharing
    /// ε′, §4.4) must not end up half-recorded: a ledger holding the PNSA entry but not
    /// the PNCF one would certify a guarantee the released output does not have.
    pub fn spend_all(&mut self, entries: &[(&str, f64)]) -> Result<(), BudgetError> {
        for &(mechanism, epsilon) in entries {
            assert!(
                epsilon.is_finite() && epsilon > 0.0,
                "spent ε must be positive and finite, got {epsilon} for `{mechanism}`"
            );
        }
        let requested: f64 = entries.iter().map(|&(_, e)| e).sum();
        if self.spent() + requested > self.total + self.tolerance() {
            return Err(BudgetError {
                requested,
                remaining: self.remaining(),
                mechanism: entries
                    .iter()
                    .map(|&(m, _)| m)
                    .collect::<Vec<_>>()
                    .join("+"),
            });
        }
        for &(mechanism, epsilon) in entries {
            self.ledger.push(Expenditure {
                mechanism: mechanism.to_string(),
                epsilon,
            });
        }
        Ok(())
    }

    /// The full expenditure ledger, in spending order.
    pub fn ledger(&self) -> &[Expenditure] {
        &self.ledger
    }
}

impl xmap_store::Codec for Expenditure {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_str(&self.mechanism);
        e.put_f64(self.epsilon);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(Expenditure {
            mechanism: d.take_str()?,
            epsilon: d.take_f64()?,
        })
    }
}

/// On-disk codec for the accountant: the total and the full ledger, so a recovered
/// model reports exactly the expenditures of the model that was persisted. Decode
/// rebuilds the struct directly (it does **not** replay `spend`, which would
/// re-enforce the budget against itself) but still refuses a non-finite or
/// non-positive total, preserving the `new()` invariant.
impl xmap_store::Codec for PrivacyBudget {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_f64(self.total);
        self.ledger.enc(e);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        let total = d.take_f64()?;
        if !total.is_finite() || total <= 0.0 {
            return Err(d.corrupt(format!("privacy budget total {total} is not positive")));
        }
        Ok(PrivacyBudget {
            total,
            ledger: Vec::dec(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn spend_and_track() {
        let mut b = PrivacyBudget::new(1.0);
        assert_eq!(b.total(), 1.0);
        b.spend("PRS", 0.3).unwrap();
        b.spend("PNSA", 0.35).unwrap();
        assert!((b.spent() - 0.65).abs() < 1e-12);
        assert!((b.remaining() - 0.35).abs() < 1e-12);
        assert_eq!(b.ledger().len(), 2);
        assert_eq!(b.ledger()[0].mechanism, "PRS");
    }

    #[test]
    fn overspending_is_rejected_without_side_effects() {
        let mut b = PrivacyBudget::new(0.5);
        b.spend("PRS", 0.4).unwrap();
        let err = b.spend("PNCF", 0.2).unwrap_err();
        assert_eq!(err.mechanism, "PNCF");
        assert!((err.remaining - 0.1).abs() < 1e-12);
        assert!(err.to_string().contains("PNCF"));
        // ledger unchanged
        assert_eq!(b.ledger().len(), 1);
        assert!((b.remaining() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn exact_exhaustion_is_allowed() {
        let mut b = PrivacyBudget::new(0.8);
        b.spend("PNSA", 0.4).unwrap();
        b.spend("PNCF", 0.4).unwrap();
        assert!(b.remaining() < 1e-12);
        assert!(b.spend("extra", 0.01).is_err());
    }

    #[test]
    fn spend_all_is_atomic() {
        let mut b = PrivacyBudget::new(0.8);
        b.spend_all(&[("PNSA", 0.4), ("PNCF", 0.4)]).unwrap();
        assert_eq!(b.ledger().len(), 2);
        assert_eq!(b.ledger()[0].mechanism, "PNSA");
        assert_eq!(b.ledger()[1].mechanism, "PNCF");
        assert!(b.remaining() < 1e-12);

        // the pair does not fit: neither half may be recorded
        let mut b = PrivacyBudget::new(0.5);
        let err = b.spend_all(&[("PNSA", 0.4), ("PNCF", 0.4)]).unwrap_err();
        assert_eq!(err.mechanism, "PNSA+PNCF");
        assert!((err.requested - 0.8).abs() < 1e-12);
        assert!(b.ledger().is_empty(), "failed batch must record nothing");
        assert!((b.remaining() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn many_tiny_spends_cannot_drip_past_the_total() {
        // Regression: the per-call tolerance (`ε ≤ remaining + 1e-12`) let an
        // unbounded drip of sub-tolerance spends push total consumption past ε — each
        // call saw remaining = 0 and still granted another 1e-12. The bound is now on
        // the cumulative total.
        let mut b = PrivacyBudget::new(1.0);
        b.spend("PNSA", 0.5).unwrap();
        b.spend("PNCF", 0.5).unwrap();
        let mut rejected_at = None;
        for i in 0..10_000 {
            if b.spend(format!("drip{i}"), 1e-13).is_err() {
                rejected_at = Some(i);
                break;
            }
        }
        let rejected_at = rejected_at.expect("the drip must eventually be refused");
        assert!(
            rejected_at <= 11,
            "cumulative overspend must stay within one tolerance (drip ran {rejected_at} times)"
        );
        assert!(
            b.spent() <= b.total() + 2e-12,
            "total consumption {} exceeded ε plus a single tolerance",
            b.spent()
        );
        // a failed drip leaves the ledger untouched
        assert_eq!(b.ledger().len(), 2 + rejected_at);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_total_budget_panics() {
        let _ = PrivacyBudget::new(0.0);
    }

    #[test]
    #[should_panic(expected = "spent ε")]
    fn non_positive_spend_panics() {
        let mut b = PrivacyBudget::new(1.0);
        let _ = b.spend("x", 0.0);
    }

    proptest! {
        /// Spent + remaining always equals the total (within float tolerance), and the
        /// accountant never lets total spending exceed the budget.
        #[test]
        fn conservation(total in 0.1f64..10.0, spends in proptest::collection::vec(0.001f64..1.0, 0..50)) {
            let mut b = PrivacyBudget::new(total);
            for (i, s) in spends.iter().enumerate() {
                let _ = b.spend(format!("m{i}"), *s);
            }
            prop_assert!(b.spent() <= b.total() + 1e-9);
            prop_assert!((b.spent() + b.remaining() - b.total()).abs() < 1e-9);
        }
    }
}
