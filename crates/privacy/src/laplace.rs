//! The Laplace mechanism.
//!
//! PNCF (Algorithm 5) perturbs each neighbour similarity with `Lap(SS(t_k, t_j) / (ε′/2))`
//! noise before it enters the prediction formula. This module provides Laplace sampling
//! via inverse-CDF transform plus a small convenience wrapper that fixes the privacy
//! parameter and scale policy.

use rand::Rng;

/// Draws one sample from the Laplace distribution with location 0 and scale `b`.
///
/// A scale of zero returns exactly zero (the degenerate "no privacy required" case, used
/// when the sensitivity of a query is zero). Negative or non-finite scales panic, as they
/// indicate a logic error in sensitivity computation rather than a recoverable condition.
pub fn laplace_noise<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    assert!(
        scale.is_finite() && scale >= 0.0,
        "Laplace scale must be finite and non-negative, got {scale}"
    );
    // lint: float-eq — scale == 0.0 exactly means "no noise" (infinite epsilon).
    if scale == 0.0 {
        return 0.0;
    }
    // Inverse CDF: X = -b * sign(u) * ln(1 - 2|u|), u ~ Uniform(-1/2, 1/2).
    let u: f64 = rng.gen_range(-0.5..0.5);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// A Laplace mechanism configured with a privacy parameter ε.
///
/// For a query with L1 sensitivity `s`, [`LaplaceMechanism::perturb`] adds noise with
/// scale `s / ε`, which is the standard calibration achieving ε-differential privacy
/// (Dwork et al., 2006 — reference \[14\] in the paper).
#[derive(Clone, Copy, Debug)]
pub struct LaplaceMechanism {
    epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism with privacy parameter ε (> 0, finite).
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        LaplaceMechanism { epsilon }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Returns `value + Lap(sensitivity / ε)`.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, value: f64, sensitivity: f64) -> f64 {
        assert!(
            sensitivity.is_finite() && sensitivity >= 0.0,
            "sensitivity must be finite and non-negative, got {sensitivity}"
        );
        value + laplace_noise(rng, sensitivity / self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_scale_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(laplace_noise(&mut rng, 0.0), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "Laplace scale")]
    fn negative_scale_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = laplace_noise(&mut rng, -1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        let _ = LaplaceMechanism::new(0.0);
    }

    #[test]
    fn sample_mean_is_close_to_zero_and_variance_matches() {
        // Var[Lap(b)] = 2 b^2.
        let mut rng = StdRng::seed_from_u64(7);
        let b = 2.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| laplace_noise(&mut rng, b)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 2.0 * b * b).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn larger_epsilon_means_less_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let strong = LaplaceMechanism::new(0.1);
        let weak = LaplaceMechanism::new(10.0);
        let n = 20_000;
        let avg_abs = |mech: &LaplaceMechanism, rng: &mut StdRng| {
            (0..n)
                .map(|_| (mech.perturb(rng, 0.0, 1.0)).abs())
                .sum::<f64>()
                / n as f64
        };
        let noisy = avg_abs(&strong, &mut rng);
        let quiet = avg_abs(&weak, &mut rng);
        assert!(
            noisy > 5.0 * quiet,
            "ε=0.1 should be much noisier than ε=10: {noisy} vs {quiet}"
        );
    }

    #[test]
    fn perturb_recentres_on_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mech = LaplaceMechanism::new(1.0);
        let n = 50_000;
        let mean = (0..n)
            .map(|_| mech.perturb(&mut rng, 42.0, 0.5))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 42.0).abs() < 0.05, "mean {mean}");
        assert_eq!(mech.epsilon(), 1.0);
    }

    #[test]
    fn empirical_privacy_ratio_respects_epsilon() {
        // Check the defining DP inequality on a simple counting query (sensitivity 1)
        // by histogramming noisy outputs for two adjacent databases (true values 10, 11).
        let eps = 0.5;
        let mech = LaplaceMechanism::new(eps);
        let mut rng = StdRng::seed_from_u64(23);
        let n = 400_000;
        let bucket = |x: f64| (x.round() as i64).clamp(0, 21);
        let mut h1 = [0f64; 22];
        let mut h2 = [0f64; 22];
        for _ in 0..n {
            h1[bucket(mech.perturb(&mut rng, 10.0, 1.0)) as usize] += 1.0;
            h2[bucket(mech.perturb(&mut rng, 11.0, 1.0)) as usize] += 1.0;
        }
        for b in 5..=16 {
            let p1 = h1[b] / n as f64;
            let p2 = h2[b] / n as f64;
            if p1 > 1e-3 && p2 > 1e-3 {
                let ratio = (p1 / p2).max(p2 / p1);
                // Rounding buckets of width 1 can add at most a factor e^{eps} on top of
                // the exact bound; allow generous slack for sampling error.
                assert!(
                    ratio <= (2.0 * eps).exp() * 1.25,
                    "bucket {b}: ratio {ratio} exceeds DP-style bound"
                );
            }
        }
    }

    proptest! {
        /// Noise is finite for any reasonable scale.
        #[test]
        fn noise_always_finite(seed in 0u64..1000, scale in 0.0f64..100.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = laplace_noise(&mut rng, scale);
            prop_assert!(x.is_finite());
        }
    }
}
