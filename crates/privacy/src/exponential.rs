//! The exponential mechanism.
//!
//! Both PRS (Algorithm 3) and PNSA (Algorithm 4) are instances of McSherry & Talwar's
//! exponential mechanism: each candidate `t_j` is selected with probability proportional
//! to `exp(ε · q(t_j) / (2 · Δq))`, where `q` is the score (X-Sim for PRS, truncated
//! similarity for PNSA) and `Δq` its sensitivity. This module provides the weighting and
//! sampling machinery in a numerically robust way (scores are shifted by their maximum
//! before exponentiation so that large `ε/Δq` ratios cannot overflow).

use rand::Rng;
use std::fmt;

/// Errors from the exponential mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum ExponentialError {
    /// The candidate list was empty.
    NoCandidates,
    /// ε was not positive and finite.
    InvalidEpsilon(f64),
    /// The sensitivity was not positive and finite.
    InvalidSensitivity(f64),
    /// A candidate score was NaN or infinite.
    InvalidScore(f64),
}

impl fmt::Display for ExponentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExponentialError::NoCandidates => {
                write!(f, "exponential mechanism needs at least one candidate")
            }
            ExponentialError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            ExponentialError::InvalidSensitivity(s) => {
                write!(f, "sensitivity must be positive and finite, got {s}")
            }
            ExponentialError::InvalidScore(s) => {
                write!(f, "candidate score must be finite, got {s}")
            }
        }
    }
}

impl std::error::Error for ExponentialError {}

/// Computes the normalised selection probabilities `exp(ε q_i / (2Δ)) / Σ_j exp(ε q_j / (2Δ))`.
///
/// The probabilities are returned in the same order as `scores`. Scores are shifted by
/// their maximum before exponentiation, which leaves the distribution unchanged but keeps
/// the arithmetic in a safe range.
pub fn exponential_weights(
    scores: &[f64],
    epsilon: f64,
    sensitivity: f64,
) -> Result<Vec<f64>, ExponentialError> {
    if scores.is_empty() {
        return Err(ExponentialError::NoCandidates);
    }
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(ExponentialError::InvalidEpsilon(epsilon));
    }
    if !(sensitivity.is_finite() && sensitivity > 0.0) {
        return Err(ExponentialError::InvalidSensitivity(sensitivity));
    }
    if let Some(&bad) = scores.iter().find(|s| !s.is_finite()) {
        return Err(ExponentialError::InvalidScore(bad));
    }

    let factor = epsilon / (2.0 * sensitivity);
    let max_score = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut weights: Vec<f64> = scores
        .iter()
        .map(|&s| (factor * (s - max_score)).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    // total >= 1 because the maximum contributes exp(0) = 1.
    for w in &mut weights {
        *w /= total;
    }
    Ok(weights)
}

/// Samples one candidate index according to the exponential-mechanism distribution.
///
/// This is the primitive behind PRS's "sample an element from I(t_i) according to their
/// probability" step and PNSA's per-slot sampling.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    scores: &[f64],
    epsilon: f64,
    sensitivity: f64,
) -> Result<usize, ExponentialError> {
    let weights = exponential_weights(scores, epsilon, sensitivity)?;
    let mut u: f64 = rng.gen_range(0.0..1.0);
    for (idx, w) in weights.iter().enumerate() {
        if u < *w {
            return Ok(idx);
        }
        u -= w;
    }
    // Floating point slack: fall back to the last candidate.
    Ok(weights.len() - 1)
}

/// Samples `count` distinct candidate indices *without replacement*, re-normalising the
/// remaining weights after every draw. PNSA selects its k private neighbours this way
/// (Algorithm 4, step 10: "sample an element from C1 and C0 without replacement").
pub fn exponential_mechanism_without_replacement<R: Rng + ?Sized>(
    rng: &mut R,
    scores: &[f64],
    epsilon: f64,
    sensitivity: f64,
    count: usize,
) -> Result<Vec<usize>, ExponentialError> {
    if scores.is_empty() {
        return Err(ExponentialError::NoCandidates);
    }
    let mut remaining: Vec<usize> = (0..scores.len()).collect();
    let mut selected = Vec::with_capacity(count.min(scores.len()));
    while selected.len() < count && !remaining.is_empty() {
        let sub_scores: Vec<f64> = remaining.iter().map(|&i| scores[i]).collect();
        let picked = exponential_mechanism(rng, &sub_scores, epsilon, sensitivity)?;
        selected.push(remaining.remove(picked));
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_sum_to_one_and_order_follows_scores() {
        let scores = [0.9, 0.1, 0.5];
        let w = exponential_weights(&scores, 1.0, 2.0).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[2] && w[2] > w[1]);
    }

    #[test]
    fn equal_scores_give_uniform_weights() {
        let w = exponential_weights(&[0.3, 0.3, 0.3, 0.3], 0.5, 2.0).unwrap();
        for x in &w {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn errors_on_bad_inputs() {
        assert_eq!(
            exponential_weights(&[], 1.0, 2.0).unwrap_err(),
            ExponentialError::NoCandidates
        );
        assert!(matches!(
            exponential_weights(&[1.0], 0.0, 2.0).unwrap_err(),
            ExponentialError::InvalidEpsilon(_)
        ));
        assert!(matches!(
            exponential_weights(&[1.0], 1.0, 0.0).unwrap_err(),
            ExponentialError::InvalidSensitivity(_)
        ));
        assert!(matches!(
            exponential_weights(&[f64::NAN], 1.0, 2.0).unwrap_err(),
            ExponentialError::InvalidScore(_)
        ));
    }

    #[test]
    fn extreme_scores_do_not_overflow() {
        let w = exponential_weights(&[1e6, -1e6], 10.0, 0.001).unwrap();
        assert!(w.iter().all(|x| x.is_finite()));
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[0] > 0.999);
    }

    #[test]
    fn higher_epsilon_concentrates_on_best_candidate() {
        let scores = [1.0, 0.0];
        let low = exponential_weights(&scores, 0.1, 2.0).unwrap();
        let high = exponential_weights(&scores, 8.0, 2.0).unwrap();
        assert!(
            high[0] > low[0],
            "higher ε should favour the best item more strongly"
        );
        assert!(high[0] > 0.85);
        assert!(low[0] < 0.55);
    }

    #[test]
    fn sampling_frequency_matches_weights() {
        let scores = [1.0, 0.5, -1.0];
        let eps = 2.0;
        let sens = 2.0;
        let w = exponential_weights(&scores, eps, sens).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[exponential_mechanism(&mut rng, &scores, eps, sens).unwrap()] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - w[i]).abs() < 0.01,
                "candidate {i}: freq {freq} vs weight {}",
                w[i]
            );
        }
    }

    #[test]
    fn without_replacement_returns_distinct_indices() {
        let scores = [0.2, 0.9, 0.1, 0.7, 0.5];
        let mut rng = StdRng::seed_from_u64(5);
        let sel =
            exponential_mechanism_without_replacement(&mut rng, &scores, 1.0, 2.0, 3).unwrap();
        assert_eq!(sel.len(), 3);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn without_replacement_caps_at_candidate_count() {
        let scores = [0.1, 0.2];
        let mut rng = StdRng::seed_from_u64(5);
        let sel =
            exponential_mechanism_without_replacement(&mut rng, &scores, 1.0, 2.0, 10).unwrap();
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn empirical_dp_inequality_holds_for_adjacent_score_vectors() {
        // Two score vectors differing by at most the sensitivity in each entry (the
        // defining property of adjacent databases for a query with that sensitivity).
        // The selection probability of any candidate may change by at most e^{ε}.
        let eps = 0.8;
        let sens = 1.0;
        let q1 = [0.9, 0.2, 0.5, 0.4];
        let q2 = [0.9 - sens, 0.2, 0.5 + sens, 0.4];
        let w1 = exponential_weights(&q1, eps, sens).unwrap();
        let w2 = exponential_weights(&q2, eps, sens).unwrap();
        for i in 0..4 {
            let ratio = (w1[i] / w2[i]).max(w2[i] / w1[i]);
            assert!(ratio <= eps.exp() + 1e-9, "candidate {i}: ratio {ratio}");
        }
    }

    proptest! {
        /// Probabilities are a valid distribution for arbitrary finite scores.
        #[test]
        fn weights_form_distribution(
            scores in proptest::collection::vec(-10.0f64..10.0, 1..50),
            eps in 0.01f64..5.0,
            sens in 0.01f64..5.0,
        ) {
            let w = exponential_weights(&scores, eps, sens).unwrap();
            prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(w.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        }

        /// The sampler always returns a valid index.
        #[test]
        fn sampler_in_range(
            scores in proptest::collection::vec(-5.0f64..5.0, 1..30),
            seed in 0u64..500,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let idx = exponential_mechanism(&mut rng, &scores, 1.0, 2.0).unwrap();
            prop_assert!(idx < scores.len());
        }
    }
}
