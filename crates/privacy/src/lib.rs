//! # xmap-privacy — differential-privacy substrate
//!
//! X-Map composes three differentially-private mechanisms (§4 of the paper):
//!
//! 1. **PRS** (Private Replacement Selection, Algorithm 3) — an instance of the
//!    *exponential mechanism* over X-Sim scores, giving ε-DP AlterEgo construction.
//! 2. **PNSA** (Private Neighbour Selection, Algorithm 4) — again an exponential
//!    mechanism, this time over *truncated similarities* with a *similarity-based
//!    sensitivity*, giving ε′/2-DP neighbour selection.
//! 3. **PNCF** (Private Recommendation, Algorithm 5) — Laplace noise calibrated to the
//!    similarity-based sensitivity added to neighbour similarities, giving the other
//!    ε′/2 so that PNSA + PNCF compose to ε′-DP.
//!
//! This crate implements the mechanism-level machinery those algorithms need, with no
//! knowledge of recommenders: Laplace sampling, the exponential mechanism over scored
//! candidates, sensitivity records, truncated similarity, and a sequential-composition
//! privacy-budget accountant. The recommender-specific score functions live in
//! `xmap-core`.
//!
//! All mechanisms take a caller-provided [`rand::Rng`] so behaviour is reproducible
//! under seeded generators in tests and experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod exponential;
pub mod laplace;
pub mod sensitivity;

pub use budget::{BudgetError, PrivacyBudget};
pub use exponential::{exponential_mechanism, exponential_weights, ExponentialError};
pub use laplace::{laplace_noise, LaplaceMechanism};
pub use sensitivity::{similarity_sensitivity, truncated_similarity, Sensitivity};
