//! Strongly typed identifiers for users, items and domains.
//!
//! The paper's data model (Table 1) speaks of a set of users `U`, a set of items `I` and
//! domains `D^S` / `D^T`. All identifiers in this workspace are dense `u32` indices wrapped
//! in newtypes so that a user index can never be confused with an item index at compile
//! time, while staying 4 bytes wide for cache-friendly adjacency lists.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user (dense index into a [`crate::RatingMatrix`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Identifier of an item (dense index into a [`crate::RatingMatrix`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

/// Identifier of an application domain (e.g. movies = 0, books = 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainId(pub u16);

impl UserId {
    /// Returns the raw index as a `usize` for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// Returns the raw index as a `usize` for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DomainId {
    /// The conventional source domain used throughout examples and tests.
    pub const SOURCE: DomainId = DomainId(0);
    /// The conventional target domain used throughout examples and tests.
    pub const TARGET: DomainId = DomainId(1);

    /// Returns the raw index as a `usize` for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<u16> for DomainId {
    fn from(v: u16) -> Self {
        DomainId(v)
    }
}

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(UserId(1) < UserId(2));
        assert!(ItemId(0) < ItemId(10));
        assert!(DomainId(0) < DomainId(1));
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(UserId(7).to_string(), "u7");
        assert_eq!(ItemId(3).to_string(), "i3");
        assert_eq!(DomainId(1).to_string(), "d1");
        assert_eq!(format!("{:?}", UserId(7)), "u7");
    }

    #[test]
    fn ids_round_trip_through_index() {
        assert_eq!(UserId(42).index(), 42);
        assert_eq!(ItemId(42).index(), 42);
        assert_eq!(DomainId(3).index(), 3);
    }

    #[test]
    fn ids_convert_from_raw_integers() {
        assert_eq!(UserId::from(5u32), UserId(5));
        assert_eq!(ItemId::from(5u32), ItemId(5));
        assert_eq!(DomainId::from(2u16), DomainId(2));
    }

    #[test]
    fn domain_constants_are_distinct() {
        assert_ne!(DomainId::SOURCE, DomainId::TARGET);
    }

    #[test]
    fn ids_stay_compact() {
        // The dense-index layout the adjacency arenas rely on: ids are exactly
        // as wide as their raw integer, with no niche or padding overhead.
        assert_eq!(std::mem::size_of::<UserId>(), 4);
        assert_eq!(std::mem::size_of::<ItemId>(), 4);
        assert_eq!(std::mem::size_of::<DomainId>(), 2);
        assert_eq!(std::mem::size_of::<Option<ItemId>>(), 8);
    }
}
