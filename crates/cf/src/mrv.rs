//! MRV-split accumulators: deterministic sharding of write-side hotspots.
//!
//! When many rating deltas touch the same hot key — a prolific user whose average is
//! being maintained, or a head-of-power-law item whose similarity statistics absorb
//! most co-rating updates — a single accumulator cell serializes every update. The
//! *Multi-Record Values* technique (Faria & Pereira, SIGMOD 2023) splits one logical
//! value into `n_shards` physical records so commutative updates land on different
//! shards and proceed in parallel; reading the value merges the shards.
//!
//! Floating-point addition is **not** associative, so a naive MRV split would let the
//! merged bits depend on which thread got which update. This module therefore makes
//! both the routing and the merge *data-derived and deterministic*:
//!
//! * an update's shard is a pure function of its **occurrence position** in the event
//!   sequence (`position % n_shards`), never of the executing thread;
//! * each shard folds its sub-sequence in position order;
//! * [`MrvSplit::merge`] folds the shard partials in shard-index order.
//!
//! The *serial reference* of an MRV accumulator is this exact routed fold executed on
//! one thread ([`MrvSplit::serial`]). Any parallel execution that assigns whole shards
//! to tasks reproduces the reference bit-for-bit, because every shard sees the same
//! sub-sequence in the same order and the merge order is fixed. Integer counters
//! ([`MrvCounterSplit`]) are exactly commutative, but they go through the same routed
//! discipline so both accumulator families share one contract.
//!
//! [`route_events`] / [`merge_cells`] extend the split from one hot key to a batch of
//! keyed events (per-user rating sums, per-item touch counts): events are routed to
//! `(key, shard)` cells by their per-key occurrence index, cells can be folded
//! independently (one task per cell), and the merge recombines cells in `(key, shard)`
//! order.

use serde::{Deserialize, Serialize};

/// One shard of a floating-point sum/count accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MrvShard {
    /// Sum of the values routed to this shard, folded in position order.
    pub sum: f64,
    /// Number of values routed to this shard.
    pub count: u64,
}

impl MrvShard {
    /// The empty shard (identity of the merge).
    pub fn empty() -> Self {
        MrvShard::default()
    }

    /// Folds one value into the shard.
    pub fn record(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Folds another shard partial into this one (used by the in-order merge).
    pub fn absorb(&mut self, other: &MrvShard) {
        self.sum += other.sum;
        self.count += other.count;
    }

    /// The mean of the accumulated values, or `None` if the shard is empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// One logical floating-point accumulator split into position-routed shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MrvSplit {
    shards: Vec<MrvShard>,
}

impl MrvSplit {
    /// Creates a split with `n_shards` empty shards (clamped to at least one).
    pub fn new(n_shards: usize) -> Self {
        MrvSplit {
            shards: vec![MrvShard::empty(); n_shards.max(1)],
        }
    }

    /// Assembles a split from externally folded shard partials (the parallel path:
    /// one task folds each shard's sub-sequence, then hands the partials back here).
    pub fn from_shards(shards: Vec<MrvShard>) -> Self {
        assert!(!shards.is_empty(), "an MRV split needs at least one shard");
        MrvSplit { shards }
    }

    /// The serial reference: routes every value by its position and folds the shards
    /// on the calling thread. Parallel executions must be bit-equal to this.
    pub fn serial(values: &[f64], n_shards: usize) -> Self {
        let mut split = MrvSplit::new(n_shards);
        for (position, &value) in values.iter().enumerate() {
            split.record(position, value);
        }
        split
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard an update at `position` is routed to. Pure function of the data's
    /// position in the event sequence — never of the executing thread.
    pub fn shard_of(&self, position: usize) -> usize {
        position % self.shards.len()
    }

    /// Routes `value` (the `position`-th event of the sequence) to its shard.
    pub fn record(&mut self, position: usize, value: f64) {
        let shard = self.shard_of(position);
        self.shards[shard].record(value);
    }

    /// The shard partials, in shard-index order.
    pub fn shards(&self) -> &[MrvShard] {
        &self.shards
    }

    /// Merges the shard partials in shard-index order. This order is part of the
    /// contract: it is what makes the merged bits independent of which thread folded
    /// which shard.
    pub fn merge(&self) -> MrvShard {
        let mut total = MrvShard::empty();
        for shard in &self.shards {
            total.absorb(shard);
        }
        total
    }
}

/// One logical integer counter split into position-routed shards. Integer addition is
/// exactly commutative, but the counter goes through the same routing discipline as
/// [`MrvSplit`] so both accumulator families verify against one serial reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrvCounterSplit {
    shards: Vec<u64>,
}

impl MrvCounterSplit {
    /// Creates a split with `n_shards` zeroed shards (clamped to at least one).
    pub fn new(n_shards: usize) -> Self {
        MrvCounterSplit {
            shards: vec![0; n_shards.max(1)],
        }
    }

    /// Assembles a split from externally folded shard partials.
    pub fn from_shards(shards: Vec<u64>) -> Self {
        assert!(!shards.is_empty(), "an MRV split needs at least one shard");
        MrvCounterSplit { shards }
    }

    /// The shard an update at `position` is routed to.
    pub fn shard_of(&self, position: usize) -> usize {
        position % self.shards.len()
    }

    /// Adds `amount` to the shard owning `position`.
    pub fn add(&mut self, position: usize, amount: u64) {
        let shard = self.shard_of(position);
        self.shards[shard] += amount;
    }

    /// The shard partials, in shard-index order.
    pub fn shards(&self) -> &[u64] {
        &self.shards
    }

    /// Merges the shard partials in shard-index order.
    pub fn merge(&self) -> u64 {
        self.shards.iter().sum()
    }
}

/// One `(key, shard)` cell of a keyed MRV accumulation: the sub-sequence of values a
/// single fold task will consume, in position order.
#[derive(Debug, Clone, PartialEq)]
pub struct MrvCell<K> {
    /// The hot key this cell contributes to.
    pub key: K,
    /// Which of the key's shards this cell is.
    pub shard: usize,
    /// The values routed here, in the order they occurred in the event stream.
    pub values: Vec<f64>,
}

impl<K> MrvCell<K> {
    /// Folds this cell's values in order — the unit of parallel work.
    pub fn fold(&self) -> MrvShard {
        let mut shard = MrvShard::empty();
        for &value in &self.values {
            shard.record(value);
        }
        shard
    }
}

/// Routes a stream of keyed events into `(key, shard)` cells.
///
/// An event's shard is its **per-key occurrence index** modulo `n_shards`, so routing
/// depends only on the data. The returned cells are sorted by `(key, shard)` — the
/// deterministic merge order — and each cell's values appear in stream order. Cells
/// can then be folded independently ([`MrvCell::fold`], one task per cell) and the
/// partials recombined with [`merge_cells`].
pub fn route_events<K, I>(events: I, n_shards: usize) -> Vec<MrvCell<K>>
where
    K: Copy + Ord,
    I: IntoIterator<Item = (K, f64)>,
{
    let n_shards = n_shards.max(1);
    // Tag each event with its per-key occurrence index, then group by (key, shard).
    let mut tagged: Vec<(K, usize, usize, f64)> = Vec::new();
    let mut seen: Vec<(K, usize)> = Vec::new();
    for (position, (key, value)) in events.into_iter().enumerate() {
        let occurrence = match seen.binary_search_by(|probe| probe.0.cmp(&key)) {
            Ok(ix) => {
                let occ = seen[ix].1;
                seen[ix].1 += 1;
                occ
            }
            Err(ix) => {
                seen.insert(ix, (key, 1));
                0
            }
        };
        tagged.push((key, occurrence % n_shards, position, value));
    }
    tagged.sort_by_key(|t| (t.0, t.1, t.2));

    let mut cells: Vec<MrvCell<K>> = Vec::new();
    for (key, shard, _, value) in tagged {
        match cells.last_mut() {
            Some(cell) if cell.key == key && cell.shard == shard => cell.values.push(value),
            _ => cells.push(MrvCell {
                key,
                shard,
                values: vec![value],
            }),
        }
    }
    cells
}

/// Merges folded cell partials back into one accumulator value per key.
///
/// `folded` must pair each cell key of a [`route_events`] result with its fold, in
/// the same (already deterministic) `(key, shard)` order. Returns `(key, merged)`
/// pairs sorted by key.
pub fn merge_cells<K, I>(folded: I) -> Vec<(K, MrvShard)>
where
    K: Copy + Ord,
    I: IntoIterator<Item = (K, MrvShard)>,
{
    let mut merged: Vec<(K, MrvShard)> = Vec::new();
    for (key, partial) in folded {
        match merged.last_mut() {
            Some((last, total)) if *last == key => total.absorb(&partial),
            _ => merged.push((key, partial)),
        }
    }
    merged
}

/// The serial reference of a keyed MRV accumulation: route, fold and merge on the
/// calling thread. Parallel executions over the same routed cells are bit-equal.
pub fn serial_keyed_reference<K, I>(events: I, n_shards: usize) -> Vec<(K, MrvShard)>
where
    K: Copy + Ord,
    I: IntoIterator<Item = (K, f64)>,
{
    let cells = route_events(events, n_shards);
    merge_cells(cells.into_iter().map(|c| (c.key, c.fold())))
}

/// Folds routed cells on facade threads — one thread per cell — and merges the
/// partials in the cells' (already deterministic) `(key, shard)` order.
///
/// Bit-equal to [`serial_keyed_reference`] over the same events by construction:
/// each thread folds exactly one cell's sub-sequence in position order, joins hand
/// the partials back in cell order, and [`merge_cells`] recombines them in that
/// order. Running on `xmap_engine::sync::thread` (plain `std` threads outside a
/// model run) lets `xmap-check` explore the fold's schedules exhaustively.
pub fn fold_cells_parallel<K>(cells: &[MrvCell<K>]) -> Vec<(K, MrvShard)>
where
    K: Copy + Ord + Send + 'static,
{
    let handles: Vec<_> = cells
        .iter()
        .map(|cell| {
            let cell = cell.clone();
            xmap_engine::sync::thread::spawn(move || (cell.key, cell.fold()))
        })
        .collect();
    merge_cells(handles.into_iter().map(|h| {
        h.join().expect("a cell fold is pure and cannot panic") // lint: panic — reviewed invariant
    }))
}

/// The shared-memory form of [`MrvSplit`] for concurrent writers: each shard lives
/// in its own facade `UnsafeCell`, so threads that own **disjoint** shards update
/// them in parallel with no synchronization — that disjointness is exactly the MRV
/// contention-splitting idea, and under `xmap-check` it is *verified*: two threads
/// touching the same shard without ordering is reported as a data race.
///
/// # Safety contract
/// At most one thread may write a given shard at a time, and [`Self::merge`] /
/// [`Self::snapshot`] may only run once every writer has been joined (the join
/// edge is what makes the reads race-free).
#[derive(Debug, Default)]
pub struct ConcurrentMrvSplit {
    shards: Vec<xmap_engine::sync::UnsafeCell<MrvShard>>,
}

// SAFETY: all shared access goes through the facade `UnsafeCell`, whose contract
// (single writer per shard, reads only after joining writers) callers must uphold;
// the model checker enforces it with the happens-before race detector.
unsafe impl Send for ConcurrentMrvSplit {}
unsafe impl Sync for ConcurrentMrvSplit {}

impl ConcurrentMrvSplit {
    /// Creates a split with `n_shards` empty shards (clamped to at least one).
    pub fn new(n_shards: usize) -> Self {
        ConcurrentMrvSplit {
            shards: (0..n_shards.max(1))
                .map(|_| xmap_engine::sync::UnsafeCell::new(MrvShard::empty()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard an update at `position` is routed to (same routing as
    /// [`MrvSplit::shard_of`]).
    pub fn shard_of(&self, position: usize) -> usize {
        position % self.shards.len()
    }

    /// Folds `value` into `shard`. Caller contract: no other thread accesses this
    /// shard concurrently (see the type-level safety contract).
    pub fn record(&self, shard: usize, value: f64) {
        self.shards[shard].with_mut(|p| {
            // SAFETY: shard ownership is the caller's contract; the facade cell
            // reports a violation as a data race under the model checker.
            unsafe { (*p).record(value) }
        });
    }

    /// Merges the shard partials in shard-index order. Caller contract: every
    /// writer has been joined.
    pub fn merge(&self) -> MrvShard {
        let mut total = MrvShard::empty();
        for cell in &self.shards {
            // SAFETY: writers are joined per the caller contract, so this read
            // happens-after every write.
            cell.with(|p| total.absorb(unsafe { &*p }));
        }
        total
    }

    /// The shard partials, in shard-index order (same caller contract as
    /// [`Self::merge`]).
    pub fn snapshot(&self) -> Vec<MrvShard> {
        self.shards
            .iter()
            // SAFETY: writers are joined per the caller contract.
            .map(|cell| cell.with(|p| unsafe { *p }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn threaded_split(values: &[f64], n_shards: usize) -> MrvSplit {
        // One thread per shard, each folding its own routed sub-sequence.
        let n_shards = n_shards.max(1);
        let shards: Vec<MrvShard> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_shards)
                .map(|shard| {
                    scope.spawn(move || {
                        let mut partial = MrvShard::empty();
                        for (position, &value) in values.iter().enumerate() {
                            if position % n_shards == shard {
                                partial.record(value);
                            }
                        }
                        partial
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        MrvSplit::from_shards(shards)
    }

    #[test]
    fn empty_split_merges_to_identity() {
        let split = MrvSplit::new(4);
        assert_eq!(split.merge(), MrvShard::empty());
        assert_eq!(split.merge().mean(), None);
        assert_eq!(MrvCounterSplit::new(3).merge(), 0);
    }

    #[test]
    fn single_shard_degenerates_to_a_plain_fold() {
        let values = [1.5, 2.25, -0.75, 4.0];
        let split = MrvSplit::serial(&values, 1);
        let plain: f64 = values.iter().fold(0.0, |acc, v| acc + v);
        assert_eq!(split.merge().sum.to_bits(), plain.to_bits());
        assert_eq!(split.merge().count, 4);
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        assert_eq!(MrvSplit::new(0).n_shards(), 1);
        assert_eq!(MrvCounterSplit::new(0).shards().len(), 1);
    }

    #[test]
    fn threaded_shard_folds_match_the_serial_reference_bits() {
        // Values chosen to expose non-associativity if the routing or merge order
        // ever differed between the serial and threaded paths.
        let values: Vec<f64> = (0..257)
            .map(|i| (i as f64 * 0.1).sin() * 10f64.powi((i % 7) - 3))
            .collect();
        for n_shards in [1, 2, 3, 8, 16] {
            let serial = MrvSplit::serial(&values, n_shards);
            let threaded = threaded_split(&values, n_shards);
            assert_eq!(serial.shards(), threaded.shards());
            assert_eq!(
                serial.merge().sum.to_bits(),
                threaded.merge().sum.to_bits(),
                "merge bits diverged at {n_shards} shards"
            );
        }
    }

    #[test]
    fn counter_split_is_exact() {
        let mut counter = MrvCounterSplit::new(4);
        for position in 0..100 {
            counter.add(position, (position % 3) as u64);
        }
        let expected: u64 = (0..100u64).map(|p| p % 3).sum();
        assert_eq!(counter.merge(), expected);
        // Shard partials partition the total.
        assert_eq!(counter.shards().iter().sum::<u64>(), expected);
    }

    #[test]
    fn keyed_routing_orders_cells_and_preserves_stream_order() {
        let events = [(2u32, 1.0), (1, 2.0), (2, 3.0), (2, 4.0), (1, 5.0)];
        let cells = route_events(events, 2);
        // key 1: occurrences 0,1 → shards 0,1; key 2: occurrences 0,1,2 → shards 0,1,0
        let shape: Vec<(u32, usize, &[f64])> = cells
            .iter()
            .map(|c| (c.key, c.shard, c.values.as_slice()))
            .collect();
        assert_eq!(
            shape,
            vec![
                (1, 0, &[2.0][..]),
                (1, 1, &[5.0][..]),
                (2, 0, &[1.0, 4.0][..]),
                (2, 1, &[3.0][..]),
            ]
        );
        let merged = serial_keyed_reference(events, 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].0, 1);
        assert_eq!(merged[0].1.count, 2);
        assert_eq!(merged[1].0, 2);
        assert_eq!(merged[1].1.count, 3);
    }

    #[test]
    fn keyed_cells_folded_on_threads_match_the_serial_reference() {
        let events: Vec<(u32, f64)> = (0..300)
            .map(|i| ((i * 7 % 13) as u32, (i as f64 * 0.3).cos() * 3.7))
            .collect();
        for n_shards in [1, 2, 4, 8] {
            let reference = serial_keyed_reference(events.iter().copied(), n_shards);
            let cells = route_events(events.iter().copied(), n_shards);
            let folds: Vec<MrvShard> = std::thread::scope(|scope| {
                let handles: Vec<_> = cells
                    .iter()
                    .map(|cell| scope.spawn(move || cell.fold()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let merged = merge_cells(cells.into_iter().map(|c| c.key).zip(folds));
            assert_eq!(merged.len(), reference.len());
            for ((k1, s1), (k2, s2)) in merged.iter().zip(&reference) {
                assert_eq!(k1, k2);
                assert_eq!(s1.count, s2.count);
                assert_eq!(s1.sum.to_bits(), s2.sum.to_bits(), "key {k1} diverged");
            }
        }
    }

    #[test]
    fn zero_shard_routing_is_clamped_and_bit_equal_to_the_reference() {
        // n_shards = 0 must behave exactly like a single shard everywhere: the
        // split, the keyed router and the parallel fold all clamp the same way.
        let events = [(3u32, 0.1), (1, -2.5), (3, 7.75), (1, 0.3)];
        let clamped = serial_keyed_reference(events, 0);
        let one = serial_keyed_reference(events, 1);
        assert_eq!(clamped, one);
        for cell in route_events(events, 0) {
            assert_eq!(cell.shard, 0);
        }
        let parallel = fold_cells_parallel(&route_events(events, 0));
        for ((k1, s1), (k2, s2)) in parallel.iter().zip(&clamped) {
            assert_eq!(k1, k2);
            assert_eq!(s1.sum.to_bits(), s2.sum.to_bits());
        }
        assert_eq!(ConcurrentMrvSplit::new(0).n_shards(), 1);
    }

    #[test]
    fn single_hot_key_spreads_across_all_shards_and_stays_bit_equal() {
        // The motivating hotspot: every event hits ONE key, so the split is the
        // only thing standing between the writers and full serialization. Each
        // occurrence must land on occurrence % n_shards, every shard must be hit,
        // and the contended parallel fold must reproduce the serial bits.
        let events: Vec<(u32, f64)> = (0..64)
            .map(|i| (42u32, (i as f64 * 0.7).sin() * 10f64.powi((i % 5) - 2)))
            .collect();
        let n_shards = 4;
        let cells = route_events(events.iter().copied(), n_shards);
        assert_eq!(cells.len(), n_shards, "one cell per shard of the hot key");
        for (shard, cell) in cells.iter().enumerate() {
            assert_eq!((cell.key, cell.shard), (42, shard));
            assert_eq!(cell.values.len(), 64 / n_shards);
        }
        let reference = serial_keyed_reference(events.iter().copied(), n_shards);
        let parallel = fold_cells_parallel(&cells);
        assert_eq!(parallel.len(), 1);
        assert_eq!(parallel[0].0, 42);
        assert_eq!(parallel[0].1.sum.to_bits(), reference[0].1.sum.to_bits());
        assert_eq!(parallel[0].1.count, 64);

        // Same stream through the shared-memory split, one writer thread per shard.
        let split = ConcurrentMrvSplit::new(n_shards);
        std::thread::scope(|scope| {
            for shard in 0..n_shards {
                let split = &split;
                let events = &events;
                scope.spawn(move || {
                    for (position, &(_, value)) in events.iter().enumerate() {
                        if split.shard_of(position) == shard {
                            split.record(shard, value);
                        }
                    }
                });
            }
        });
        let values: Vec<f64> = events.iter().map(|&(_, v)| v).collect();
        let serial = MrvSplit::serial(&values, n_shards);
        assert_eq!(split.snapshot(), serial.shards());
        assert_eq!(split.merge().sum.to_bits(), serial.merge().sum.to_bits());
    }

    #[test]
    fn empty_accumulator_merges_are_the_identity_everywhere() {
        let no_events: [(u32, f64); 0] = [];
        assert!(serial_keyed_reference(no_events, 3).is_empty());
        assert!(route_events(no_events, 3).is_empty());
        assert!(fold_cells_parallel(&route_events(no_events, 3)).is_empty());
        assert!(merge_cells(std::iter::empty::<(u32, MrvShard)>()).is_empty());
        let split = ConcurrentMrvSplit::new(5);
        assert_eq!(split.merge(), MrvShard::empty());
        assert_eq!(split.merge().mean(), None);
        assert_eq!(split.snapshot(), vec![MrvShard::empty(); 5]);
    }

    proptest! {
        /// Shard-parallel folds are bit-equal to the serial reference for arbitrary
        /// value streams and shard counts.
        #[test]
        fn split_matches_reference(
            values in proptest::collection::vec(-1e6f64..1e6, 0..200),
            n_shards in 1usize..12,
        ) {
            let serial = MrvSplit::serial(&values, n_shards);
            let threaded = threaded_split(&values, n_shards);
            prop_assert_eq!(serial.shards(), threaded.shards());
            prop_assert_eq!(
                serial.merge().sum.to_bits(),
                threaded.merge().sum.to_bits()
            );
            prop_assert_eq!(serial.merge().count, values.len() as u64);
        }

        /// Keyed routing covers every event exactly once and merge counts add up.
        #[test]
        fn keyed_routing_partitions_events(
            events in proptest::collection::vec((0u32..20, -1e3f64..1e3), 0..150),
            n_shards in 1usize..8,
        ) {
            let cells = route_events(events.iter().copied(), n_shards);
            let routed: usize = cells.iter().map(|c| c.values.len()).sum();
            prop_assert_eq!(routed, events.len());
            for w in cells.windows(2) {
                prop_assert!((w[0].key, w[0].shard) < (w[1].key, w[1].shard));
            }
            let merged = merge_cells(cells.into_iter().map(|c| (c.key, c.fold())));
            let total: u64 = merged.iter().map(|(_, s)| s.count).sum();
            prop_assert_eq!(total, events.len() as u64);
        }
    }
}
