//! Neighbour-based collaborative filtering — Algorithms 1 and 2 of the paper.
//!
//! * [`UserKnn`] implements the user-based scheme: Phase 1 selects the k most similar
//!   users under Equation 1, Phase 2 predicts with Equation 2 and ranks the top-N items.
//! * [`ItemKnn`] implements the item-based scheme: Phase 1 precomputes, for every item,
//!   its k most similar items under the chosen metric (Equation 3 / adjusted cosine),
//!   Phase 2 predicts with Equation 4.
//!
//! Both predictors also accept an *external profile* — a list of `(item, rating)` pairs
//! that is not stored in the training matrix. This is exactly how X-Map consumes them:
//! the AlterEgo profile of a user is an artificial profile in the target domain that is
//! combined with the target-domain training data (§4.4).

use crate::error::{CfError, Result};
use crate::ids::{ItemId, UserId};
use crate::matrix::RatingMatrix;
use crate::rating::Timestep;
use crate::similarity::{item_similarity_stats, user_similarity, SimilarityMetric};
use crate::topk::{top_k, TopK};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An external (possibly artificial) user profile: item, rating value and the logical
/// timestep at which the rating was (or is considered to have been) given.
pub type Profile = Vec<(ItemId, f64, Timestep)>;

/// Builds a [`Profile`] from `(item, value)` pairs with timestep 0.
pub fn profile_from_pairs(pairs: impl IntoIterator<Item = (ItemId, f64)>) -> Profile {
    pairs
        .into_iter()
        .map(|(i, v)| (i, v, Timestep(0)))
        .collect()
}

// ---------------------------------------------------------------------------
// User-based CF (Algorithm 1)
// ---------------------------------------------------------------------------

/// Configuration of the user-based recommender.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UserKnnConfig {
    /// Number of neighbours `k` retained in Phase 1.
    pub k: usize,
    /// Neighbours with |similarity| below this threshold are discarded (0 keeps all).
    pub min_similarity: f64,
}

impl Default for UserKnnConfig {
    fn default() -> Self {
        UserKnnConfig {
            k: 50,
            min_similarity: 0.0,
        }
    }
}

/// User-based k-nearest-neighbour collaborative filtering (Algorithm 1).
pub struct UserKnn<'a> {
    matrix: &'a RatingMatrix,
    config: UserKnnConfig,
}

impl<'a> UserKnn<'a> {
    /// Creates a user-based recommender over a training matrix.
    pub fn new(matrix: &'a RatingMatrix, config: UserKnnConfig) -> Result<Self> {
        if config.k == 0 {
            return Err(CfError::invalid_parameter("k", "must be at least 1"));
        }
        Ok(UserKnn { matrix, config })
    }

    /// The underlying training matrix.
    pub fn matrix(&self) -> &RatingMatrix {
        self.matrix
    }

    /// The configuration the recommender was created with.
    pub fn config(&self) -> UserKnnConfig {
        self.config
    }

    /// Phase 1: the k most similar users to `user` (Equation 1), sorted by descending
    /// similarity. The user themself is never included.
    pub fn neighbors(&self, user: UserId) -> Vec<(UserId, f64)> {
        let mut collector = TopK::new(self.config.k);
        for other in self.matrix.users() {
            if other == user {
                continue;
            }
            let sim = user_similarity(self.matrix, user, other);
            // lint: float-eq — exact zero is the "no overlap" sentinel from user_similarity.
            if sim.abs() > self.config.min_similarity && sim != 0.0 {
                collector.push(sim, other);
            }
        }
        collector
            .into_sorted_vec()
            .into_iter()
            .map(|(s, u)| (u, s))
            .collect()
    }

    /// Phase 1 for an external profile: the k most similar training users to the profile.
    pub fn neighbors_of_profile(&self, profile: &Profile) -> Vec<(UserId, f64)> {
        let profile_map: HashMap<ItemId, f64> = profile.iter().map(|&(i, v, _)| (i, v)).collect();
        let mut collector = TopK::new(self.config.k);
        for other in self.matrix.users() {
            let sim = self.profile_user_similarity(&profile_map, other);
            // lint: float-eq — exact zero is the "no overlap" sentinel, as in nearest().
            if sim.abs() > self.config.min_similarity && sim != 0.0 {
                collector.push(sim, other);
            }
        }
        collector
            .into_sorted_vec()
            .into_iter()
            .map(|(s, u)| (u, s))
            .collect()
    }

    /// Equation 1 between an external profile and a stored user (centred by item average).
    fn profile_user_similarity(&self, profile_map: &HashMap<ItemId, f64>, other: UserId) -> f64 {
        let mut num = 0.0;
        let mut den_a = 0.0;
        let mut den_b = 0.0;
        for e in self.matrix.user_profile(other) {
            if let Some(&ra) = profile_map.get(&e.item) {
                let i_avg = self.matrix.item_average(e.item);
                let da = ra - i_avg;
                let db = e.value - i_avg;
                num += da * db;
                den_a += da * da;
                den_b += db * db;
            }
        }
        let den = (den_a * den_b).sqrt();
        if den < 1e-12 {
            0.0
        } else {
            (num / den).clamp(-1.0, 1.0)
        }
    }

    /// Phase 2: predicted rating of `item` for `user` (Equation 2), using precomputed
    /// neighbours. Falls back to the user average when no neighbour rated the item.
    pub fn predict_with_neighbors(
        &self,
        user_average: f64,
        neighbors: &[(UserId, f64)],
        item: ItemId,
    ) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for &(b, sim) in neighbors {
            if let Some(r) = self.matrix.rating(b, item) {
                num += sim * (r - self.matrix.user_average(b));
                den += sim.abs();
            }
        }
        let raw = if den < 1e-12 {
            user_average
        } else {
            user_average + num / den
        };
        self.matrix.scale().clamp(raw)
    }

    /// Predicted rating of `item` for a stored `user`.
    pub fn predict(&self, user: UserId, item: ItemId) -> f64 {
        let neighbors = self.neighbors(user);
        self.predict_with_neighbors(self.matrix.user_average(user), &neighbors, item)
    }

    /// Predicted rating of `item` for an external profile.
    pub fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        let neighbors = self.neighbors_of_profile(profile);
        let avg = profile_average(profile).unwrap_or_else(|| self.matrix.global_average());
        self.predict_with_neighbors(avg, &neighbors, item)
    }

    /// Top-N recommendations for a stored user, excluding items the user already rated.
    pub fn recommend(&self, user: UserId, n: usize) -> Vec<(ItemId, f64)> {
        let neighbors = self.neighbors(user);
        let avg = self.matrix.user_average(user);
        let rated: Vec<ItemId> = self
            .matrix
            .user_profile(user)
            .iter()
            .map(|e| e.item)
            .collect();
        self.rank_candidates(avg, &neighbors, &rated, n)
    }

    /// Top-N recommendations for an external profile, excluding the profile's own items.
    pub fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        let neighbors = self.neighbors_of_profile(profile);
        let avg = profile_average(profile).unwrap_or_else(|| self.matrix.global_average());
        let rated: Vec<ItemId> = profile.iter().map(|&(i, _, _)| i).collect();
        self.rank_candidates(avg, &neighbors, &rated, n)
    }

    /// The deduplicated, ascending-id candidate items for a neighbour set: every
    /// item rated by at least one neighbour. This is exactly the stream
    /// `rank_candidates` scores, exposed so a sharded router can split it into
    /// contiguous per-shard segments and still reproduce the same top-N.
    pub fn candidate_items(&self, neighbors: &[(UserId, f64)]) -> Vec<ItemId> {
        // Only items rated by at least one neighbour can receive a personalised score.
        let mut candidates: Vec<ItemId> = Vec::new();
        for &(b, _) in neighbors {
            for e in self.matrix.user_profile(b) {
                candidates.push(e.item);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates
    }

    fn rank_candidates(
        &self,
        user_average: f64,
        neighbors: &[(UserId, f64)],
        exclude: &[ItemId],
        n: usize,
    ) -> Vec<(ItemId, f64)> {
        let scored = self
            .candidate_items(neighbors)
            .into_iter()
            .filter(|i| !exclude.contains(i))
            .map(|i| (self.predict_with_neighbors(user_average, neighbors, i), i));
        top_k(n, scored).into_iter().map(|(s, i)| (i, s)).collect()
    }
}

// ---------------------------------------------------------------------------
// Item-based CF (Algorithm 2)
// ---------------------------------------------------------------------------

/// Configuration of the item-based recommender.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ItemKnnConfig {
    /// Number of neighbour items `k` retained per item in Phase 1.
    pub k: usize,
    /// Similarity metric for Phase 1 (the paper uses adjusted cosine).
    pub metric: SimilarityMetric,
    /// Temporal decay rate α of Equation 7; 0 disables temporal weighting.
    pub temporal_alpha: f64,
}

impl Default for ItemKnnConfig {
    fn default() -> Self {
        ItemKnnConfig {
            k: 50,
            metric: SimilarityMetric::AdjustedCosine,
            temporal_alpha: 0.0,
        }
    }
}

/// A neighbour of an item in the precomputed model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ItemNeighbor {
    /// Neighbouring item.
    pub item: ItemId,
    /// Similarity between the model item and the neighbour.
    pub similarity: f64,
}

/// Reusable scratch for collecting per-item co-rating candidate sets: the epoch-marked
/// dense seen buffer that deduplicates candidates *during* collection, so a pair
/// co-rated by many users is stored once, not once per co-rating user. One instance
/// serves any number of items ([`ItemKnn::candidate_sets`] uses it across the whole
/// catalogue; the delta-fit pool splice reuses it across a partition's items).
#[derive(Debug, Default)]
pub struct CandidateScratch {
    seen: Vec<u32>,
    epoch: u32,
}

impl CandidateScratch {
    /// Creates an empty scratch (the seen buffer grows to the matrix size on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The co-rating candidate set of `item`: the distinct items sharing at least one
    /// rater with it, sorted ascending — exactly one row of
    /// [`ItemKnn::candidate_sets`].
    pub fn candidate_set(&mut self, matrix: &RatingMatrix, item: ItemId) -> Vec<ItemId> {
        if self.seen.len() < matrix.n_items() {
            self.seen.resize(matrix.n_items(), 0);
        }
        if self.epoch == u32::MAX {
            self.seen.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let mut cands: Vec<ItemId> = Vec::new();
        for rater in matrix.item_profile(item) {
            for e in matrix.user_profile(rater.user) {
                let ix = e.item.index();
                if e.item != item && self.seen[ix] != epoch {
                    self.seen[ix] = epoch;
                    cands.push(e.item);
                }
            }
        }
        cands.sort_unstable();
        cands
    }
}

/// Item-based k-nearest-neighbour collaborative filtering (Algorithm 2) with optional
/// temporal weighting (Equation 7).
pub struct ItemKnn<'a> {
    matrix: &'a RatingMatrix,
    config: ItemKnnConfig,
    /// `neighbors[i]` = top-k similar items of item `i`, sorted by descending similarity.
    neighbors: Vec<Vec<ItemNeighbor>>,
}

impl<'a> ItemKnn<'a> {
    /// Validates an [`ItemKnnConfig`], shared by every fit entry point.
    fn validate(config: &ItemKnnConfig) -> Result<()> {
        if config.k == 0 {
            return Err(CfError::invalid_parameter("k", "must be at least 1"));
        }
        if config.temporal_alpha < 0.0 || !config.temporal_alpha.is_finite() {
            return Err(CfError::invalid_parameter(
                "temporal_alpha",
                "must be finite and non-negative",
            ));
        }
        Ok(())
    }

    /// The co-rating candidate set of every item: `sets[i]` holds the distinct items
    /// sharing at least one rater with item `i`, sorted ascending.
    ///
    /// Candidates are deduplicated *during* collection with an epoch-marked dense seen
    /// buffer, so a pair co-rated by many users is stored once, not once per co-rating
    /// user — peak memory per set equals its distinct-neighbour count (plus the one
    /// `O(n_items)` marker buffer), while the historical per-user scatter grew with the
    /// rating count before its dedup.
    pub fn candidate_sets(matrix: &RatingMatrix) -> Vec<Vec<ItemId>> {
        let mut scratch = CandidateScratch::new();
        (0..matrix.n_items())
            .map(|i| scratch.candidate_set(matrix, ItemId(i as u32)))
            .collect()
    }

    /// Phase 1 for one item: scores every candidate and keeps the top `config.k`, sorted
    /// by descending similarity (ties keep candidate order — ascending item id when the
    /// candidates come from [`ItemKnn::candidate_sets`]).
    ///
    /// This is the per-item unit of work the engine-parallel recommender stage
    /// partitions; [`ItemKnn::fit`] is exactly this over every item's candidate set.
    pub fn neighbors_from_candidates(
        matrix: &RatingMatrix,
        item: ItemId,
        candidates: &[ItemId],
        config: &ItemKnnConfig,
    ) -> Vec<ItemNeighbor> {
        let mut collector = TopK::new(config.k);
        for &j in candidates {
            let stats = item_similarity_stats(matrix, item, j, config.metric);
            // lint: float-eq — exact zero is the "no co-rater" sentinel from the stats.
            if stats.similarity != 0.0 {
                collector.push(stats.similarity, j);
            }
        }
        collector
            .into_sorted_vec()
            .into_iter()
            .map(|(s, j)| ItemNeighbor {
                item: j,
                similarity: s,
            })
            .collect()
    }

    /// Wraps externally computed neighbour pools (e.g. pools produced partition-parallel
    /// from [`ItemKnn::candidate_sets`] + [`ItemKnn::neighbors_from_candidates`]) after
    /// validating the configuration. `neighbors[i]` must be item `i`'s pool; missing
    /// trailing items read as isolated.
    pub fn from_pools(
        matrix: &'a RatingMatrix,
        config: ItemKnnConfig,
        neighbors: Vec<Vec<ItemNeighbor>>,
    ) -> Result<Self> {
        Self::validate(&config)?;
        Ok(ItemKnn {
            matrix,
            config,
            neighbors,
        })
    }

    /// Phase 1: precomputes the k most similar items for every item.
    ///
    /// Candidate pairs are generated through co-rating users (two items that share no
    /// user have zero similarity under every supported metric and are skipped), so the
    /// cost is proportional to the sum over users of the squared profile length rather
    /// than `O(m^2)`.
    pub fn fit(matrix: &'a RatingMatrix, config: ItemKnnConfig) -> Result<Self> {
        Self::validate(&config)?;
        let neighbors = Self::candidate_sets(matrix)
            .iter()
            .enumerate()
            .map(|(i, cands)| {
                Self::neighbors_from_candidates(matrix, ItemId(i as u32), cands, &config)
            })
            .collect();
        Ok(ItemKnn {
            matrix,
            config,
            neighbors,
        })
    }

    /// The underlying training matrix.
    pub fn matrix(&self) -> &RatingMatrix {
        self.matrix
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> ItemKnnConfig {
        self.config
    }

    /// The precomputed neighbours of an item (empty for unknown or isolated items).
    pub fn neighbors(&self, item: ItemId) -> &[ItemNeighbor] {
        self.neighbors
            .get(item.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Consumes the model and returns the fitted per-item neighbour pools
    /// (`pools[i]` = top-k similar items of item `i`, sorted by descending similarity).
    ///
    /// Owning models (the X-Map recommenders) fit an `ItemKnn`, keep the pools and drop
    /// the borrowing wrapper; this hands the pools over without re-collecting them.
    pub fn into_neighbors(self) -> Vec<Vec<ItemNeighbor>> {
        self.neighbors
    }

    /// Phase 2, Equation 4: predicted rating of `item` for a stored user.
    pub fn predict(&self, user: UserId, item: ItemId) -> f64 {
        let profile: Profile = self
            .matrix
            .user_profile(user)
            .iter()
            .map(|e| (e.item, e.value, e.timestep))
            .collect();
        self.predict_for_profile(&profile, item)
    }

    /// Phase 2 for an external profile (Equation 4, or Equation 7 when α > 0): the
    /// prediction only depends on the querying user's own ratings of items similar to
    /// `item`, which is what makes the temporal variant well-defined per user (§4.4).
    pub fn predict_for_profile(&self, profile: &Profile, item: ItemId) -> f64 {
        let item_avg = self.matrix.item_average(item);
        let now = profile
            .iter()
            .map(|&(_, _, t)| t)
            .max()
            .unwrap_or(Timestep(0));
        let ratings: HashMap<ItemId, (f64, Timestep)> =
            profile.iter().map(|&(i, v, t)| (i, (v, t))).collect();

        let mut num = 0.0;
        let mut den = 0.0;
        for n in self.neighbors(item) {
            if let Some(&(r, t)) = ratings.get(&n.item) {
                let weight = if self.config.temporal_alpha > 0.0 {
                    (-self.config.temporal_alpha * now.elapsed_since(t) as f64).exp()
                } else {
                    1.0
                };
                num += n.similarity * (r - self.matrix.item_average(n.item)) * weight;
                den += n.similarity.abs() * weight;
            }
        }
        let raw = if den < 1e-12 {
            item_avg
        } else {
            item_avg + num / den
        };
        self.matrix.scale().clamp(raw)
    }

    /// Top-N recommendations for a stored user, excluding already rated items.
    pub fn recommend(&self, user: UserId, n: usize) -> Vec<(ItemId, f64)> {
        let profile: Profile = self
            .matrix
            .user_profile(user)
            .iter()
            .map(|e| (e.item, e.value, e.timestep))
            .collect();
        self.recommend_for_profile(&profile, n)
    }

    /// Top-N recommendations for an external profile, excluding the profile's own items.
    ///
    /// Candidates are the neighbours of the profile's items (anything else would receive
    /// the unpersonalised item-average score anyway).
    pub fn recommend_for_profile(&self, profile: &Profile, n: usize) -> Vec<(ItemId, f64)> {
        let owned: Vec<ItemId> = profile.iter().map(|&(i, _, _)| i).collect();
        let mut candidates: Vec<ItemId> = Vec::new();
        for &(i, _, _) in profile {
            for nb in self.neighbors(i) {
                candidates.push(nb.item);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let scored = candidates
            .into_iter()
            .filter(|i| !owned.contains(i))
            .map(|i| (self.predict_for_profile(profile, i), i));
        top_k(n, scored).into_iter().map(|(s, i)| (i, s)).collect()
    }
}

/// Mean rating of a profile, if non-empty.
pub fn profile_average(profile: &Profile) -> Option<f64> {
    if profile.is_empty() {
        None
    } else {
        Some(profile.iter().map(|&(_, v, _)| v).sum::<f64>() / profile.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RatingMatrixBuilder;

    /// Two clear taste clusters: users 0-2 love items 0-2 and hate 3-5; users 3-5 the
    /// opposite. User 6 is a partial member of the first cluster used for predictions.
    fn clustered() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        for u in 0..3u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
        }
        for u in 3..6u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, 1.0).unwrap();
            }
            for i in 3..6u32 {
                b.push_parts(u, i, 5.0).unwrap();
            }
        }
        // user 6: likes item 0 and 1, has not seen 2..6
        b.push_parts(6, 0, 5.0).unwrap();
        b.push_parts(6, 1, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn user_knn_finds_same_cluster_neighbors() {
        let m = clustered();
        let knn = UserKnn::new(
            &m,
            UserKnnConfig {
                k: 3,
                min_similarity: 0.0,
            },
        )
        .unwrap();
        let neigh = knn.neighbors(UserId(0));
        assert!(!neigh.is_empty());
        // the most similar users must come from the same cluster (users 1, 2 or 6)
        for &(u, s) in neigh.iter().take(2) {
            assert!(
                u == UserId(1) || u == UserId(2) || u == UserId(6),
                "unexpected neighbor {u}"
            );
            assert!(s > 0.0);
        }
    }

    #[test]
    fn user_knn_predicts_cluster_preferences() {
        let m = clustered();
        let knn = UserKnn::new(&m, UserKnnConfig::default()).unwrap();
        let liked = knn.predict(UserId(6), ItemId(2));
        let disliked = knn.predict(UserId(6), ItemId(4));
        assert!(
            liked > disliked,
            "cluster item should be predicted higher: {liked} vs {disliked}"
        );
        assert!(liked >= 3.5);
        assert!(disliked <= 3.0);
    }

    #[test]
    fn user_knn_recommend_excludes_rated_items() {
        let m = clustered();
        let knn = UserKnn::new(&m, UserKnnConfig::default()).unwrap();
        let recs = knn.recommend(UserId(6), 3);
        assert!(!recs.is_empty());
        for (item, _) in &recs {
            assert_ne!(*item, ItemId(0));
            assert_ne!(*item, ItemId(1));
        }
        // best recommendation should be the remaining cluster item
        assert_eq!(recs[0].0, ItemId(2));
    }

    #[test]
    fn user_knn_external_profile_matches_stored_user_behaviour() {
        let m = clustered();
        let knn = UserKnn::new(&m, UserKnnConfig::default()).unwrap();
        let profile = profile_from_pairs([(ItemId(0), 5.0), (ItemId(1), 4.0)]);
        let stored = knn.predict(UserId(6), ItemId(2));
        let external = knn.predict_for_profile(&profile, ItemId(2));
        assert!(
            (stored - external).abs() < 0.75,
            "external profile should predict similarly: {stored} vs {external}"
        );
        let recs = knn.recommend_for_profile(&profile, 2);
        assert_eq!(recs[0].0, ItemId(2));
    }

    #[test]
    fn user_knn_rejects_zero_k() {
        let m = clustered();
        assert!(UserKnn::new(
            &m,
            UserKnnConfig {
                k: 0,
                min_similarity: 0.0
            }
        )
        .is_err());
    }

    #[test]
    fn item_knn_neighbors_stay_within_cluster() {
        let m = clustered();
        let knn = ItemKnn::fit(
            &m,
            ItemKnnConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let neigh = knn.neighbors(ItemId(0));
        assert!(!neigh.is_empty());
        for n in neigh {
            assert!(
                n.item == ItemId(1) || n.item == ItemId(2),
                "unexpected item neighbor {:?}",
                n.item
            );
            assert!(n.similarity > 0.0);
        }
    }

    #[test]
    fn item_knn_predicts_cluster_preferences() {
        let m = clustered();
        let knn = ItemKnn::fit(&m, ItemKnnConfig::default()).unwrap();
        let liked = knn.predict(UserId(6), ItemId(2));
        let disliked = knn.predict(UserId(6), ItemId(4));
        assert!(liked > disliked, "{liked} vs {disliked}");
    }

    #[test]
    fn item_knn_recommend_for_profile_prefers_cluster_item() {
        let m = clustered();
        let knn = ItemKnn::fit(&m, ItemKnnConfig::default()).unwrap();
        let profile = profile_from_pairs([(ItemId(0), 5.0), (ItemId(1), 5.0)]);
        let recs = knn.recommend_for_profile(&profile, 6);
        assert!(!recs.is_empty());
        assert_eq!(recs[0].0, ItemId(2));
        for (item, _) in &recs {
            assert_ne!(*item, ItemId(0));
            assert_ne!(*item, ItemId(1));
        }
    }

    #[test]
    fn item_knn_prediction_falls_back_to_item_average() {
        let m = clustered();
        let knn = ItemKnn::fit(&m, ItemKnnConfig::default()).unwrap();
        // empty profile -> no neighbour information -> item average
        let p: Profile = Vec::new();
        let pred = knn.predict_for_profile(&p, ItemId(0));
        assert!((pred - m.item_average(ItemId(0))).abs() < 1e-9);
    }

    #[test]
    fn item_knn_rejects_bad_parameters() {
        let m = clustered();
        assert!(ItemKnn::fit(
            &m,
            ItemKnnConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(ItemKnn::fit(
            &m,
            ItemKnnConfig {
                temporal_alpha: -0.1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(ItemKnn::fit(
            &m,
            ItemKnnConfig {
                temporal_alpha: f64::NAN,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn temporal_weighting_prefers_recent_ratings() {
        // item 2's neighbours are items 0 and 1; the profile rates item 0 high long ago
        // and item 1 low recently. With α = 0 both count equally; with large α the
        // recent (low) rating dominates, so the prediction must not increase.
        let m = clustered();
        let flat = ItemKnn::fit(
            &m,
            ItemKnnConfig {
                temporal_alpha: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let decayed = ItemKnn::fit(
            &m,
            ItemKnnConfig {
                temporal_alpha: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let profile: Profile = vec![
            (ItemId(0), 5.0, Timestep(0)),
            (ItemId(1), 1.0, Timestep(100)),
        ];
        let p_flat = flat.predict_for_profile(&profile, ItemId(2));
        let p_decay = decayed.predict_for_profile(&profile, ItemId(2));
        assert!(
            p_decay <= p_flat + 1e-9,
            "temporal weighting should favour the recent low rating: {p_decay} vs {p_flat}"
        );
    }

    #[test]
    fn candidate_sets_stay_at_distinct_neighbour_count_under_many_co_raters() {
        // Regression: the fit used to push a neighbour candidate once per co-rating
        // user, so candidate sets grew with the rating count before dedup. With 50
        // users all rating the same three items, every candidate set must hold exactly
        // the two distinct neighbours — never 50 copies of each.
        let mut b = RatingMatrixBuilder::new();
        for u in 0..50u32 {
            for i in 0..3u32 {
                b.push_parts(u, i, ((u + i) % 5 + 1) as f64).unwrap();
            }
        }
        let m = b.build().unwrap();
        let sets = ItemKnn::candidate_sets(&m);
        assert_eq!(sets.len(), 3);
        for (i, set) in sets.iter().enumerate() {
            let distinct: Vec<ItemId> =
                (0..3u32).filter(|&j| j as usize != i).map(ItemId).collect();
            assert_eq!(
                set, &distinct,
                "candidate set of item {i} must hold exactly the distinct neighbours"
            );
        }
        // and the decomposed fit path agrees with the one-shot fit
        let config = ItemKnnConfig {
            k: 2,
            ..Default::default()
        };
        let fitted = ItemKnn::fit(&m, config).unwrap();
        for (i, cands) in sets.iter().enumerate() {
            assert_eq!(
                ItemKnn::neighbors_from_candidates(&m, ItemId(i as u32), cands, &config),
                fitted.neighbors(ItemId(i as u32))
            );
        }
    }

    #[test]
    fn candidate_scratch_matches_candidate_sets_row_for_row() {
        let m = clustered();
        let sets = ItemKnn::candidate_sets(&m);
        let mut scratch = CandidateScratch::new();
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(&scratch.candidate_set(&m, ItemId(i as u32)), set);
        }
        // reuse across matrices of different sizes is safe
        let mut b = RatingMatrixBuilder::new();
        b.push_parts(0, 0, 4.0).unwrap();
        b.push_parts(0, 9, 5.0).unwrap();
        let wide = b.build().unwrap();
        assert_eq!(
            scratch.candidate_set(&wide, ItemId(0)),
            vec![ItemId(9)],
            "the seen buffer must grow with the matrix"
        );
    }

    #[test]
    fn from_pools_wraps_externally_computed_pools_and_validates() {
        let m = clustered();
        let config = ItemKnnConfig {
            k: 2,
            ..Default::default()
        };
        let pools = ItemKnn::fit(&m, config).unwrap().into_neighbors();
        let wrapped = ItemKnn::from_pools(&m, config, pools.clone()).unwrap();
        for i in 0..m.n_items() as u32 {
            assert_eq!(wrapped.neighbors(ItemId(i)), pools[i as usize].as_slice());
        }
        assert!(ItemKnn::from_pools(
            &m,
            ItemKnnConfig {
                k: 0,
                ..Default::default()
            },
            pools
        )
        .is_err());
    }

    #[test]
    fn item_knn_into_neighbors_hands_over_the_fitted_pools() {
        let m = clustered();
        let knn = ItemKnn::fit(
            &m,
            ItemKnnConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let expect: Vec<Vec<ItemNeighbor>> = (0..m.n_items() as u32)
            .map(|i| knn.neighbors(ItemId(i)).to_vec())
            .collect();
        let pools = knn.into_neighbors();
        assert_eq!(pools, expect);
    }

    #[test]
    fn user_knn_exposes_its_config() {
        let m = clustered();
        let knn = UserKnn::new(
            &m,
            UserKnnConfig {
                k: 7,
                min_similarity: 0.1,
            },
        )
        .unwrap();
        assert_eq!(knn.config().k, 7);
        assert_eq!(knn.config().min_similarity, 0.1);
    }

    #[test]
    fn profile_average_handles_empty() {
        assert_eq!(profile_average(&Vec::new()), None);
        let p = profile_from_pairs([(ItemId(0), 2.0), (ItemId(1), 4.0)]);
        assert_eq!(profile_average(&p), Some(3.0));
    }

    #[test]
    fn predictions_respect_rating_scale() {
        let m = clustered();
        let uknn = UserKnn::new(&m, UserKnnConfig::default()).unwrap();
        let iknn = ItemKnn::fit(&m, ItemKnnConfig::default()).unwrap();
        for u in m.users() {
            for i in m.items() {
                let pu = uknn.predict(u, i);
                let pi = iknn.predict(u, i);
                assert!(
                    (1.0..=5.0).contains(&pu),
                    "user-based prediction out of scale: {pu}"
                );
                assert!(
                    (1.0..=5.0).contains(&pi),
                    "item-based prediction out of scale: {pi}"
                );
            }
        }
    }
}
