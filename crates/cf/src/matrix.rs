//! Compact rating matrix with user-major and item-major views.
//!
//! The paper works with the standard sparse user × item rating matrix `M_D` (Table 1) and
//! repeatedly needs both *user profiles* `X_u` (the items rated by a user) and *item
//! profiles* `Y_i` (the users who rated an item), together with the per-user and per-item
//! average ratings `r̄_u` and `r̄_i` used by the similarity metrics and predictors.
//!
//! [`RatingMatrix`] stores the ratings once in CSR (compressed sparse row) form keyed by
//! user and keeps a mirrored CSC-style item-major index, so that both `X_u` and `Y_i` are
//! contiguous slices. Entries within a row/column are sorted by the secondary id, which
//! lets pairwise similarity computations run as linear merges.

use crate::error::{CfError, Result};
use crate::ids::{DomainId, ItemId, UserId};
use crate::rating::{Rating, RatingScale, Timestep};
use serde::{Deserialize, Serialize};

/// One stored rating as seen from the user-major view: `(item, value, timestep)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UserEntry {
    /// The rated item.
    pub item: ItemId,
    /// The rating value.
    pub value: f64,
    /// Logical time of the rating.
    pub timestep: Timestep,
}

/// One stored rating as seen from the item-major view: `(user, value, timestep)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ItemEntry {
    /// The user who rated.
    pub user: UserId,
    /// The rating value.
    pub value: f64,
    /// Logical time of the rating.
    pub timestep: Timestep,
}

/// Builder that accumulates raw [`Rating`] events and produces a [`RatingMatrix`].
///
/// Duplicate `(user, item)` pairs keep the *latest* rating by timestep (ties broken by
/// insertion order), mirroring the common practice of retaining a user's most recent
/// opinion of an item.
#[derive(Clone, Debug, Default)]
pub struct RatingMatrixBuilder {
    ratings: Vec<Rating>,
    item_domains: Vec<(ItemId, DomainId)>,
    scale: RatingScale,
    n_users_hint: usize,
    n_items_hint: usize,
}

impl RatingMatrixBuilder {
    /// Creates an empty builder with the default 1–5 scale.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with an explicit rating scale.
    pub fn with_scale(scale: RatingScale) -> Self {
        RatingMatrixBuilder {
            scale,
            ..Default::default()
        }
    }

    /// Pre-sizes internal buffers (purely an optimisation).
    pub fn reserve(&mut self, n_ratings: usize) -> &mut Self {
        self.ratings.reserve(n_ratings);
        self
    }

    /// Hints the number of users and items so unrated trailing ids are still represented.
    pub fn with_dimensions(mut self, n_users: usize, n_items: usize) -> Self {
        self.n_users_hint = n_users;
        self.n_items_hint = n_items;
        self
    }

    /// Adds a rating event.
    ///
    /// Non-finite rating values are rejected; the rating scale is *not* enforced here so
    /// that mean-centred or synthetic data can be stored, but see
    /// [`RatingMatrix::scale`] for prediction clamping.
    pub fn push(&mut self, rating: Rating) -> Result<&mut Self> {
        if !rating.value.is_finite() {
            return Err(CfError::InvalidRating {
                value: rating.value,
                context: "RatingMatrixBuilder::push",
            });
        }
        self.ratings.push(rating);
        Ok(self)
    }

    /// Adds a rating by raw ids, defaulting the timestep to 0.
    pub fn push_parts(&mut self, user: u32, item: u32, value: f64) -> Result<&mut Self> {
        self.push(Rating::new(UserId(user), ItemId(item), value))
    }

    /// Adds a rating by raw ids with an explicit timestep.
    pub fn push_timed(&mut self, user: u32, item: u32, value: f64, t: u32) -> Result<&mut Self> {
        self.push(Rating::at(UserId(user), ItemId(item), value, Timestep(t)))
    }

    /// Declares the domain an item belongs to (defaults to [`DomainId::SOURCE`]).
    pub fn set_item_domain(&mut self, item: ItemId, domain: DomainId) -> &mut Self {
        self.item_domains.push((item, domain));
        self
    }

    /// Number of rating events accumulated so far (before deduplication).
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// Whether no rating has been added yet.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// Finalises the builder into an immutable [`RatingMatrix`].
    pub fn build(mut self) -> Result<RatingMatrix> {
        if self.ratings.is_empty() && self.n_users_hint == 0 && self.n_items_hint == 0 {
            return Err(CfError::EmptyMatrix);
        }

        let mut n_users = self.n_users_hint;
        let mut n_items = self.n_items_hint;
        for r in &self.ratings {
            n_users = n_users.max(r.user.index() + 1);
            n_items = n_items.max(r.item.index() + 1);
        }
        for (item, _) in &self.item_domains {
            n_items = n_items.max(item.index() + 1);
        }

        // Deduplicate (user, item) keeping the most recent entry. Stable sort keeps
        // insertion order for equal timesteps so "last pushed wins" among ties.
        self.ratings.sort_by_key(|a| (a.user, a.item, a.timestep));
        let mut deduped: Vec<Rating> = Vec::with_capacity(self.ratings.len());
        for r in self.ratings {
            match deduped.last_mut() {
                Some(last) if last.user == r.user && last.item == r.item => *last = r,
                _ => deduped.push(r),
            }
        }

        // User-major CSR.
        let mut user_offsets = vec![0usize; n_users + 1];
        for r in &deduped {
            user_offsets[r.user.index() + 1] += 1;
        }
        for u in 0..n_users {
            user_offsets[u + 1] += user_offsets[u];
        }
        let mut user_entries = vec![
            UserEntry {
                item: ItemId(0),
                value: 0.0,
                timestep: Timestep(0)
            };
            deduped.len()
        ];
        {
            let mut cursor = user_offsets.clone();
            for r in &deduped {
                let pos = cursor[r.user.index()];
                user_entries[pos] = UserEntry {
                    item: r.item,
                    value: r.value,
                    timestep: r.timestep,
                };
                cursor[r.user.index()] += 1;
            }
        }
        // Entries are already sorted by item within each user because of the global sort.

        // Item-major CSC mirror.
        let mut item_offsets = vec![0usize; n_items + 1];
        for r in &deduped {
            item_offsets[r.item.index() + 1] += 1;
        }
        for i in 0..n_items {
            item_offsets[i + 1] += item_offsets[i];
        }
        let mut item_entries = vec![
            ItemEntry {
                user: UserId(0),
                value: 0.0,
                timestep: Timestep(0)
            };
            deduped.len()
        ];
        {
            let mut cursor = item_offsets.clone();
            // Iterating in (user, item) order yields user-sorted columns.
            for r in &deduped {
                let pos = cursor[r.item.index()];
                item_entries[pos] = ItemEntry {
                    user: r.user,
                    value: r.value,
                    timestep: r.timestep,
                };
                cursor[r.item.index()] += 1;
            }
        }

        // Averages.
        let mut user_avg = vec![0.0f64; n_users];
        for u in 0..n_users {
            let row = &user_entries[user_offsets[u]..user_offsets[u + 1]];
            if !row.is_empty() {
                user_avg[u] = row.iter().map(|e| e.value).sum::<f64>() / row.len() as f64;
            }
        }
        let mut item_avg = vec![0.0f64; n_items];
        for i in 0..n_items {
            let col = &item_entries[item_offsets[i]..item_offsets[i + 1]];
            if !col.is_empty() {
                item_avg[i] = col.iter().map(|e| e.value).sum::<f64>() / col.len() as f64;
            }
        }
        let global_avg = if deduped.is_empty() {
            self.scale.midpoint()
        } else {
            deduped.iter().map(|r| r.value).sum::<f64>() / deduped.len() as f64
        };

        // Item domains (default SOURCE).
        let mut item_domain = vec![DomainId::SOURCE; n_items];
        for (item, domain) in self.item_domains {
            item_domain[item.index()] = domain;
        }

        Ok(RatingMatrix {
            n_users,
            n_items,
            user_offsets,
            user_entries,
            item_offsets,
            item_entries,
            user_avg,
            item_avg,
            global_avg,
            item_domain,
            scale: self.scale,
        })
    }
}

/// Immutable sparse rating matrix with dual user-major / item-major views.
///
/// `PartialEq` compares every stored field (both CSR views, the average caches, domains
/// and scale) — it is what the incremental builder path
/// ([`RatingMatrix::apply_delta`]) is tested bit-identical to a full rebuild against.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatingMatrix {
    n_users: usize,
    n_items: usize,
    user_offsets: Vec<usize>,
    user_entries: Vec<UserEntry>,
    item_offsets: Vec<usize>,
    item_entries: Vec<ItemEntry>,
    user_avg: Vec<f64>,
    item_avg: Vec<f64>,
    global_avg: f64,
    item_domain: Vec<DomainId>,
    scale: RatingScale,
}

impl RatingMatrix {
    /// Builds a matrix from an iterator of ratings with the default scale.
    pub fn from_ratings<I: IntoIterator<Item = Rating>>(ratings: I) -> Result<Self> {
        let mut b = RatingMatrixBuilder::new();
        for r in ratings {
            b.push(r)?;
        }
        b.build()
    }

    /// Number of users (including users with no rating, if declared via dimensions).
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of stored ratings (after deduplication).
    pub fn n_ratings(&self) -> usize {
        self.user_entries.len()
    }

    /// Density of the matrix: ratings / (users × items). Zero for degenerate shapes.
    pub fn density(&self) -> f64 {
        if self.n_users == 0 || self.n_items == 0 {
            0.0
        } else {
            self.n_ratings() as f64 / (self.n_users as f64 * self.n_items as f64)
        }
    }

    /// The rating scale declared at build time.
    pub fn scale(&self) -> RatingScale {
        self.scale
    }

    /// Iterator over all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.n_users as u32).map(UserId)
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.n_items as u32).map(ItemId)
    }

    /// The user profile `X_u`: every `(item, value, timestep)` rated by `user`, sorted by
    /// item id. Empty slice (not an error) for in-range users with no ratings.
    pub fn user_profile(&self, user: UserId) -> &[UserEntry] {
        let u = user.index();
        if u >= self.n_users {
            return &[];
        }
        &self.user_entries[self.user_offsets[u]..self.user_offsets[u + 1]]
    }

    /// The item profile `Y_i`: every `(user, value, timestep)` who rated `item`, sorted by
    /// user id. Empty slice for in-range items with no ratings.
    pub fn item_profile(&self, item: ItemId) -> &[ItemEntry] {
        let i = item.index();
        if i >= self.n_items {
            return &[];
        }
        &self.item_entries[self.item_offsets[i]..self.item_offsets[i + 1]]
    }

    /// Number of ratings given by a user.
    pub fn user_degree(&self, user: UserId) -> usize {
        self.user_profile(user).len()
    }

    /// Number of ratings received by an item.
    pub fn item_degree(&self, item: ItemId) -> usize {
        self.item_profile(item).len()
    }

    /// The rating a user gave an item, if any (binary search in the user row).
    pub fn rating(&self, user: UserId, item: ItemId) -> Option<f64> {
        let row = self.user_profile(user);
        row.binary_search_by(|e| e.item.cmp(&item))
            .ok()
            .map(|idx| row[idx].value)
    }

    /// The timestep at which a user rated an item, if any.
    pub fn rating_timestep(&self, user: UserId, item: ItemId) -> Option<Timestep> {
        let row = self.user_profile(user);
        row.binary_search_by(|e| e.item.cmp(&item))
            .ok()
            .map(|idx| row[idx].timestep)
    }

    /// Average rating `r̄_u` of a user; falls back to the global average for users with no
    /// ratings (the paper completes the sparse matrix with averages, Table 1 footnote).
    pub fn user_average(&self, user: UserId) -> f64 {
        let u = user.index();
        if u >= self.n_users || self.user_degree(user) == 0 {
            self.global_avg
        } else {
            self.user_avg[u]
        }
    }

    /// Average rating `r̄_i` of an item; falls back to the global average for unrated items.
    pub fn item_average(&self, item: ItemId) -> f64 {
        let i = item.index();
        if i >= self.n_items || self.item_degree(item) == 0 {
            self.global_avg
        } else {
            self.item_avg[i]
        }
    }

    /// Global average rating over the whole matrix.
    pub fn global_average(&self) -> f64 {
        self.global_avg
    }

    /// Domain that an item belongs to.
    pub fn item_domain(&self, item: ItemId) -> DomainId {
        self.item_domain
            .get(item.index())
            .copied()
            .unwrap_or(DomainId::SOURCE)
    }

    /// Items belonging to a given domain.
    pub fn items_in_domain(&self, domain: DomainId) -> Vec<ItemId> {
        self.items()
            .filter(|&i| self.item_domain(i) == domain)
            .collect()
    }

    /// The set of domains present in the matrix, in ascending id order.
    pub fn domains(&self) -> Vec<DomainId> {
        let mut ds: Vec<DomainId> = self.item_domain.clone();
        ds.sort_unstable();
        ds.dedup();
        ds
    }

    /// Users who rated at least one item in *every* domain of `domains` — the *overlap*
    /// (straddler) users that make heterogeneous recommendation possible (§1.3).
    pub fn overlapping_users(&self, domains: &[DomainId]) -> Vec<UserId> {
        if domains.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        'users: for u in self.users() {
            let profile = self.user_profile(u);
            for &d in domains {
                if !profile.iter().any(|e| self.item_domain(e.item) == d) {
                    continue 'users;
                }
            }
            out.push(u);
        }
        out
    }

    /// Iterates all ratings in user-major order.
    pub fn iter(&self) -> impl Iterator<Item = Rating> + '_ {
        self.users().flat_map(move |u| {
            self.user_profile(u).iter().map(move |e| Rating {
                user: u,
                item: e.item,
                value: e.value,
                timestep: e.timestep,
            })
        })
    }

    /// Returns a new matrix containing only ratings for which `keep` returns true,
    /// preserving dimensions, domains and scale. Useful for building training subsets.
    pub fn filter(&self, mut keep: impl FnMut(&Rating) -> bool) -> Result<RatingMatrix> {
        let mut b =
            RatingMatrixBuilder::with_scale(self.scale).with_dimensions(self.n_users, self.n_items);
        for r in self.iter() {
            if keep(&r) {
                b.push(r)?;
            }
        }
        for i in self.items() {
            b.set_item_domain(i, self.item_domain(i));
        }
        b.build()
    }

    /// Applies a batch of new/updated ratings (plus item-domain declarations for new
    /// items) through an incremental merge — the builder path of the delta-fit
    /// subsystem.
    ///
    /// The result is **bit-identical** to pushing `self.iter()` followed by `delta`
    /// (in order) through a [`RatingMatrixBuilder`] carrying this matrix's scale,
    /// dimensions and domains: duplicate `(user, item)` pairs keep the latest rating by
    /// timestep, ties won by the delta (it is "pushed later"), and every average is
    /// recomputed with the builder's exact summation order. Only the rows of users
    /// appearing in `delta` are merged; everything else is copied, so the merge costs
    /// `O(n_ratings)` in memcpy-style passes plus `O(|delta| log |delta|)` — no global
    /// re-sort of the trace.
    ///
    /// Domain declarations follow builder semantics (last declaration wins), which lets
    /// new items be declared; redeclaring an existing item to a *different* domain is
    /// the caller's responsibility to reject (the model-level delta path does).
    pub fn apply_delta(
        &self,
        delta: &[Rating],
        new_domains: &[(ItemId, DomainId)],
    ) -> Result<RatingMatrix> {
        for r in delta {
            if !r.value.is_finite() {
                return Err(CfError::InvalidRating {
                    value: r.value,
                    context: "RatingMatrix::apply_delta",
                });
            }
        }

        let mut n_users = self.n_users;
        let mut n_items = self.n_items;
        for r in delta {
            n_users = n_users.max(r.user.index() + 1);
            n_items = n_items.max(r.item.index() + 1);
        }
        for (item, _) in new_domains {
            n_items = n_items.max(item.index() + 1);
        }

        // The delta's own winner per (user, item): latest timestep, ties by push order —
        // exactly what the builder's stable sort + keep-last dedup produces.
        let mut winners: Vec<Rating> = delta.to_vec();
        winners.sort_by_key(|r| (r.user, r.item, r.timestep));
        let mut deduped: Vec<Rating> = Vec::with_capacity(winners.len());
        for r in winners {
            match deduped.last_mut() {
                Some(last) if last.user == r.user && last.item == r.item => *last = r,
                _ => deduped.push(r),
            }
        }
        let winners = deduped;

        // Users whose rows must be merged, with their slice of `winners`.
        let mut delta_rows: Vec<(UserId, std::ops::Range<usize>)> = Vec::new();
        let mut start = 0usize;
        for ix in 0..winners.len() {
            if ix + 1 == winners.len() || winners[ix + 1].user != winners[ix].user {
                delta_rows.push((winners[ix].user, start..ix + 1));
                start = ix + 1;
            }
        }

        // --- User-major view: copy unchanged rows, merge the delta users' rows. ---
        let mut user_offsets = Vec::with_capacity(n_users + 1);
        user_offsets.push(0usize);
        let mut user_entries: Vec<UserEntry> = Vec::with_capacity(self.n_ratings() + winners.len());
        let mut next_delta_row = 0usize;
        for u in 0..n_users {
            let user = UserId(u as u32);
            let old_row = self.user_profile(user);
            match delta_rows.get(next_delta_row) {
                Some(&(delta_user, ref range)) if delta_user == user => {
                    next_delta_row += 1;
                    let fresh = &winners[range.clone()];
                    let (mut a, mut b) = (0usize, 0usize);
                    while a < old_row.len() || b < fresh.len() {
                        let take_fresh = match (old_row.get(a), fresh.get(b)) {
                            (Some(o), Some(f)) => match o.item.cmp(&f.item) {
                                std::cmp::Ordering::Less => {
                                    user_entries.push(*o);
                                    a += 1;
                                    continue;
                                }
                                std::cmp::Ordering::Greater => true,
                                std::cmp::Ordering::Equal => {
                                    // Builder dedup: the delta entry was pushed later,
                                    // so it wins unless the stored timestep is newer.
                                    if f.timestep >= o.timestep {
                                        a += 1;
                                        true
                                    } else {
                                        user_entries.push(*o);
                                        a += 1;
                                        b += 1;
                                        continue;
                                    }
                                }
                            },
                            (Some(o), None) => {
                                user_entries.push(*o);
                                a += 1;
                                continue;
                            }
                            (None, Some(_)) => true,
                            (None, None) => unreachable!("loop condition"),
                        };
                        if take_fresh {
                            let f = fresh[b];
                            user_entries.push(UserEntry {
                                item: f.item,
                                value: f.value,
                                timestep: f.timestep,
                            });
                            b += 1;
                        }
                    }
                }
                _ => user_entries.extend_from_slice(old_row),
            }
            user_offsets.push(user_entries.len());
        }
        debug_assert_eq!(next_delta_row, delta_rows.len());

        if user_entries.is_empty() && n_users == 0 && n_items == 0 {
            return Err(CfError::EmptyMatrix);
        }

        // --- Item-major mirror: scatter the merged entries in user-major order, the
        // builder's exact fill order (user-sorted columns). ---
        let mut item_offsets = vec![0usize; n_items + 1];
        for e in &user_entries {
            item_offsets[e.item.index() + 1] += 1;
        }
        for i in 0..n_items {
            item_offsets[i + 1] += item_offsets[i];
        }
        let mut item_entries = vec![
            ItemEntry {
                user: UserId(0),
                value: 0.0,
                timestep: Timestep(0)
            };
            user_entries.len()
        ];
        {
            let mut cursor = item_offsets.clone();
            for u in 0..n_users {
                for e in &user_entries[user_offsets[u]..user_offsets[u + 1]] {
                    let pos = cursor[e.item.index()];
                    item_entries[pos] = ItemEntry {
                        user: UserId(u as u32),
                        value: e.value,
                        timestep: e.timestep,
                    };
                    cursor[e.item.index()] += 1;
                }
            }
        }

        // --- Averages: copy the untouched ones, recompute the touched ones with the
        // builder's summation order (row/column order), never by adjusting sums. ---
        let mut user_avg = vec![0.0f64; n_users];
        user_avg[..self.n_users].copy_from_slice(&self.user_avg);
        for &(user, _) in &delta_rows {
            let u = user.index();
            let row = &user_entries[user_offsets[u]..user_offsets[u + 1]];
            user_avg[u] = if row.is_empty() {
                0.0
            } else {
                row.iter().map(|e| e.value).sum::<f64>() / row.len() as f64
            };
        }
        let mut touched_items: Vec<usize> = winners.iter().map(|r| r.item.index()).collect();
        touched_items.sort_unstable();
        touched_items.dedup();
        let mut item_avg = vec![0.0f64; n_items];
        item_avg[..self.n_items].copy_from_slice(&self.item_avg);
        for &i in &touched_items {
            let col = &item_entries[item_offsets[i]..item_offsets[i + 1]];
            item_avg[i] = if col.is_empty() {
                0.0
            } else {
                col.iter().map(|e| e.value).sum::<f64>() / col.len() as f64
            };
        }
        let global_avg = if user_entries.is_empty() {
            self.scale.midpoint()
        } else {
            // One linear pass in (user, item) order — the builder's `deduped` order.
            user_entries.iter().map(|e| e.value).sum::<f64>() / user_entries.len() as f64
        };

        let mut item_domain = vec![DomainId::SOURCE; n_items];
        item_domain[..self.n_items].copy_from_slice(&self.item_domain);
        for &(item, domain) in new_domains {
            item_domain[item.index()] = domain;
        }

        Ok(RatingMatrix {
            n_users,
            n_items,
            user_offsets,
            user_entries,
            item_offsets,
            item_entries,
            user_avg,
            item_avg,
            global_avg,
            item_domain,
            scale: self.scale,
        })
    }

    /// Splits the matrix view of a user's profile by domain: `(in_domain, out_of_domain)`.
    pub fn profile_by_domain(
        &self,
        user: UserId,
        domain: DomainId,
    ) -> (Vec<UserEntry>, Vec<UserEntry>) {
        let mut inside = Vec::new();
        let mut outside = Vec::new();
        for &e in self.user_profile(user) {
            if self.item_domain(e.item) == domain {
                inside.push(e);
            } else {
                outside.push(e);
            }
        }
        (inside, outside)
    }
}

/// On-disk codec for the matrix: both CSR views, the average caches, domains and
/// scale, in field order. Lives here (not in `codec.rs`) because the fields are
/// private to this module; decode reconstructs the struct verbatim, so a decoded
/// matrix is bit-identical (`PartialEq` over every field) to the encoded one.
impl xmap_store::Codec for RatingMatrix {
    fn enc(&self, e: &mut xmap_store::Encoder) {
        e.put_usize(self.n_users);
        e.put_usize(self.n_items);
        self.user_offsets.enc(e);
        self.user_entries.enc(e);
        self.item_offsets.enc(e);
        self.item_entries.enc(e);
        self.user_avg.enc(e);
        self.item_avg.enc(e);
        e.put_f64(self.global_avg);
        self.item_domain.enc(e);
        self.scale.enc(e);
    }

    fn dec(d: &mut xmap_store::Decoder<'_>) -> std::result::Result<Self, xmap_store::StoreError> {
        Ok(RatingMatrix {
            n_users: d.take_usize()?,
            n_items: d.take_usize()?,
            user_offsets: Vec::dec(d)?,
            user_entries: Vec::dec(d)?,
            item_offsets: Vec::dec(d)?,
            item_entries: Vec::dec(d)?,
            user_avg: Vec::dec(d)?,
            item_avg: Vec::dec(d)?,
            global_avg: d.take_f64()?,
            item_domain: Vec::dec(d)?,
            scale: RatingScale::dec(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        b.push_parts(0, 0, 5.0).unwrap();
        b.push_parts(0, 1, 3.0).unwrap();
        b.push_parts(1, 0, 4.0).unwrap();
        b.push_parts(1, 2, 2.0).unwrap();
        b.push_parts(2, 1, 1.0).unwrap();
        b.set_item_domain(ItemId(2), DomainId::TARGET);
        b.build().unwrap()
    }

    #[test]
    fn dimensions_and_counts() {
        let m = small();
        assert_eq!(m.n_users(), 3);
        assert_eq!(m.n_items(), 3);
        assert_eq!(m.n_ratings(), 5);
        assert!((m.density() - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn profiles_are_sorted_and_consistent() {
        let m = small();
        let p0 = m.user_profile(UserId(0));
        assert_eq!(p0.len(), 2);
        assert!(p0[0].item < p0[1].item);
        let y0 = m.item_profile(ItemId(0));
        assert_eq!(y0.len(), 2);
        assert!(y0[0].user < y0[1].user);
        // every user-view rating appears in the item view
        for r in m.iter() {
            assert!(m
                .item_profile(r.item)
                .iter()
                .any(|e| e.user == r.user && e.value == r.value));
        }
    }

    #[test]
    fn rating_lookup_and_averages() {
        let m = small();
        assert_eq!(m.rating(UserId(0), ItemId(1)), Some(3.0));
        assert_eq!(m.rating(UserId(2), ItemId(0)), None);
        assert!((m.user_average(UserId(0)) - 4.0).abs() < 1e-12);
        assert!((m.item_average(ItemId(0)) - 4.5).abs() < 1e-12);
        assert!((m.global_average() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_ids_fall_back_gracefully() {
        let m = small();
        assert!(m.user_profile(UserId(99)).is_empty());
        assert!(m.item_profile(ItemId(99)).is_empty());
        assert_eq!(m.user_average(UserId(99)), m.global_average());
        assert_eq!(m.item_average(ItemId(99)), m.global_average());
        assert_eq!(m.item_domain(ItemId(99)), DomainId::SOURCE);
    }

    #[test]
    fn duplicate_ratings_keep_latest_timestep() {
        let mut b = RatingMatrixBuilder::new();
        b.push_timed(0, 0, 2.0, 1).unwrap();
        b.push_timed(0, 0, 5.0, 9).unwrap();
        b.push_timed(0, 0, 3.0, 4).unwrap();
        let m = b.build().unwrap();
        assert_eq!(m.n_ratings(), 1);
        assert_eq!(m.rating(UserId(0), ItemId(0)), Some(5.0));
        assert_eq!(m.rating_timestep(UserId(0), ItemId(0)), Some(Timestep(9)));
    }

    #[test]
    fn empty_builder_errors_unless_dimensioned() {
        assert_eq!(
            RatingMatrixBuilder::new().build().unwrap_err(),
            CfError::EmptyMatrix
        );
        let m = RatingMatrixBuilder::new()
            .with_dimensions(2, 3)
            .build()
            .unwrap();
        assert_eq!(m.n_users(), 2);
        assert_eq!(m.n_items(), 3);
        assert_eq!(m.n_ratings(), 0);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    fn non_finite_ratings_rejected() {
        let mut b = RatingMatrixBuilder::new();
        let err = b.push_parts(0, 0, f64::NAN).unwrap_err();
        assert!(matches!(err, CfError::InvalidRating { .. }));
    }

    #[test]
    fn domains_and_overlap() {
        let m = small();
        assert_eq!(m.item_domain(ItemId(2)), DomainId::TARGET);
        assert_eq!(m.items_in_domain(DomainId::TARGET), vec![ItemId(2)]);
        assert_eq!(m.domains(), vec![DomainId::SOURCE, DomainId::TARGET]);
        // user 1 rated items in both domains; users 0 and 2 only in SOURCE
        assert_eq!(
            m.overlapping_users(&[DomainId::SOURCE, DomainId::TARGET]),
            vec![UserId(1)]
        );
        assert_eq!(m.overlapping_users(&[]), Vec::<UserId>::new());
    }

    #[test]
    fn filter_preserves_dimensions_and_domains() {
        let m = small();
        let only_high = m.filter(|r| r.value >= 4.0).unwrap();
        assert_eq!(only_high.n_users(), m.n_users());
        assert_eq!(only_high.n_items(), m.n_items());
        assert_eq!(only_high.n_ratings(), 2);
        assert_eq!(only_high.item_domain(ItemId(2)), DomainId::TARGET);
    }

    #[test]
    fn profile_by_domain_partitions_profile() {
        let m = small();
        let (inside, outside) = m.profile_by_domain(UserId(1), DomainId::TARGET);
        assert_eq!(inside.len(), 1);
        assert_eq!(outside.len(), 1);
        assert_eq!(inside[0].item, ItemId(2));
    }

    /// The delta oracle: the full rebuild `apply_delta` must match bit for bit — the
    /// old matrix's ratings pushed first (in iteration order), then the delta events.
    fn rebuild_with_delta(
        base: &RatingMatrix,
        delta: &[Rating],
        new_domains: &[(ItemId, DomainId)],
    ) -> RatingMatrix {
        let mut b = RatingMatrixBuilder::with_scale(base.scale())
            .with_dimensions(base.n_users(), base.n_items());
        for r in base.iter() {
            b.push(r).unwrap();
        }
        for &r in delta {
            b.push(r).unwrap();
        }
        for i in base.items() {
            b.set_item_domain(i, base.item_domain(i));
        }
        for &(i, d) in new_domains {
            b.set_item_domain(i, d);
        }
        b.build().unwrap()
    }

    #[test]
    fn apply_delta_matches_full_rebuild_on_update_insert_and_growth() {
        let base = small();
        // an update of an existing rating (newer timestep), a brand-new (user, item)
        // cell, a new user and a new item in one batch
        let delta = vec![
            Rating::at(UserId(0), ItemId(0), 2.0, Timestep(5)),
            Rating::at(UserId(2), ItemId(0), 4.0, Timestep(1)),
            Rating::at(UserId(7), ItemId(1), 5.0, Timestep(2)),
            Rating::at(UserId(1), ItemId(9), 3.0, Timestep(3)),
        ];
        let domains = vec![(ItemId(9), DomainId::TARGET)];
        let updated = base.apply_delta(&delta, &domains).unwrap();
        assert_eq!(updated, rebuild_with_delta(&base, &delta, &domains));
        assert_eq!(updated.n_users(), 8);
        assert_eq!(updated.n_items(), 10);
        assert_eq!(updated.rating(UserId(0), ItemId(0)), Some(2.0));
        assert_eq!(updated.item_domain(ItemId(9)), DomainId::TARGET);
        // untouched cells keep their exact bits
        assert_eq!(
            updated.rating(UserId(0), ItemId(1)).map(f64::to_bits),
            base.rating(UserId(0), ItemId(1)).map(f64::to_bits)
        );
    }

    #[test]
    fn apply_delta_empty_delta_is_identity() {
        let base = small();
        let updated = base.apply_delta(&[], &[]).unwrap();
        assert_eq!(updated, base);
    }

    #[test]
    fn apply_delta_keeps_stored_rating_when_it_is_newer() {
        let mut b = RatingMatrixBuilder::new();
        b.push_timed(0, 0, 5.0, 9).unwrap();
        let base = b.build().unwrap();
        // older delta timestep loses; equal timestep wins (delta is "pushed later")
        let older = base
            .apply_delta(&[Rating::at(UserId(0), ItemId(0), 1.0, Timestep(3))], &[])
            .unwrap();
        assert_eq!(older.rating(UserId(0), ItemId(0)), Some(5.0));
        let tied = base
            .apply_delta(&[Rating::at(UserId(0), ItemId(0), 1.0, Timestep(9))], &[])
            .unwrap();
        assert_eq!(tied.rating(UserId(0), ItemId(0)), Some(1.0));
    }

    #[test]
    fn apply_delta_repeated_updates_to_one_cell_keep_the_last_winner() {
        let base = small();
        let delta = vec![
            Rating::at(UserId(0), ItemId(0), 1.0, Timestep(4)),
            Rating::at(UserId(0), ItemId(0), 2.0, Timestep(4)),
            Rating::at(UserId(0), ItemId(0), 3.0, Timestep(2)),
        ];
        let updated = base.apply_delta(&delta, &[]).unwrap();
        assert_eq!(updated, rebuild_with_delta(&base, &delta, &[]));
        // timestep 4 wins over 2; among the two t=4 pushes the later one wins
        assert_eq!(updated.rating(UserId(0), ItemId(0)), Some(2.0));
        assert_eq!(updated.n_ratings(), base.n_ratings());
    }

    #[test]
    fn apply_delta_rejects_non_finite_values() {
        let base = small();
        let err = base
            .apply_delta(&[Rating::new(UserId(0), ItemId(0), f64::NAN)], &[])
            .unwrap_err();
        assert!(matches!(err, CfError::InvalidRating { .. }));
    }

    #[test]
    fn iter_round_trips_through_from_ratings() {
        let m = small();
        let ratings: Vec<Rating> = m.iter().collect();
        let m2 = RatingMatrix::from_ratings(ratings).unwrap();
        assert_eq!(m2.n_ratings(), m.n_ratings());
        for r in m.iter() {
            assert_eq!(m2.rating(r.user, r.item), Some(r.value));
        }
    }

    mod delta_props {
        use super::*;
        use proptest::prelude::*;

        fn matrix_from(ratings: &[(u32, u32, u32, u32)]) -> Option<RatingMatrix> {
            if ratings.is_empty() {
                return None;
            }
            let mut b = RatingMatrixBuilder::new();
            for &(u, i, v, t) in ratings {
                b.push_timed(u, i, v as f64, t).unwrap();
            }
            for i in 0..=ratings.iter().map(|r| r.1).max().unwrap() {
                b.set_item_domain(ItemId(i), DomainId((i % 2) as u16));
            }
            Some(b.build().unwrap())
        }

        proptest! {
            /// The incremental merge is bit-identical to the full rebuild for random
            /// bases and random deltas (updates, inserts, duplicate delta keys, new
            /// users and new items all drawn from overlapping id ranges).
            #[test]
            fn apply_delta_is_bit_identical_to_full_rebuild(
                base in proptest::collection::vec((0u32..8, 0u32..10, 1u32..=5, 0u32..6), 1..120),
                delta in proptest::collection::vec((0u32..12, 0u32..14, 1u32..=5, 0u32..8), 0..40),
            ) {
                let base = matrix_from(&base).unwrap();
                let delta: Vec<Rating> = delta
                    .into_iter()
                    .map(|(u, i, v, t)| Rating::at(UserId(u), ItemId(i), v as f64, Timestep(t)))
                    .collect();
                // declare a domain for every genuinely new item, like a real delta would
                let new_domains: Vec<(ItemId, DomainId)> = delta
                    .iter()
                    .map(|r| r.item)
                    .filter(|i| i.index() >= base.n_items())
                    .map(|i| (i, DomainId((i.0 % 2) as u16)))
                    .collect();
                let incremental = base.apply_delta(&delta, &new_domains).unwrap();
                let rebuilt = rebuild_with_delta(&base, &delta, &new_domains);
                prop_assert_eq!(&incremental, &rebuilt);
                // the averages must agree in bits, not merely within tolerance
                for u in incremental.users() {
                    prop_assert_eq!(
                        incremental.user_average(u).to_bits(),
                        rebuilt.user_average(u).to_bits()
                    );
                }
                for i in incremental.items() {
                    prop_assert_eq!(
                        incremental.item_average(i).to_bits(),
                        rebuilt.item_average(i).to_bits()
                    );
                }
                prop_assert_eq!(
                    incremental.global_average().to_bits(),
                    rebuilt.global_average().to_bits()
                );
            }
        }
    }
}
