//! Error types shared by the collaborative-filtering substrate.

use std::fmt;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, CfError>;

/// Errors produced by the CF substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum CfError {
    /// A user id referenced by an operation is not present in the rating matrix.
    UnknownUser(u32),
    /// An item id referenced by an operation is not present in the rating matrix.
    UnknownItem(u32),
    /// A rating value was not finite, or otherwise outside the allowed scale.
    InvalidRating {
        /// Offending value.
        value: f64,
        /// Human-readable context for the failure.
        context: &'static str,
    },
    /// The operation requires a non-empty rating matrix.
    EmptyMatrix,
    /// An algorithm received an invalid hyper-parameter (e.g. `k == 0`, negative α).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// Model training failed to make progress (e.g. ALS produced non-finite factors).
    TrainingDiverged(String),
}

impl fmt::Display for CfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfError::UnknownUser(u) => write!(f, "unknown user id {u}"),
            CfError::UnknownItem(i) => write!(f, "unknown item id {i}"),
            CfError::InvalidRating { value, context } => {
                write!(f, "invalid rating value {value} ({context})")
            }
            CfError::EmptyMatrix => write!(f, "operation requires a non-empty rating matrix"),
            CfError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CfError::TrainingDiverged(msg) => write!(f, "training diverged: {msg}"),
        }
    }
}

impl std::error::Error for CfError {}

impl CfError {
    /// Helper to build an [`CfError::InvalidParameter`] error.
    pub fn invalid_parameter(name: &'static str, message: impl Into<String>) -> Self {
        CfError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_human_readably() {
        assert_eq!(CfError::UnknownUser(3).to_string(), "unknown user id 3");
        assert_eq!(CfError::UnknownItem(9).to_string(), "unknown item id 9");
        assert!(CfError::EmptyMatrix.to_string().contains("non-empty"));
        let e = CfError::invalid_parameter("k", "must be positive");
        assert_eq!(e.to_string(), "invalid parameter `k`: must be positive");
        let e = CfError::InvalidRating {
            value: f64::NAN,
            context: "builder",
        };
        assert!(e.to_string().contains("invalid rating"));
        assert!(CfError::TrainingDiverged("nan loss".into())
            .to_string()
            .contains("nan loss"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CfError::EmptyMatrix);
    }
}
