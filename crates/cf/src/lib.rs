//! # xmap-cf — collaborative-filtering substrate
//!
//! This crate provides the homogeneous collaborative-filtering building blocks that the
//! X-Map heterogeneous recommender (Guerraoui et al., VLDB 2017) is built on top of:
//!
//! * a compact, index-based [`RatingMatrix`] with both user-major and item-major views,
//! * the classical similarity metrics used by the paper (cosine, Pearson and
//!   adjusted cosine — Equations 1, 3 and 6 of the paper),
//! * *weighted significance* statistics (Definition 2) shared with the X-Sim metric,
//! * user-based and item-based k-nearest-neighbour CF (Algorithms 1 and 2),
//! * the temporally weighted item-based predictor (Equation 7),
//! * an Alternating-Least-Squares matrix-factorisation recommender standing in for
//!   Spark MLlib-ALS, and
//! * the competitor baselines evaluated in §6 (ItemAverage, UserAverage, RemoteUser,
//!   linked-domain item-kNN, single-domain kNN, SlopeOne).
//!
//! Everything in this crate is *single-domain agnostic*: domains are just labels attached
//! to items, and the cross-domain machinery lives in `xmap-graph` / `xmap-core`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod als;
pub mod baselines;
pub mod codec;
pub mod error;
pub mod ids;
pub mod knn;
pub mod matrix;
pub mod mrv;
pub mod rating;
pub mod similarity;
pub mod temporal;
pub mod topk;

pub use error::{CfError, Result};
pub use ids::{DomainId, ItemId, UserId};
pub use knn::{CandidateScratch, ItemKnn, ItemKnnConfig, UserKnn, UserKnnConfig};
pub use matrix::{RatingMatrix, RatingMatrixBuilder};
pub use mrv::{MrvCell, MrvCounterSplit, MrvShard, MrvSplit};
pub use rating::{Rating, Timestep};
pub use similarity::{SimilarityMetric, SimilarityStats};
