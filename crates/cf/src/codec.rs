//! [`Codec`] implementations for the CF substrate's plain value types.
//!
//! The encodings here are the leaves the snapshot format is built from: ids and
//! timesteps as their raw integers, ratings/entries/statistics as field sequences
//! in declaration order, floats as IEEE-754 bits (bit-exact round trips). The
//! [`crate::RatingMatrix`] codec lives in `matrix.rs` next to its private fields.

use crate::ids::{DomainId, ItemId, UserId};
use crate::knn::ItemNeighbor;
use crate::matrix::{ItemEntry, UserEntry};
use crate::rating::{Rating, RatingScale, Timestep};
use crate::similarity::{SimilarityMetric, SimilarityStats};
use xmap_store::{Codec, Decoder, Encoder, StoreError};

macro_rules! newtype_codec {
    ($ty:ident, $raw:ty) => {
        impl Codec for $ty {
            fn enc(&self, e: &mut Encoder) {
                self.0.enc(e);
            }
            fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
                Ok($ty(<$raw>::dec(d)?))
            }
        }
    };
}

newtype_codec!(UserId, u32);
newtype_codec!(ItemId, u32);
newtype_codec!(DomainId, u16);
newtype_codec!(Timestep, u32);

impl Codec for Rating {
    fn enc(&self, e: &mut Encoder) {
        self.user.enc(e);
        self.item.enc(e);
        e.put_f64(self.value);
        self.timestep.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(Rating {
            user: UserId::dec(d)?,
            item: ItemId::dec(d)?,
            value: d.take_f64()?,
            timestep: Timestep::dec(d)?,
        })
    }
}

impl Codec for RatingScale {
    fn enc(&self, e: &mut Encoder) {
        e.put_f64(self.min);
        e.put_f64(self.max);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(RatingScale {
            min: d.take_f64()?,
            max: d.take_f64()?,
        })
    }
}

impl Codec for UserEntry {
    fn enc(&self, e: &mut Encoder) {
        self.item.enc(e);
        e.put_f64(self.value);
        self.timestep.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(UserEntry {
            item: ItemId::dec(d)?,
            value: d.take_f64()?,
            timestep: Timestep::dec(d)?,
        })
    }
}

impl Codec for ItemEntry {
    fn enc(&self, e: &mut Encoder) {
        self.user.enc(e);
        e.put_f64(self.value);
        self.timestep.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(ItemEntry {
            user: UserId::dec(d)?,
            value: d.take_f64()?,
            timestep: Timestep::dec(d)?,
        })
    }
}

impl Codec for SimilarityMetric {
    fn enc(&self, e: &mut Encoder) {
        e.put_u8(match self {
            SimilarityMetric::AdjustedCosine => 0,
            SimilarityMetric::Cosine => 1,
            SimilarityMetric::Pearson => 2,
        });
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        match d.take_u8()? {
            0 => Ok(SimilarityMetric::AdjustedCosine),
            1 => Ok(SimilarityMetric::Cosine),
            2 => Ok(SimilarityMetric::Pearson),
            tag => Err(d.corrupt(format!("invalid SimilarityMetric tag {tag}"))),
        }
    }
}

impl Codec for SimilarityStats {
    fn enc(&self, e: &mut Encoder) {
        e.put_f64(self.similarity);
        e.put_u32(self.co_raters);
        e.put_u32(self.significance);
        e.put_u32(self.union_size);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(SimilarityStats {
            similarity: d.take_f64()?,
            co_raters: d.take_u32()?,
            significance: d.take_u32()?,
            union_size: d.take_u32()?,
        })
    }
}

impl Codec for ItemNeighbor {
    fn enc(&self, e: &mut Encoder) {
        self.item.enc(e);
        e.put_f64(self.similarity);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(ItemNeighbor {
            item: ItemId::dec(d)?,
            similarity: d.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_store::{decode_exact, encode_to_vec};

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_exact(&bytes, 0).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn value_types_roundtrip() {
        roundtrip(UserId(7));
        roundtrip(ItemId(u32::MAX));
        roundtrip(DomainId::TARGET);
        roundtrip(Timestep(3));
        roundtrip(Rating::at(UserId(1), ItemId(2), 4.5, Timestep(9)));
        roundtrip(RatingScale::FIVE_STAR);
        roundtrip(SimilarityMetric::AdjustedCosine);
        roundtrip(SimilarityMetric::Pearson);
        roundtrip(SimilarityStats {
            similarity: -0.25,
            co_raters: 3,
            significance: 2,
            union_size: 11,
        });
        roundtrip(ItemNeighbor {
            item: ItemId(5),
            similarity: 0.75,
        });
    }

    #[test]
    fn invalid_metric_tag_is_corrupt() {
        let err = decode_exact::<SimilarityMetric>(&[9], 0).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
    }
}
