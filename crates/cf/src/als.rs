//! Alternating Least Squares matrix factorisation.
//!
//! The paper compares X-Map against Spark MLlib's ALS recommender (`MLlib-ALS`) both for
//! accuracy in the homogeneous setting (Table 3) and for scalability (Figure 11). This
//! module is a from-scratch ALS implementation with L2 regularisation: user and item
//! factor matrices are alternately re-solved by ridge regression against the observed
//! ratings, exactly the algorithm MLlib implements (explicit-feedback variant).
//!
//! The factor dimension is deliberately small by default (16) — the evaluation cares
//! about relative behaviour against the neighbourhood methods, not about squeezing the
//! last percent of RMSE out of the factor model.

use crate::error::{CfError, Result};
use crate::ids::{ItemId, UserId};
use crate::matrix::RatingMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the ALS trainer.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AlsConfig {
    /// Number of latent factors.
    pub factors: usize,
    /// Number of alternating sweeps (one sweep = users then items).
    pub iterations: usize,
    /// L2 regularisation strength λ.
    pub regularization: f64,
    /// Seed for the random factor initialisation.
    pub seed: u64,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig {
            factors: 16,
            iterations: 10,
            regularization: 0.1,
            seed: 42,
        }
    }
}

/// A trained ALS factor model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AlsModel {
    factors: usize,
    /// Row-major `n_users × factors` matrix.
    user_factors: Vec<f64>,
    /// Row-major `n_items × factors` matrix.
    item_factors: Vec<f64>,
    global_mean: f64,
    scale_min: f64,
    scale_max: f64,
    /// Training loss (regularised RMSE on observed entries) after each sweep.
    pub loss_history: Vec<f64>,
}

impl AlsModel {
    /// Trains an ALS model on the observed entries of `matrix`.
    pub fn train(matrix: &RatingMatrix, config: AlsConfig) -> Result<Self> {
        if config.factors == 0 {
            return Err(CfError::invalid_parameter("factors", "must be at least 1"));
        }
        if config.iterations == 0 {
            return Err(CfError::invalid_parameter(
                "iterations",
                "must be at least 1",
            ));
        }
        if config.regularization < 0.0 || !config.regularization.is_finite() {
            return Err(CfError::invalid_parameter(
                "regularization",
                "must be finite and non-negative",
            ));
        }
        if matrix.n_ratings() == 0 {
            return Err(CfError::EmptyMatrix);
        }

        let f = config.factors;
        let n_users = matrix.n_users();
        let n_items = matrix.n_items();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let global_mean = matrix.global_average();

        let mut user_factors: Vec<f64> =
            (0..n_users * f).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let mut item_factors: Vec<f64> =
            (0..n_items * f).map(|_| rng.gen_range(-0.1..0.1)).collect();

        let mut loss_history = Vec::with_capacity(config.iterations);
        for _sweep in 0..config.iterations {
            // Solve user factors with item factors fixed.
            solve_side(
                f,
                config.regularization,
                &mut user_factors,
                &item_factors,
                n_users,
                |u| {
                    matrix
                        .user_profile(UserId(u as u32))
                        .iter()
                        .map(|e| (e.item.index(), e.value - global_mean))
                        .collect()
                },
            );
            // Solve item factors with user factors fixed.
            solve_side(
                f,
                config.regularization,
                &mut item_factors,
                &user_factors,
                n_items,
                |i| {
                    matrix
                        .item_profile(ItemId(i as u32))
                        .iter()
                        .map(|e| (e.user.index(), e.value - global_mean))
                        .collect()
                },
            );

            let loss = training_rmse(matrix, f, global_mean, &user_factors, &item_factors);
            if !loss.is_finite() {
                return Err(CfError::TrainingDiverged(format!(
                    "non-finite training loss after sweep {_sweep}"
                )));
            }
            loss_history.push(loss);
        }

        let scale = matrix.scale();
        Ok(AlsModel {
            factors: f,
            user_factors,
            item_factors,
            global_mean,
            scale_min: scale.min,
            scale_max: scale.max,
            loss_history,
        })
    }

    /// Number of latent factors.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Predicted rating for `(user, item)`, clamped to the training scale. Unknown users
    /// or items fall back to the global mean.
    pub fn predict(&self, user: UserId, item: ItemId) -> f64 {
        let u = user.index();
        let i = item.index();
        let raw = if u * self.factors + self.factors <= self.user_factors.len()
            && i * self.factors + self.factors <= self.item_factors.len()
        {
            let uf = &self.user_factors[u * self.factors..(u + 1) * self.factors];
            let vf = &self.item_factors[i * self.factors..(i + 1) * self.factors];
            self.global_mean + dot(uf, vf)
        } else {
            self.global_mean
        };
        raw.clamp(self.scale_min, self.scale_max)
    }

    /// Top-N recommendations for a user, excluding items in `exclude`.
    pub fn recommend(&self, user: UserId, n: usize, exclude: &[ItemId]) -> Vec<(ItemId, f64)> {
        let n_items = self.item_factors.len() / self.factors;
        let scored = (0..n_items as u32)
            .map(ItemId)
            .filter(|i| !exclude.contains(i))
            .map(|i| (self.predict(user, i), i));
        crate::topk::top_k(n, scored)
            .into_iter()
            .map(|(s, i)| (i, s))
            .collect()
    }
}

/// Solves one side of the alternating scheme: for every row of `target`, ridge-regress its
/// factor vector against the fixed `other` factors over the observed entries.
fn solve_side(
    f: usize,
    lambda: f64,
    target: &mut [f64],
    other: &[f64],
    n_rows: usize,
    observed: impl Fn(usize) -> Vec<(usize, f64)>,
) {
    let mut a = vec![0.0f64; f * f];
    let mut b = vec![0.0f64; f];
    for row in 0..n_rows {
        let obs = observed(row);
        if obs.is_empty() {
            // keep the (small random) factors: no information to update them with
            continue;
        }
        a.iter_mut().for_each(|x| *x = 0.0);
        b.iter_mut().for_each(|x| *x = 0.0);
        for &(col, r) in &obs {
            let v = &other[col * f..(col + 1) * f];
            for p in 0..f {
                b[p] += r * v[p];
                for q in 0..f {
                    a[p * f + q] += v[p] * v[q];
                }
            }
        }
        let reg = lambda * obs.len() as f64;
        for p in 0..f {
            a[p * f + p] += reg;
        }
        let x = solve_linear_system(&mut a, &mut b, f);
        target[row * f..(row + 1) * f].copy_from_slice(&x);
    }
}

/// Solves `A x = b` for a small dense symmetric positive-definite system by Gaussian
/// elimination with partial pivoting. `a` and `b` are clobbered.
fn solve_linear_system(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // pivot
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        if diag.abs() < 1e-12 {
            continue; // singular direction; leave as-is (regularisation normally prevents this)
        }
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            // lint: float-eq — exact-zero elimination skip; any nonzero factor must run.
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in (col + 1)..n {
            sum -= a[col * n + k] * x[k];
        }
        let diag = a[col * n + col];
        x[col] = if diag.abs() < 1e-12 { 0.0 } else { sum / diag };
    }
    x
}

fn training_rmse(
    matrix: &RatingMatrix,
    f: usize,
    global_mean: f64,
    user_factors: &[f64],
    item_factors: &[f64],
) -> f64 {
    let mut se = 0.0;
    let mut n = 0usize;
    for r in matrix.iter() {
        let uf = &user_factors[r.user.index() * f..(r.user.index() + 1) * f];
        let vf = &item_factors[r.item.index() * f..(r.item.index() + 1) * f];
        let pred = global_mean + dot(uf, vf);
        se += (pred - r.value) * (pred - r.value);
        n += 1;
    }
    (se / n.max(1) as f64).sqrt()
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RatingMatrixBuilder;
    use rand::Rng;

    /// Low-rank synthetic ratings: r(u, i) = clamp(3 + sign pattern), rank-1 structure.
    fn low_rank(n_users: u32, n_items: u32, density: f64, seed: u64) -> RatingMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let user_sign: Vec<f64> = (0..n_users)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        let item_sign: Vec<f64> = (0..n_items)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        let mut b = RatingMatrixBuilder::new().with_dimensions(n_users as usize, n_items as usize);
        for u in 0..n_users {
            for i in 0..n_items {
                if rng.gen_bool(density) {
                    let v = 3.0 + 2.0 * user_sign[u as usize] * item_sign[i as usize];
                    b.push_parts(u, i, v).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn training_loss_decreases() {
        let m = low_rank(40, 30, 0.3, 1);
        let model = AlsModel::train(
            &m,
            AlsConfig {
                factors: 4,
                iterations: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let first = model.loss_history.first().copied().unwrap();
        let last = model.loss_history.last().copied().unwrap();
        assert!(last <= first, "loss should not increase: {first} -> {last}");
        assert!(
            last < 1.0,
            "rank-1 structure should be learnable, got RMSE {last}"
        );
    }

    #[test]
    fn predictions_recover_structure() {
        let m = low_rank(40, 30, 0.4, 2);
        let model = AlsModel::train(
            &m,
            AlsConfig {
                factors: 4,
                iterations: 10,
                ..Default::default()
            },
        )
        .unwrap();
        // On observed entries the prediction should be close to the true value.
        let mut abs_err = 0.0;
        let mut n = 0;
        for r in m.iter() {
            abs_err += (model.predict(r.user, r.item) - r.value).abs();
            n += 1;
        }
        let mae = abs_err / n as f64;
        assert!(mae < 0.8, "training MAE too high: {mae}");
    }

    #[test]
    fn predictions_clamped_and_fallback_for_unknown_ids() {
        let m = low_rank(10, 10, 0.5, 3);
        let model = AlsModel::train(
            &m,
            AlsConfig {
                factors: 2,
                iterations: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for u in 0..10u32 {
            for i in 0..10u32 {
                let p = model.predict(UserId(u), ItemId(i));
                assert!((1.0..=5.0).contains(&p));
            }
        }
        let p = model.predict(UserId(999), ItemId(999));
        assert!((p - m.global_average().clamp(1.0, 5.0)).abs() < 1e-9);
    }

    #[test]
    fn recommend_excludes_requested_items() {
        let m = low_rank(20, 15, 0.4, 4);
        let model = AlsModel::train(
            &m,
            AlsConfig {
                factors: 3,
                iterations: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let exclude = vec![ItemId(0), ItemId(1), ItemId(2)];
        let recs = model.recommend(UserId(0), 5, &exclude);
        assert_eq!(recs.len(), 5);
        for (item, _) in recs {
            assert!(!exclude.contains(&item));
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let m = low_rank(5, 5, 0.6, 5);
        assert!(AlsModel::train(
            &m,
            AlsConfig {
                factors: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(AlsModel::train(
            &m,
            AlsConfig {
                iterations: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(AlsModel::train(
            &m,
            AlsConfig {
                regularization: -1.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn empty_matrix_is_rejected() {
        let m = RatingMatrixBuilder::new()
            .with_dimensions(3, 3)
            .build()
            .unwrap();
        assert!(matches!(
            AlsModel::train(&m, AlsConfig::default()),
            Err(CfError::EmptyMatrix)
        ));
    }

    #[test]
    fn linear_solver_solves_known_system() {
        // A = [[2, 1], [1, 3]], b = [3, 5] -> x = [4/5, 7/5]
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![3.0, 5.0];
        let x = solve_linear_system(&mut a, &mut b, 2);
        assert!((x[0] - 0.8).abs() < 1e-9);
        assert!((x[1] - 1.4).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let m = low_rank(15, 12, 0.4, 6);
        let cfg = AlsConfig {
            factors: 3,
            iterations: 4,
            seed: 7,
            ..Default::default()
        };
        let m1 = AlsModel::train(&m, cfg).unwrap();
        let m2 = AlsModel::train(&m, cfg).unwrap();
        assert_eq!(m1.loss_history, m2.loss_history);
        assert_eq!(
            m1.predict(UserId(3), ItemId(4)),
            m2.predict(UserId(3), ItemId(4))
        );
    }
}
