//! Competitor baselines from §6.1 of the paper.
//!
//! The paper compares X-Map against three classes of alternatives:
//!
//! * **Baseline prediction** — [`ItemAverage`] (predict the item's mean rating over all
//!   users, Baltrunas & Ricci) and [`UserAverage`] (predict the user's mean rating).
//! * **Linked-domain personalisation** — [`LinkedDomainItemKnn`] (a.k.a. *Item-based-kNN*
//!   / *KNN-cd*): aggregate all ratings from both domains into one matrix and run plain
//!   item-based CF over it.
//! * **Heterogeneous recommendation** — [`RemoteUser`] (Berkovsky et al. cross-domain
//!   mediation): neighbours are selected with *source-domain* user similarities and then
//!   user-based CF predicts in the target domain.
//!
//! In addition, [`SingleDomainItemKnn`] (*KNN-sd*, Figure 10) ignores the source domain
//! entirely, and [`SlopeOne`] is provided as an extra non-personalised-deviation baseline
//! for ablation benches.
//!
//! All baselines implement the common [`RatingPredictor`] trait so the evaluation
//! harness can treat every system uniformly.

use crate::error::Result;
use crate::ids::{DomainId, ItemId, UserId};
use crate::knn::{ItemKnn, ItemKnnConfig, UserKnnConfig};
use crate::matrix::RatingMatrix;
use crate::similarity::user_similarity;
use crate::topk::TopK;
use std::collections::HashMap;

/// Common interface of every rating predictor evaluated in the paper.
pub trait RatingPredictor {
    /// Predicted rating of `item` for `user`.
    fn predict(&self, user: UserId, item: ItemId) -> f64;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// ItemAverage / UserAverage
// ---------------------------------------------------------------------------

/// Predicts the average rating of the item over all users who rated it ("ITEMAVERAGE").
///
/// The paper notes this gives a good estimate of the actual rating but is not
/// personalised — every user receives the same prediction for a given item.
pub struct ItemAverage<'a> {
    matrix: &'a RatingMatrix,
}

impl<'a> ItemAverage<'a> {
    /// Creates the baseline over a training matrix.
    pub fn new(matrix: &'a RatingMatrix) -> Self {
        ItemAverage { matrix }
    }
}

impl RatingPredictor for ItemAverage<'_> {
    fn predict(&self, _user: UserId, item: ItemId) -> f64 {
        self.matrix.scale().clamp(self.matrix.item_average(item))
    }
    fn name(&self) -> &'static str {
        "ItemAverage"
    }
}

/// Predicts the average rating the user gave over all items they rated.
pub struct UserAverage<'a> {
    matrix: &'a RatingMatrix,
}

impl<'a> UserAverage<'a> {
    /// Creates the baseline over a training matrix.
    pub fn new(matrix: &'a RatingMatrix) -> Self {
        UserAverage { matrix }
    }
}

impl RatingPredictor for UserAverage<'_> {
    fn predict(&self, user: UserId, _item: ItemId) -> f64 {
        self.matrix.scale().clamp(self.matrix.user_average(user))
    }
    fn name(&self) -> &'static str {
        "UserAverage"
    }
}

// ---------------------------------------------------------------------------
// Linked-domain item-based kNN (Item-based-kNN / KNN-cd)
// ---------------------------------------------------------------------------

/// Item-based kNN over the aggregated (linked-domain) rating matrix — the
/// "Item-based-kNN" competitor of Figures 8–9 and the "KNN-cd" competitor of Figure 10.
pub struct LinkedDomainItemKnn<'a> {
    model: ItemKnn<'a>,
}

impl<'a> LinkedDomainItemKnn<'a> {
    /// Fits item-based CF over the full aggregated matrix.
    pub fn fit(matrix: &'a RatingMatrix, k: usize) -> Result<Self> {
        let model = ItemKnn::fit(
            matrix,
            ItemKnnConfig {
                k,
                ..Default::default()
            },
        )?;
        Ok(LinkedDomainItemKnn { model })
    }

    /// Access to the underlying item-kNN model.
    pub fn model(&self) -> &ItemKnn<'a> {
        &self.model
    }
}

impl RatingPredictor for LinkedDomainItemKnn<'_> {
    fn predict(&self, user: UserId, item: ItemId) -> f64 {
        self.model.predict(user, item)
    }
    fn name(&self) -> &'static str {
        "Item-based-kNN"
    }
}

// ---------------------------------------------------------------------------
// Single-domain item-based kNN (KNN-sd)
// ---------------------------------------------------------------------------

/// Item-based kNN restricted to the target domain only ("KNN-sd" in Figure 10): source
/// domain ratings are discarded, so cold-start users receive unpersonalised predictions.
pub struct SingleDomainItemKnn {
    target_only: RatingMatrix,
    k: usize,
}

impl SingleDomainItemKnn {
    /// Builds the target-domain-only training matrix and remembers `k`.
    pub fn fit(matrix: &RatingMatrix, target: DomainId, k: usize) -> Result<Self> {
        let target_only = matrix.filter(|r| matrix.item_domain(r.item) == target)?;
        Ok(SingleDomainItemKnn { target_only, k })
    }

    /// The filtered (target-domain-only) training matrix.
    pub fn training_matrix(&self) -> &RatingMatrix {
        &self.target_only
    }

    /// Predicts through a freshly fitted item-kNN over the filtered matrix.
    ///
    /// The model is fitted lazily per call batch in [`Self::predict_batch`]; for single
    /// predictions use that entry point too, as refitting per rating would be wasteful.
    pub fn predict_batch(&self, queries: &[(UserId, ItemId)]) -> Result<Vec<f64>> {
        let model = ItemKnn::fit(
            &self.target_only,
            ItemKnnConfig {
                k: self.k,
                ..Default::default()
            },
        )?;
        Ok(queries.iter().map(|&(u, i)| model.predict(u, i)).collect())
    }
}

// ---------------------------------------------------------------------------
// RemoteUser (cross-domain mediation, Berkovsky et al.)
// ---------------------------------------------------------------------------

/// The RemoteUser heterogeneous competitor: neighbours of a user are selected using
/// *source-domain* similarities, and the neighbours' *target-domain* ratings are then
/// combined with user-based CF (Equation 2) to predict target items.
pub struct RemoteUser<'a> {
    full: &'a RatingMatrix,
    source_only: RatingMatrix,
    config: UserKnnConfig,
}

impl<'a> RemoteUser<'a> {
    /// Creates the RemoteUser baseline.
    ///
    /// `full` must contain ratings of both domains with item domains declared; `source`
    /// selects the domain used for neighbour selection.
    pub fn new(full: &'a RatingMatrix, source: DomainId, config: UserKnnConfig) -> Result<Self> {
        let source_only = full.filter(|r| full.item_domain(r.item) == source)?;
        Ok(RemoteUser {
            full,
            source_only,
            config,
        })
    }

    /// The k nearest neighbours of `user` measured on source-domain ratings only.
    pub fn source_neighbors(&self, user: UserId) -> Vec<(UserId, f64)> {
        let mut collector = TopK::new(self.config.k);
        for other in self.source_only.users() {
            if other == user {
                continue;
            }
            let sim = user_similarity(&self.source_only, user, other);
            // lint: float-eq — exact zero is the "no overlap" sentinel from user_similarity.
            if sim != 0.0 && sim.abs() > self.config.min_similarity {
                collector.push(sim, other);
            }
        }
        collector
            .into_sorted_vec()
            .into_iter()
            .map(|(s, u)| (u, s))
            .collect()
    }
}

impl RatingPredictor for RemoteUser<'_> {
    fn predict(&self, user: UserId, item: ItemId) -> f64 {
        let neighbors = self.source_neighbors(user);
        let user_avg = self.full.user_average(user);
        let mut num = 0.0;
        let mut den = 0.0;
        for &(b, sim) in &neighbors {
            if let Some(r) = self.full.rating(b, item) {
                num += sim * (r - self.full.user_average(b));
                den += sim.abs();
            }
        }
        let raw = if den < 1e-12 {
            user_avg
        } else {
            user_avg + num / den
        };
        self.full.scale().clamp(raw)
    }
    fn name(&self) -> &'static str {
        "RemoteUser"
    }
}

// ---------------------------------------------------------------------------
// Slope One
// ---------------------------------------------------------------------------

/// The Slope One predictor (Lemire & Maclachlan): predicts from average pairwise rating
/// deviations. Used as an additional non-neighbourhood baseline in ablation benches.
pub struct SlopeOne<'a> {
    matrix: &'a RatingMatrix,
    /// `(item_j, item_i) -> (sum of r_j - r_i, count)` over users who rated both.
    deviations: HashMap<(ItemId, ItemId), (f64, usize)>,
}

impl<'a> SlopeOne<'a> {
    /// Precomputes pairwise deviations over co-rating users.
    pub fn fit(matrix: &'a RatingMatrix) -> Self {
        let mut deviations: HashMap<(ItemId, ItemId), (f64, usize)> = HashMap::new();
        for u in matrix.users() {
            let profile = matrix.user_profile(u);
            for a in profile {
                for b in profile {
                    if a.item != b.item {
                        let entry = deviations.entry((a.item, b.item)).or_insert((0.0, 0));
                        entry.0 += a.value - b.value;
                        entry.1 += 1;
                    }
                }
            }
        }
        SlopeOne { matrix, deviations }
    }

    /// Number of item pairs with at least one co-rating user.
    pub fn n_pairs(&self) -> usize {
        self.deviations.len()
    }
}

impl RatingPredictor for SlopeOne<'_> {
    fn predict(&self, user: UserId, item: ItemId) -> f64 {
        let profile = self.matrix.user_profile(user);
        let mut num = 0.0;
        let mut den = 0usize;
        for e in profile {
            if let Some(&(sum, count)) = self.deviations.get(&(item, e.item)) {
                if count > 0 {
                    num += (sum / count as f64 + e.value) * count as f64;
                    den += count;
                }
            }
        }
        let raw = if den == 0 {
            self.matrix.item_average(item)
        } else {
            num / den as f64
        };
        self.matrix.scale().clamp(raw)
    }
    fn name(&self) -> &'static str {
        "SlopeOne"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RatingMatrixBuilder;

    /// Cross-domain fixture: items 0-2 are movies (SOURCE), 3-5 are books (TARGET).
    /// Users 0-2 are straddlers whose book taste follows their movie taste; user 3 rated
    /// only movies (cold-start in books).
    fn cross_domain() -> RatingMatrix {
        let mut b = RatingMatrixBuilder::new();
        // straddlers: users 0,1 love sci-fi movies and sci-fi books; user 2 the opposite
        for u in 0..2u32 {
            b.push_parts(u, 0, 5.0).unwrap();
            b.push_parts(u, 1, 4.0).unwrap();
            b.push_parts(u, 2, 1.0).unwrap();
            b.push_parts(u, 3, 5.0).unwrap();
            b.push_parts(u, 4, 4.0).unwrap();
            b.push_parts(u, 5, 1.0).unwrap();
        }
        b.push_parts(2, 0, 1.0).unwrap();
        b.push_parts(2, 1, 2.0).unwrap();
        b.push_parts(2, 2, 5.0).unwrap();
        b.push_parts(2, 3, 1.0).unwrap();
        b.push_parts(2, 4, 2.0).unwrap();
        b.push_parts(2, 5, 5.0).unwrap();
        // cold-start user 3: movie profile matches users 0-1
        b.push_parts(3, 0, 5.0).unwrap();
        b.push_parts(3, 1, 5.0).unwrap();
        b.push_parts(3, 2, 1.0).unwrap();
        for i in 0..3u32 {
            b.set_item_domain(ItemId(i), DomainId::SOURCE);
        }
        for i in 3..6u32 {
            b.set_item_domain(ItemId(i), DomainId::TARGET);
        }
        b.build().unwrap()
    }

    #[test]
    fn item_average_is_unpersonalised() {
        let m = cross_domain();
        let p = ItemAverage::new(&m);
        assert_eq!(
            p.predict(UserId(0), ItemId(3)),
            p.predict(UserId(2), ItemId(3))
        );
        assert!((p.predict(UserId(0), ItemId(3)) - m.item_average(ItemId(3))).abs() < 1e-12);
        assert_eq!(p.name(), "ItemAverage");
    }

    #[test]
    fn user_average_tracks_user_mean() {
        let m = cross_domain();
        let p = UserAverage::new(&m);
        assert!((p.predict(UserId(2), ItemId(0)) - m.user_average(UserId(2))).abs() < 1e-12);
        assert_eq!(p.name(), "UserAverage");
    }

    #[test]
    fn remote_user_personalises_cold_start_predictions() {
        let m = cross_domain();
        let p = RemoteUser::new(
            &m,
            DomainId::SOURCE,
            UserKnnConfig {
                k: 2,
                min_similarity: 0.0,
            },
        )
        .unwrap();
        // user 3 (cold-start) has movie taste like users 0-1, so book 3 should be
        // predicted high and book 5 low.
        let liked = p.predict(UserId(3), ItemId(3));
        let disliked = p.predict(UserId(3), ItemId(5));
        assert!(
            liked > disliked,
            "RemoteUser should personalise: {liked} vs {disliked}"
        );
        assert!(liked >= 4.0);
        assert!(disliked <= 2.5);
        assert_eq!(p.name(), "RemoteUser");
    }

    #[test]
    fn remote_user_neighbors_come_from_source_similarity() {
        let m = cross_domain();
        let p = RemoteUser::new(
            &m,
            DomainId::SOURCE,
            UserKnnConfig {
                k: 2,
                min_similarity: 0.0,
            },
        )
        .unwrap();
        let neigh = p.source_neighbors(UserId(3));
        assert!(!neigh.is_empty());
        // most similar source-domain users are 0 and 1
        for &(u, _) in neigh.iter().take(2) {
            assert!(u == UserId(0) || u == UserId(1));
        }
    }

    #[test]
    fn linked_domain_knn_uses_cross_domain_information() {
        let m = cross_domain();
        let p = LinkedDomainItemKnn::fit(&m, 5).unwrap();
        let liked = p.predict(UserId(3), ItemId(3));
        let disliked = p.predict(UserId(3), ItemId(5));
        assert!(liked > disliked, "{liked} vs {disliked}");
        assert_eq!(p.name(), "Item-based-kNN");
        assert!(!p.model().neighbors(ItemId(3)).is_empty());
    }

    #[test]
    fn single_domain_knn_cannot_personalise_cold_start() {
        let m = cross_domain();
        let p = SingleDomainItemKnn::fit(&m, DomainId::TARGET, 5).unwrap();
        assert!(p.training_matrix().n_ratings() < m.n_ratings());
        let preds = p
            .predict_batch(&[(UserId(3), ItemId(3)), (UserId(3), ItemId(5))])
            .unwrap();
        // user 3 has no target-domain ratings, so both predictions are unpersonalised
        // item averages.
        assert!((preds[0] - p.training_matrix().item_average(ItemId(3))).abs() < 1e-9);
        assert!((preds[1] - p.training_matrix().item_average(ItemId(5))).abs() < 1e-9);
    }

    #[test]
    fn slope_one_learns_pairwise_deviations() {
        let mut b = RatingMatrixBuilder::new();
        // item 1 is consistently rated one star above item 0
        b.push_parts(0, 0, 3.0).unwrap();
        b.push_parts(0, 1, 4.0).unwrap();
        b.push_parts(1, 0, 2.0).unwrap();
        b.push_parts(1, 1, 3.0).unwrap();
        b.push_parts(2, 0, 4.0).unwrap();
        let m = b.build().unwrap();
        let p = SlopeOne::fit(&m);
        assert!(p.n_pairs() > 0);
        // user 2 rated item 0 with 4.0, so item 1 should be predicted ~5.0
        let pred = p.predict(UserId(2), ItemId(1));
        assert!((pred - 5.0).abs() < 1e-9, "slope-one prediction {pred}");
        assert_eq!(p.name(), "SlopeOne");
    }

    #[test]
    fn slope_one_falls_back_to_item_average() {
        let mut b = RatingMatrixBuilder::new().with_dimensions(3, 3);
        b.push_parts(0, 0, 4.0).unwrap();
        b.push_parts(1, 1, 2.0).unwrap();
        let m = b.build().unwrap();
        let p = SlopeOne::fit(&m);
        // user 0 shares no co-rated item with anything connecting to item 1
        let pred = p.predict(UserId(0), ItemId(1));
        assert!((pred - m.item_average(ItemId(1))).abs() < 1e-9);
    }

    #[test]
    fn all_baselines_respect_rating_scale() {
        let m = cross_domain();
        let item_avg = ItemAverage::new(&m);
        let user_avg = UserAverage::new(&m);
        let remote = RemoteUser::new(&m, DomainId::SOURCE, UserKnnConfig::default()).unwrap();
        let linked = LinkedDomainItemKnn::fit(&m, 10).unwrap();
        let slope = SlopeOne::fit(&m);
        let predictors: Vec<&dyn RatingPredictor> =
            vec![&item_avg, &user_avg, &remote, &linked, &slope];
        for p in predictors {
            for u in m.users() {
                for i in m.items() {
                    let v = p.predict(u, i);
                    assert!(
                        (1.0..=5.0).contains(&v),
                        "{} produced out-of-scale {v}",
                        p.name()
                    );
                }
            }
        }
    }
}
